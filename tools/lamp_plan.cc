// lamp_plan: static cost-based distribution planner CLI.
//
//   lamp_plan [options] "H(x,z) <- R(x,y), S(y,z)"...
//                          plan query literals against a statistics catalog
//   lamp_plan [options] --demo
//                          build skew-free and skewed demo workloads,
//                          derive their catalogs, and plan both (no files)
//   lamp_plan check --pins FILE <records.jsonl>...
//                          planner-agreement gate: every
//                          lamp.plan_agreement.v1 record must Agree() or
//                          be pinned; dangling pins fail too
//
//   --catalog FILE     lamp.catalog.v1 JSON (required unless --demo)
//   --p N              server budget (default 4)
//   --json             emit the lamp.plan.v1 document (array when more
//                      than one query is planned)
//   --explain          text mode: include formulas and applied rewrites
//   --strict           exit 1 when a certificate carries hazards or no
//                      feasible strategy
//   --report FILE      check mode: write a JSON gate summary
//
// Exit codes: 0 clean, 1 strict violations, 2 usage or I/O errors,
// 5 (kPlanGateFailExit) failed agreement gate.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "cq/parser.h"
#include "obs/audit/catalog.h"
#include "obs/json.h"
#include "relational/instance.h"
#include "sa/plan/agreement.h"
#include "sa/plan/plan.h"

namespace lamp::sa::plan {
namespace {

struct Cli {
  bool demo = false;
  bool json = false;
  bool strict = false;
  bool explain = false;
  std::string catalog_path;
  std::size_t p = 4;
  std::vector<std::string> queries;
};

bool ReadFile(const std::string& path, std::string& out) {
  std::ifstream in(path);
  if (!in) return false;
  std::ostringstream text;
  text << in.rdbuf();
  out = text.str();
  return true;
}

/// The demo workloads mirror bench_join_strategies: a skew-free binary
/// join where repartition is optimal, and the same join with half of R
/// landing on one join value, where only the skew-aware strategies keep
/// the load near m/sqrt(p).
struct DemoScenario {
  std::string name;
  Schema schema;
  obs::audit::Catalog catalog;
  ConjunctiveQuery query;
};

DemoScenario MakeDemo(bool skewed) {
  DemoScenario scenario;
  scenario.name = skewed ? "skewed" : "skew_free";
  scenario.query =
      ParseQuery(scenario.schema, "H(x,z) <- R(x,y), S(y,z)");
  const RelationId r = scenario.schema.IdOf("R");
  const RelationId s = scenario.schema.IdOf("S");
  constexpr std::size_t kFacts = 20000;
  const auto range = static_cast<std::int64_t>(16 * kFacts);
  Rng rng(skewed ? 7 : 3);
  Instance instance;
  for (std::size_t i = 0; i < kFacts; ++i) {
    const bool heavy = skewed && i < kFacts / 2;
    const Value y =
        heavy ? Value{0} : Value{rng.UniformInt(1, range)};
    instance.Insert(Fact{r, {Value{rng.UniformInt(0, range)}, y}});
  }
  for (std::size_t i = 0; i < kFacts; ++i) {
    const bool heavy = skewed && i < 10;
    const Value y =
        heavy ? Value{0} : Value{rng.UniformInt(1, range)};
    instance.Insert(Fact{s, {y, Value{rng.UniformInt(0, range)}}});
  }
  scenario.catalog = obs::audit::BuildCatalog(scenario.schema, instance);
  return scenario;
}

int RunPlan(const Cli& cli) {
  struct Planned {
    std::string name;
    PlanCertificate cert;
  };
  std::vector<Planned> results;
  PlanOptions options;
  options.p = cli.p;

  if (cli.demo) {
    for (const bool skewed : {false, true}) {
      DemoScenario scenario = MakeDemo(skewed);
      Planned& out = results.emplace_back();
      out.name = scenario.name;
      out.cert = PlanQuery(scenario.query, scenario.schema,
                           scenario.catalog, options);
    }
  } else {
    std::string text;
    if (!ReadFile(cli.catalog_path, text)) {
      std::fprintf(stderr, "lamp_plan: cannot read %s\n",
                   cli.catalog_path.c_str());
      return 2;
    }
    const std::optional<obs::JsonValue> doc = obs::JsonValue::Parse(text);
    if (!doc.has_value()) {
      std::fprintf(stderr, "lamp_plan: %s is not valid JSON\n",
                   cli.catalog_path.c_str());
      return 2;
    }
    const std::optional<obs::audit::Catalog> catalog =
        obs::audit::Catalog::FromJson(*doc);
    if (!catalog.has_value()) {
      std::fprintf(stderr,
                   "lamp_plan: %s is not a lamp.catalog.v1 document\n",
                   cli.catalog_path.c_str());
      return 2;
    }
    for (const std::string& text_query : cli.queries) {
      Schema schema;
      CqParseResult parsed = TryParseQuery(schema, text_query);
      if (!parsed.ok()) {
        std::fprintf(stderr, "lamp_plan: %s: %s\n", text_query.c_str(),
                     parsed.error.c_str());
        return 2;
      }
      Planned& out = results.emplace_back();
      out.name = text_query;
      out.cert =
          PlanQuery(*parsed.query, schema, *catalog, options);
    }
  }

  if (cli.json) {
    if (results.size() == 1) {
      std::printf("%s\n", results[0].cert.ToJson().Dump(2).c_str());
    } else {
      obs::JsonValue out = obs::JsonValue::Array();
      for (Planned& planned : results) {
        out.PushBack(planned.cert.ToJson());
      }
      std::printf("%s\n", out.Dump(2).c_str());
    }
  } else {
    for (const Planned& planned : results) {
      if (cli.demo) std::printf("== %s ==\n", planned.name.c_str());
      std::printf("%s\n", planned.cert.RenderText(cli.explain).c_str());
    }
  }

  if (cli.strict) {
    for (const Planned& planned : results) {
      if (planned.cert.Winner() == nullptr ||
          !planned.cert.hazards.empty()) {
        return 1;
      }
    }
  }
  return 0;
}

int RunCheck(int argc, char** argv) {
  std::string pins_path;
  std::string report_path;
  std::vector<std::string> record_files;
  for (int i = 2; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--pins") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "lamp_plan: --pins needs a file\n");
        return 2;
      }
      pins_path = argv[++i];
    } else if (arg == "--report") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "lamp_plan: --report needs a file\n");
        return 2;
      }
      report_path = argv[++i];
    } else if (!arg.empty() && arg.front() == '-') {
      std::fprintf(stderr, "lamp_plan: unknown check option %s\n", argv[i]);
      return 2;
    } else {
      record_files.emplace_back(arg);
    }
  }
  if (record_files.empty()) {
    std::fprintf(stderr,
                 "lamp_plan: check needs agreement record files\n");
    return 2;
  }

  std::vector<AgreementRecord> records;
  for (const std::string& path : record_files) {
    std::string text;
    if (!ReadFile(path, text)) {
      std::fprintf(stderr, "lamp_plan: cannot read %s\n", path.c_str());
      return 2;
    }
    std::istringstream lines(text);
    std::string line;
    while (std::getline(lines, line)) {
      if (line.empty() || line[0] != '{') continue;  // Markers, noise.
      const std::optional<obs::JsonValue> doc = obs::JsonValue::Parse(line);
      if (!doc.has_value()) continue;
      // Files may interleave other record kinds (audit, bench); only
      // lamp.plan_agreement.v1 lines parse here.
      if (std::optional<AgreementRecord> record =
              AgreementRecord::FromJson(*doc)) {
        records.push_back(std::move(*record));
      }
    }
  }
  if (records.empty()) {
    std::fprintf(stderr,
                 "lamp_plan: no lamp.plan_agreement.v1 records found\n");
    return 2;
  }

  std::vector<AgreementPin> pins;
  if (!pins_path.empty()) {
    std::string text;
    if (!ReadFile(pins_path, text)) {
      std::fprintf(stderr, "lamp_plan: cannot read %s\n",
                   pins_path.c_str());
      return 2;
    }
    const std::optional<obs::JsonValue> doc = obs::JsonValue::Parse(text);
    std::optional<std::vector<AgreementPin>> parsed =
        doc.has_value() ? PinsFromJson(*doc) : std::nullopt;
    if (!parsed.has_value()) {
      std::fprintf(stderr,
                   "lamp_plan: %s is not a lamp.plan_pins.v1 document "
                   "(every pin needs a reason)\n",
                   pins_path.c_str());
      return 2;
    }
    pins = std::move(*parsed);
  }

  const AgreementCheck check = CheckAgreement(records, pins);
  std::size_t agreed = 0;
  for (const AgreementRecord& record : records) {
    if (record.Agree()) ++agreed;
  }
  std::printf("plan-agreement: %zu record(s), %zu agree, %zu failure(s), "
              "%zu dangling pin(s)\n",
              records.size(), agreed, check.failures.size(),
              check.dangling_pins.size());
  for (const std::string& failure : check.failures) {
    std::printf("  FAIL %s\n", failure.c_str());
  }
  for (const std::string& dangling : check.dangling_pins) {
    std::printf("  DANGLING PIN %s\n", dangling.c_str());
  }

  if (!report_path.empty()) {
    obs::JsonValue report = obs::JsonValue::Object();
    report.Set("schema", "lamp.plan_agreement_report.v1");
    report.Set("records", records.size());
    report.Set("agreed", agreed);
    obs::JsonValue failures = obs::JsonValue::Array();
    for (const std::string& failure : check.failures) {
      failures.PushBack(failure);
    }
    report.Set("failures", std::move(failures));
    obs::JsonValue dangling = obs::JsonValue::Array();
    for (const std::string& pin : check.dangling_pins) {
      dangling.PushBack(pin);
    }
    report.Set("dangling_pins", std::move(dangling));
    obs::JsonValue details = obs::JsonValue::Array();
    for (const AgreementRecord& record : records) {
      details.PushBack(record.ToJson());
    }
    report.Set("details", std::move(details));
    std::ofstream out(report_path);
    if (!out) {
      std::fprintf(stderr, "lamp_plan: cannot write %s\n",
                   report_path.c_str());
      return 2;
    }
    out << report.Dump(2) << "\n";
  }
  return check.Ok() ? 0 : kPlanGateFailExit;
}

int Main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "check") == 0) {
    return RunCheck(argc, argv);
  }
  Cli cli;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--demo") {
      cli.demo = true;
    } else if (arg == "--json") {
      cli.json = true;
    } else if (arg == "--strict") {
      cli.strict = true;
    } else if (arg == "--explain") {
      cli.explain = true;
    } else if (arg == "--catalog") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "lamp_plan: --catalog needs a file\n");
        return 2;
      }
      cli.catalog_path = argv[++i];
    } else if (arg == "--p") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "lamp_plan: --p needs a number\n");
        return 2;
      }
      cli.p = static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10));
      if (cli.p == 0) {
        std::fprintf(stderr, "lamp_plan: --p must be positive\n");
        return 2;
      }
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: lamp_plan [--catalog FILE] [--p N] [--json] [--explain] "
          "[--strict] (\"H(..) <- ..\"... | --demo)\n"
          "       lamp_plan check --pins FILE [--report FILE] "
          "<records.jsonl>...\n");
      return 0;
    } else if (!arg.empty() && arg.front() == '-') {
      std::fprintf(stderr, "lamp_plan: unknown option %s\n", argv[i]);
      return 2;
    } else {
      cli.queries.emplace_back(arg);
    }
  }
  if (cli.demo) {
    if (!cli.queries.empty() || !cli.catalog_path.empty()) {
      std::fprintf(stderr,
                   "lamp_plan: --demo takes no catalog or queries\n");
      return 2;
    }
  } else {
    if (cli.queries.empty() || cli.catalog_path.empty()) {
      std::fprintf(stderr,
                   "lamp_plan: pass --catalog FILE and query literals, or "
                   "--demo (try --help)\n");
      return 2;
    }
  }
  return RunPlan(cli);
}

}  // namespace
}  // namespace lamp::sa::plan

int main(int argc, char** argv) {
  return lamp::sa::plan::Main(argc, argv);
}
