// mpc_procs: the MPC model on real processes — one OS process per server,
// a lamp.wire.v1 socket mesh between them, and the in-process MpcSimulator
// as the ground truth the distributed run must reproduce byte-for-byte.
//
// Topology (the classic rank/listen/connect shape): rank r owns listener r
// (TCP) or its end of a pre-created socketpair (UDS); ranks identify
// themselves with a kHello frame, then a seed token travels the ring
// rank -> succ (two laps: fold, then broadcast) so every process agrees on
// the routing seed before any data moves. Each round every rank sends ONE
// batched kFactBatch frame to every other rank (possibly empty — the
// receiver always expects exactly p-1 frames) and drains its peers in
// ascending rank order, interleaving its self-routed batch at its own
// rank. That is exactly the in-process merge order, so outputs, dedup
// decisions and per-server loads match MpcSimulator's — the comparison
// this tool exists to make.
//
// Wire accounting: each rank reports the framing bytes it *received* from
// other ranks. Unlike the simulator backends (which skip empty batches),
// the mesh protocol ships empty frames, so the measured bytes sit a few
// framing bytes per idle channel above the closed form; both numbers are
// printed. Measured loads and wire bytes flow into lamp.audit.v1 records
// next to the strategy's closed-form bound, exactly like the benches.
//
// Exit codes: 0 ok, 1 mismatch vs the in-process reference, 2 usage,
// 4 audit hard fail (LAMP_AUDIT_HARD_FAIL=1).

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/hash.h"
#include "common/rng.h"
#include "cq/eval.h"
#include "cq/parser.h"
#include "distribution/hypercube.h"
#include "distribution/policies.h"
#include "mpc/hypercube_run.h"
#include "mpc/join_strategies.h"
#include "mpc/simulator.h"
#include "obs/audit/audit.h"
#include "obs/audit/bounds.h"
#include "obs/audit/catalog.h"
#include "obs/audit/causal.h"
#include "obs/dist/merge.h"
#include "obs/dist/shard.h"
#include "obs/trace.h"
#include "par/thread_pool.h"
#include "relational/generators.h"
#include "transport/transport.h"
#include "transport/wire.h"

namespace {

using namespace lamp;

// --- framed blocking I/O over raw fds -----------------------------------

void WriteAllFd(int fd, const std::uint8_t* data, std::size_t size) {
  while (size > 0) {
    const ssize_t n = ::write(fd, data, size);
    if (n < 0) {
      if (errno == EINTR) continue;
      LAMP_CHECK_MSG(false, "mpc_procs: write failed");
    }
    data += n;
    size -= static_cast<std::size_t>(n);
  }
}

void SendFrame(int fd, const transport::WireFrame& frame) {
  std::vector<std::uint8_t> bytes;
  transport::AppendFrame(bytes, frame);
  WriteAllFd(fd, bytes.data(), bytes.size());
}

/// One peer connection: blocking reads through an incremental decoder.
class FrameChannel {
 public:
  FrameChannel() = default;
  explicit FrameChannel(int fd) : fd_(fd) {}

  int fd() const { return fd_; }
  void Reset(int fd) { fd_ = fd; }

  transport::WireFrame ReadFrame() {
    for (;;) {
      if (auto frame = decoder_.Next()) {
        WarnOnSkipped();
        return std::move(*frame);
      }
      LAMP_CHECK_MSG(!decoder_.error(), "mpc_procs: malformed frame");
      std::uint8_t buf[1 << 16];
      const ssize_t n = ::read(fd_, buf, sizeof buf);
      if (n < 0 && errno == EINTR) continue;
      LAMP_CHECK_MSG(n > 0, "mpc_procs: peer closed mid-frame");
      decoder_.Feed(buf, static_cast<std::size_t>(n));
    }
  }

  void WriteFrame(const transport::WireFrame& frame) { SendFrame(fd_, frame); }

 private:
  /// Unknown-type frames (a newer peer's optional extension) are skipped
  /// by the decoder; surface each skip as a warning so a version-skewed
  /// mesh is visible without being fatal.
  void WarnOnSkipped() {
    if (decoder_.unknown_skipped() > warned_skipped_) {
      std::fprintf(stderr,
                   "mpc_procs: warning: skipped %llu frame(s) of unknown"
                   " type 0x%02x on fd %d\n",
                   static_cast<unsigned long long>(decoder_.unknown_skipped() -
                                                   warned_skipped_),
                   decoder_.last_unknown_type(), fd_);
      warned_skipped_ = decoder_.unknown_skipped();
    }
  }

  int fd_ = -1;
  transport::FrameDecoder decoder_;
  std::uint64_t warned_skipped_ = 0;
};

// --- scenarios ----------------------------------------------------------

/// Per-rank ring contribution and the fold every rank must end up with.
/// Rank 0 starts the token at HashMix(base); each rank folds its own
/// contribution in ring order, so the closed form below is exactly what a
/// correct exchange produces.
std::uint64_t RankContribution(std::uint64_t base, std::size_t rank) {
  return HashMix(base ^ static_cast<std::uint64_t>(rank + 1));
}

std::uint64_t CombinedSeed(std::uint64_t base, std::size_t p) {
  std::uint64_t h = HashMix(base);
  for (std::size_t r = 0; r < p; ++r) {
    h = HashCombine(h, RankContribution(base, r));
  }
  return h;
}

/// bench_hypercube_load's E3 input: matching relations, the BKS skew-free
/// extreme (kept in sync so the bounds audited here are the bench's).
Instance MatchingInput(Schema& schema, const ConjunctiveQuery& q,
                       std::size_t m) {
  Rng rng(11);
  Instance db;
  std::int64_t base = 0;
  for (const Atom& atom : q.body()) {
    AddMatchingRelation(schema, atom.relation, m, base, rng, db);
    base += static_cast<std::int64_t>(2 * m);
  }
  return db;
}

/// bench_join_strategies' E1 workloads: a skew-free matching join and a
/// skewed variant where half of R shares one join value.
struct JoinWorkload {
  Instance skew_free;
  Instance skewed;

  JoinWorkload(const Schema& schema, RelationId r, RelationId s,
               std::size_t m) {
    Rng rng(1);
    AddMatchingRelation(schema, r, m, 0, rng, skew_free);
    AddMatchingRelation(schema, s, m, static_cast<std::int64_t>(m), rng,
                        skew_free);
    for (std::size_t i = 0; i < m / 2; ++i) {
      skewed.Insert(Fact(r, {static_cast<std::int64_t>(i), 0}));
    }
    for (std::size_t i = 0; i < 10; ++i) {
      skewed.Insert(Fact(s, {0, static_cast<std::int64_t>(i)}));
    }
    AddUniformRelation(schema, r, m / 2, 16 * m, rng, skewed);
    AddUniformRelation(schema, s, m - 10, 16 * m, rng, skewed);
  }
};

/// One distributed workload: every process (parent and children) builds
/// its own copy deterministically from (name, procs, m, base seed).
struct Scenario {
  std::string name;
  Schema schema;
  ConjunctiveQuery query;
  Instance input;
  std::size_t servers = 0;        // One process per server.
  std::uint64_t routing_seed = 0; // CombinedSeed(base, servers).
  MpcSimulator::Router route;
  obs::audit::Strategy strategy = obs::audit::Strategy::kNone;
  bool expected_violation = false;
  Shares shares;                              // Hypercube scenarios only.
  std::unique_ptr<HypercubePolicy> policy;    // Keeps their router alive.
};

const char* const kScenarioNames[] = {
    "hypercube_join",  "hypercube_triangle",  "repartition",
    "repartition_skewed", "fragment_replicate",
};

Scenario BuildScenario(const std::string& name, std::size_t procs,
                       std::size_t m, std::uint64_t base_seed) {
  LAMP_CHECK(procs >= 1);
  Scenario s;
  s.name = name;
  if (name == "hypercube_join" || name == "hypercube_triangle") {
    const char* text = name == "hypercube_join"
                           ? "H(x,y,z) <- R0(x,y), R1(y,z)"
                           : "H(x,y,z) <- R0(x,y), R1(y,z), R2(z,x)";
    s.query = ParseQuery(s.schema, text);
    s.input = MatchingInput(s.schema, s.query, m);
    s.shares = LpRoundedShares(s.query, procs);
    s.servers = 1;
    for (std::size_t a : s.shares) s.servers *= a;
    s.routing_seed = CombinedSeed(base_seed, s.servers);
    s.policy = std::make_unique<HypercubePolicy>(s.query, s.shares,
                                                 MakeUniverse(1),
                                                 s.routing_seed);
    s.route = [policy = s.policy.get()](NodeId, const Fact& f) {
      return policy->ResponsibleNodes(f);
    };
    s.strategy = obs::audit::Strategy::kHyperCube;
    return s;
  }

  s.query = ParseQuery(s.schema, "H(x,y,z) <- R(x,y), S(y,z)");
  const RelationId r = s.schema.IdOf("R");
  const RelationId sid = s.schema.IdOf("S");
  JoinWorkload w(s.schema, r, sid, m);
  s.servers = procs;
  s.routing_seed = CombinedSeed(base_seed, s.servers);
  if (name == "repartition" || name == "repartition_skewed") {
    s.input = name == "repartition" ? std::move(w.skew_free)
                                    : std::move(w.skewed);
    s.route = RepartitionRouter(s.query, s.servers, s.routing_seed);
    s.strategy = obs::audit::Strategy::kRepartition;
    // The heavy join value pins half of R on one server: the m/p bound is
    // *supposed* to break (claim (1a)); keep it exempt from hard fail.
    s.expected_violation = name == "repartition_skewed";
  } else if (name == "fragment_replicate") {
    s.input = std::move(w.skewed);
    s.route = FragmentReplicateRouter(s.query, s.servers, s.routing_seed);
    s.strategy = obs::audit::Strategy::kFragmentReplicate;
  } else {
    std::fprintf(stderr, "mpc_procs: unknown scenario '%s'\n", name.c_str());
    std::exit(2);
  }
  return s;
}

/// Order-independent fingerprint of an instance (sum of mixed fact
/// hashes): stable across merge orders, printable next to the reference.
std::uint64_t InstanceDigest(const Instance& inst) {
  std::uint64_t digest = 0;
  inst.ForEachFact([&digest](const Fact& f) {
    digest += HashMix(FactHash()(f));
  });
  return digest;
}

// --- distributed tracing ------------------------------------------------

/// Tracing configuration shared by the parent and every worker. The
/// parent derives it once per run; workers recompute nothing — the trace
/// id is a pure function of (seed, mesh size, label), so all processes
/// agree on it without a negotiation round.
struct TraceConfig {
  std::string prefix;  // $LAMP_TRACE_SHARD; empty = tracing off.
  std::string label;   // "<scenario>_<transport>".
  std::uint64_t trace_id = 0;

  bool enabled() const { return !prefix.empty(); }
  std::string PathFor(std::size_t p, std::size_t rank) const {
    return obs::dist::ShardPath(prefix, label, p, rank);
  }
};

TraceConfig MakeTraceConfig(const std::string& prefix,
                            const std::string& name,
                            transport::TransportKind kind, std::size_t p,
                            std::uint64_t base_seed) {
  TraceConfig cfg;
  cfg.prefix = prefix;
  cfg.label = name + "_" + std::string(transport::TransportKindName(kind));
  std::uint64_t id = HashCombine(HashMix(base_seed), HashMix(p));
  for (const char c : cfg.label) {
    id = HashCombine(id, HashMix(static_cast<std::uint64_t>(
                             static_cast<unsigned char>(c))));
  }
  cfg.trace_id = id;
  return cfg;
}

// --- the worker process -------------------------------------------------

struct WorkerReport {
  std::size_t load = 0;
  std::size_t wire_bytes = 0;  // Framing bytes received from other ranks.
  Instance output;
};

/// Body of rank \p rank: seed exchange, one communication phase, local
/// evaluation, report to the parent over \p report_fd. `chans[s]` is the
/// established connection to rank s (unset at s == rank).
void RunWorker(const Scenario& scenario, std::size_t rank,
               std::vector<FrameChannel>& chans, int report_fd,
               std::uint64_t base_seed, const TraceConfig& trace) {
  const std::size_t p = scenario.servers;

  // Tracing is per-process: an isolated ring-buffer tracer whose shard is
  // flushed to $LAMP_TRACE_SHARD-derived paths at the end of the run.
  // When the env var is unset no tracer is installed and every Emit below
  // stays on the null-sink fast path.
  std::unique_ptr<obs::Tracer> tracer;
  std::optional<obs::ScopedTracer> install;
  if (trace.enabled()) {
    tracer = std::make_unique<obs::Tracer>();
    install.emplace(*tracer);
  }
  const std::uint64_t my_features =
      trace.enabled() ? transport::kHelloFeatureTraceCtx : 0;
  std::uint64_t mesh_features = my_features;
  std::uint64_t ring_t0 = 0;    // Rank 0: fold-lap start (local clock).
  std::uint64_t ring_t1 = 0;    // Rank 0: fold-lap end.
  std::uint64_t ring_fold = 0;  // Everyone: fold token receipt time.

  // Ring seed exchange (two laps: fold rank by rank, then broadcast the
  // result). The outcome must equal the closed form every process already
  // computed — the check pins the protocol against the specification.
  // The exchange carries two piggybacked extras:
  //  * feature negotiation — every rank ANDs its Hello feature bits into
  //    the fold, and the broadcast lap distributes the mesh-wide AND, so
  //    optional frame types (kTraceCtx) are only ever sent on a mesh
  //    where every process opted in;
  //  * clock probing — the fold lap is the one moment every process
  //    provably touches the same token in ring order, so its local
  //    receipt times (plus rank 0's lap bounds) are exactly what the
  //    shard merger needs to estimate per-process clock offsets.
  if (p > 1) {
    obs::TraceSpan span("proc.seed_exchange", static_cast<std::uint32_t>(rank));
    const std::size_t pred = (rank + p - 1) % p;
    const std::size_t succ = (rank + 1) % p;
    std::uint64_t token;
    if (rank == 0) {
      token = HashCombine(HashMix(base_seed), RankContribution(base_seed, 0));
      if (tracer != nullptr) {
        ring_t0 = tracer->NowNs();
        ring_fold = ring_t0;
      }
      chans[succ].WriteFrame(
          {transport::kWireVersion, transport::FrameType::kHello,
           static_cast<std::uint32_t>(rank), static_cast<std::uint32_t>(succ),
           transport::EncodeHelloPayload(rank, token, my_features)});
      const transport::WireFrame fold = chans[pred].ReadFrame();
      if (tracer != nullptr) ring_t1 = tracer->NowNs();
      LAMP_CHECK(fold.type == transport::FrameType::kHello);
      const auto payload = transport::DecodeHelloPayload(fold.payload);
      LAMP_CHECK(payload.has_value());
      token = payload->seed;
      mesh_features = payload->features;  // AND over the whole ring.
    } else {
      const transport::WireFrame fold = chans[pred].ReadFrame();
      if (tracer != nullptr) ring_fold = tracer->NowNs();
      LAMP_CHECK(fold.type == transport::FrameType::kHello);
      const auto payload = transport::DecodeHelloPayload(fold.payload);
      LAMP_CHECK(payload.has_value());
      token = HashCombine(payload->seed, RankContribution(base_seed, rank));
      chans[succ].WriteFrame(
          {transport::kWireVersion, transport::FrameType::kHello,
           static_cast<std::uint32_t>(rank), static_cast<std::uint32_t>(succ),
           transport::EncodeHelloPayload(rank, token,
                                         payload->features & my_features)});
    }
    // Broadcast lap: rank 0 holds the fold (and the negotiated feature
    // set); pass both once around.
    if (rank == 0) {
      chans[succ].WriteFrame(
          {transport::kWireVersion, transport::FrameType::kHello,
           static_cast<std::uint32_t>(rank), static_cast<std::uint32_t>(succ),
           transport::EncodeHelloPayload(rank, token, mesh_features)});
    } else {
      const transport::WireFrame bcast = chans[pred].ReadFrame();
      LAMP_CHECK(bcast.type == transport::FrameType::kHello);
      const auto payload = transport::DecodeHelloPayload(bcast.payload);
      LAMP_CHECK(payload.has_value());
      token = payload->seed;
      mesh_features = payload->features;
      if (succ != 0) {
        chans[succ].WriteFrame(
            {transport::kWireVersion, transport::FrameType::kHello,
             static_cast<std::uint32_t>(rank),
             static_cast<std::uint32_t>(succ),
             transport::EncodeHelloPayload(rank, token, mesh_features)});
      }
    }
    LAMP_CHECK_MSG(token == scenario.routing_seed,
                   "mpc_procs: ring seed exchange disagrees with the"
                   " closed form");
  }

  // Local slice of the round-robin initial placement (fact i lives on
  // server i % p — MpcSimulator::LoadInput's contract).
  Instance local;
  std::size_t index = 0;
  scenario.input.ForEachFact([&](const Fact& f) {
    if (index % p == rank) local.Insert(f);
    ++index;
  });

  // Communication phase: route every local fact, batch per target as
  // columnar row references (stable while `local` is unmutated), send one
  // frame per peer (ascending rank; possibly empty).
  std::vector<std::vector<transport::RowRef>> batches(p);
  {
    obs::TraceSpan span("proc.route", static_cast<std::uint32_t>(rank));
    Fact scratch;  // Router argument, rebuilt per row.
    for (RelationId rel = 0; rel < local.NumRelationIds(); ++rel) {
      const RowsView rows = local.RowsOf(rel);
      if (rows.num_rows == 0) continue;
      scratch.relation = rel;
      for (std::size_t i = 0; i < rows.num_rows; ++i) {
        const Value* row = rows.Row(i);
        scratch.args.assign(row, row + rows.arity);
        for (NodeId target : scenario.route(static_cast<NodeId>(rank),
                                            scratch)) {
          batches[target].push_back(transport::RowRef{
              rel, row, static_cast<std::uint32_t>(rows.arity)});
        }
      }
    }
  }
  // Data sends, each optionally preceded by a kTraceCtx frame carrying
  // (trace id, span, round) so the receiver can correlate its recv event
  // with ours. Context frames ride the negotiated feature bit, are never
  // counted into the wire-byte accounting (tracing must not perturb the
  // audited numbers), and older peers would skip them cleanly.
  const bool ctx_on =
      (mesh_features & transport::kHelloFeatureTraceCtx) != 0;
  std::uint64_t next_span = 0;
  for (std::size_t target = 0; target < p; ++target) {
    if (target == rank) continue;
    const transport::WireFrame frame{
        transport::kWireVersion, transport::FrameType::kFactBatch,
        static_cast<std::uint32_t>(rank), static_cast<std::uint32_t>(target),
        transport::EncodeFactBatchPayload(0, batches[target])};
    if (ctx_on) {
      const std::uint64_t span = next_span++;
      chans[target].WriteFrame(
          {transport::kWireVersion, transport::FrameType::kTraceCtx,
           static_cast<std::uint32_t>(rank),
           static_cast<std::uint32_t>(target),
           transport::EncodeTraceCtxPayload(trace.trace_id, span, 0)});
      obs::Emit(obs::EventKind::kDistSend, static_cast<std::uint32_t>(target),
                0, span);
      obs::Emit(obs::EventKind::kTransportSend,
                static_cast<std::uint32_t>(rank),
                static_cast<std::uint32_t>(target),
                transport::FrameWireSize(frame));
    }
    chans[target].WriteFrame(frame);
  }

  // Receive phase: drain peers in ascending rank order with the
  // self-routed batch interleaved at our own rank — the in-process merge
  // order, so dedup decisions and loads replay the simulator's exactly.
  WorkerReport report;
  Instance received;
  {
    obs::TraceSpan span("proc.drain", static_cast<std::uint32_t>(rank));
    for (std::size_t source = 0; source < p; ++source) {
      if (source == rank) {
        for (const transport::RowRef& r : batches[rank]) {
          received.InsertRow(r.relation, r.row, r.arity);
        }
        continue;
      }
      transport::WireFrame frame = chans[source].ReadFrame();
      std::optional<transport::TraceCtxPayload> ctx;
      if (frame.type == transport::FrameType::kTraceCtx) {
        ctx = transport::DecodeTraceCtxPayload(frame.payload);
        LAMP_CHECK_MSG(ctx.has_value() && ctx->trace_id == trace.trace_id,
                       "mpc_procs: trace context from a different run");
        frame = chans[source].ReadFrame();
      }
      LAMP_CHECK(frame.type == transport::FrameType::kFactBatch);
      LAMP_CHECK(frame.from == source &&
                 frame.to == static_cast<std::uint32_t>(rank));
      // Context frames are deliberately absent from wire accounting:
      // tracing on/off must not change the audited byte counts.
      report.wire_bytes += transport::FrameWireSize(frame);
      if (ctx.has_value()) {
        obs::Emit(obs::EventKind::kTransportRecv,
                  static_cast<std::uint32_t>(rank), frame.from,
                  transport::FrameWireSize(frame));
        obs::Emit(obs::EventKind::kDistRecv, frame.from,
                  static_cast<std::uint32_t>(ctx->round), ctx->span);
      }
      const auto batch = transport::DecodeFactBatchPayload(frame.payload);
      LAMP_CHECK(batch.has_value() && batch->round == 0);
      for (const Fact& f : batch->facts) {
        if (received.Insert(f)) ++report.load;
      }
    }
  }

  // Computation phase + report upstream.
  {
    obs::TraceSpan span("proc.eval", static_cast<std::uint32_t>(rank));
    report.output = Evaluate(scenario.query, received);
  }
  FrameChannel up(report_fd);
  up.WriteFrame({transport::kWireVersion, transport::FrameType::kStats,
                 static_cast<std::uint32_t>(rank),
                 static_cast<std::uint32_t>(p),
                 transport::EncodeStatsPayload(0, report.load,
                                               report.wire_bytes)});
  std::vector<transport::RowRef> out_rows;
  for (RelationId rel = 0; rel < report.output.NumRelationIds(); ++rel) {
    const RowsView rows = report.output.RowsOf(rel);
    for (std::size_t i = 0; i < rows.num_rows; ++i) {
      out_rows.push_back(transport::RowRef{
          rel, rows.Row(i), static_cast<std::uint32_t>(rows.arity)});
    }
  }
  up.WriteFrame({transport::kWireVersion, transport::FrameType::kFactBatch,
                 static_cast<std::uint32_t>(rank),
                 static_cast<std::uint32_t>(p),
                 transport::EncodeFactBatchPayload(0, out_rows)});
  up.WriteFrame({transport::kWireVersion, transport::FrameType::kShutdown,
                 static_cast<std::uint32_t>(rank),
                 static_cast<std::uint32_t>(p),
                 {}});

  // Flush this process's trace shard last, so it covers the full run. The
  // parent only reads shards after waitpid(), which sequences after this.
  if (trace.enabled()) {
    obs::dist::ShardHeader header;
    header.rank = rank;
    header.procs = p;
    header.trace_id = trace.trace_id;
    header.label = trace.label;
    header.ring_t0_ns = ring_t0;
    header.ring_t1_ns = ring_t1;
    header.ring_fold_ns = ring_fold;
    const std::string path = trace.PathFor(p, rank);
    if (!obs::dist::WriteShardFile(path, header, *tracer)) {
      std::fprintf(stderr, "mpc_procs: warning: cannot write trace shard %s\n",
                   path.c_str());
    }
  }
}

// --- mesh construction --------------------------------------------------

int TcpListener(std::uint16_t* port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  LAMP_CHECK(fd >= 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  LAMP_CHECK(::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) == 0);
  LAMP_CHECK(::listen(fd, 64) == 0);
  socklen_t len = sizeof addr;
  LAMP_CHECK(::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) == 0);
  *port = ntohs(addr.sin_port);
  return fd;
}

void SetNoDelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

/// Builds rank \p rank's connections over TCP: connect to every lower
/// rank (identifying with kHello), accept every higher one (identified by
/// its kHello) on our pre-bound listener.
std::vector<FrameChannel> TcpMesh(std::size_t rank, std::size_t p,
                                  const std::vector<std::uint16_t>& ports,
                                  int listener) {
  std::vector<FrameChannel> chans(p);
  for (std::size_t peer = 0; peer < rank; ++peer) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    LAMP_CHECK(fd >= 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(ports[peer]);
    int rc;
    do {
      rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr);
    } while (rc != 0 && errno == EINTR);
    LAMP_CHECK_MSG(rc == 0, "mpc_procs: connect to peer failed");
    SetNoDelay(fd);
    chans[peer].Reset(fd);
    chans[peer].WriteFrame(
        {transport::kWireVersion, transport::FrameType::kHello,
         static_cast<std::uint32_t>(rank), static_cast<std::uint32_t>(peer),
         transport::EncodeHelloPayload(rank, 0)});
  }
  for (std::size_t n = rank + 1; n < p; ++n) {
    int fd;
    do {
      fd = ::accept(listener, nullptr, nullptr);
    } while (fd < 0 && errno == EINTR);
    LAMP_CHECK(fd >= 0);
    SetNoDelay(fd);
    FrameChannel chan(fd);
    const transport::WireFrame hello = chan.ReadFrame();
    LAMP_CHECK(hello.type == transport::FrameType::kHello);
    const auto payload = transport::DecodeHelloPayload(hello.payload);
    LAMP_CHECK(payload.has_value() && payload->rank > rank &&
               payload->rank < p);
    chans[payload->rank] = std::move(chan);
  }
  ::close(listener);
  return chans;
}

// --- the multi-process run ----------------------------------------------

struct DistResult {
  Instance output;
  std::vector<std::size_t> loads;       // Per rank.
  std::vector<std::size_t> wire_bytes;  // Per rank, received framing bytes.
};

DistResult RunDistributed(const std::string& name, transport::TransportKind
                          kind, std::size_t procs, std::size_t m,
                          std::uint64_t base_seed, const TraceConfig& trace) {
  // The parent resolves the process count the same way the workers will.
  const Scenario shape = BuildScenario(name, procs, m, base_seed);
  const std::size_t p = shape.servers;

  // Pre-fork resources: TCP listeners (ports shared via fork) or UDS
  // socketpairs per unordered pair, plus one report pipe per rank.
  std::vector<int> listeners(p, -1);
  std::vector<std::uint16_t> ports(p, 0);
  // pair_fds[i][j] (i < j): {i's end, j's end}.
  std::vector<std::vector<std::array<int, 2>>> pair_fds;
  if (kind == transport::TransportKind::kTcp) {
    for (std::size_t r = 0; r < p; ++r) listeners[r] = TcpListener(&ports[r]);
  } else {
    pair_fds.assign(p, std::vector<std::array<int, 2>>(p, {-1, -1}));
    for (std::size_t i = 0; i < p; ++i) {
      for (std::size_t j = i + 1; j < p; ++j) {
        int sv[2];
        LAMP_CHECK(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) == 0);
        pair_fds[i][j] = {sv[0], sv[1]};
      }
    }
  }
  std::vector<std::array<int, 2>> pipes(p);
  for (std::size_t r = 0; r < p; ++r) {
    LAMP_CHECK(::pipe(pipes[r].data()) == 0);
  }

  std::vector<pid_t> pids(p, -1);
  for (std::size_t rank = 0; rank < p; ++rank) {
    const pid_t pid = ::fork();
    LAMP_CHECK_MSG(pid >= 0, "mpc_procs: fork failed");
    if (pid > 0) {
      pids[rank] = pid;
      continue;
    }
    // Worker: drop everything that is not ours, build the mesh, run.
    for (std::size_t r = 0; r < p; ++r) {
      ::close(pipes[r][0]);
      if (r != rank) ::close(pipes[r][1]);
    }
    std::vector<FrameChannel> chans(p);
    if (kind == transport::TransportKind::kTcp) {
      for (std::size_t r = 0; r < p; ++r) {
        if (r != rank) ::close(listeners[r]);
      }
      chans = TcpMesh(rank, p, ports, listeners[rank]);
    } else {
      for (std::size_t i = 0; i < p; ++i) {
        for (std::size_t j = i + 1; j < p; ++j) {
          if (i == rank) {
            chans[j].Reset(pair_fds[i][j][0]);
            ::close(pair_fds[i][j][1]);
          } else if (j == rank) {
            chans[i].Reset(pair_fds[i][j][1]);
            ::close(pair_fds[i][j][0]);
          } else {
            ::close(pair_fds[i][j][0]);
            ::close(pair_fds[i][j][1]);
          }
        }
      }
    }
    const Scenario mine = BuildScenario(name, procs, m, base_seed);
    RunWorker(mine, rank, chans, pipes[rank][1], base_seed, trace);
    for (FrameChannel& chan : chans) {
      if (chan.fd() >= 0) ::close(chan.fd());
    }
    ::close(pipes[rank][1]);
    std::_Exit(0);
  }

  // Parent: close the worker-side fds, collect reports, reap.
  if (kind == transport::TransportKind::kTcp) {
    for (int fd : listeners) ::close(fd);
  } else {
    for (std::size_t i = 0; i < p; ++i) {
      for (std::size_t j = i + 1; j < p; ++j) {
        ::close(pair_fds[i][j][0]);
        ::close(pair_fds[i][j][1]);
      }
    }
  }
  for (std::size_t r = 0; r < p; ++r) ::close(pipes[r][1]);

  DistResult result;
  result.loads.assign(p, 0);
  result.wire_bytes.assign(p, 0);
  for (std::size_t r = 0; r < p; ++r) {
    FrameChannel chan(pipes[r][0]);
    for (;;) {
      const transport::WireFrame frame = chan.ReadFrame();
      if (frame.type == transport::FrameType::kShutdown) break;
      LAMP_CHECK(frame.from == r);
      if (frame.type == transport::FrameType::kStats) {
        const auto stats = transport::DecodeStatsPayload(frame.payload);
        LAMP_CHECK(stats.has_value());
        result.loads[r] = stats->received;
        result.wire_bytes[r] = stats->wire_bytes;
      } else {
        LAMP_CHECK(frame.type == transport::FrameType::kFactBatch);
        const auto batch = transport::DecodeFactBatchPayload(frame.payload);
        LAMP_CHECK(batch.has_value());
        for (const Fact& f : batch->facts) result.output.Insert(f);
      }
    }
    ::close(pipes[r][0]);
  }
  for (std::size_t r = 0; r < p; ++r) {
    int status = 0;
    LAMP_CHECK(::waitpid(pids[r], &status, 0) == pids[r]);
    LAMP_CHECK_MSG(WIFEXITED(status) && WEXITSTATUS(status) == 0,
                   "mpc_procs: worker exited abnormally");
  }
  return result;
}

// --- driver -------------------------------------------------------------

struct Options {
  std::string scenario = "all";
  transport::TransportKind kind = transport::TransportKind::kTcp;
  bool kind_set = false;  // --selfcheck sweeps both families unless set.
  std::size_t procs = 4;
  std::size_t m = 4000;
  std::uint64_t seed = 7;
  bool selfcheck = false;
  std::string trace_prefix;  // $LAMP_TRACE_SHARD; empty = tracing off.
};

void Usage() {
  std::fprintf(
      stderr,
      "usage: mpc_procs [--scenario NAME|all] [--transport tcp|uds]\n"
      "                 [--procs N] [--m N] [--seed N] [--selfcheck]\n"
      "scenarios:");
  for (const char* name : kScenarioNames) std::fprintf(stderr, " %s", name);
  std::fprintf(stderr, "\n");
  std::exit(2);
}

/// Runs one scenario distributed, checks it against the in-process
/// reference and emits the audit record. Returns true when everything
/// matched.
bool RunOne(const std::string& name, const Options& opts) {
  const Scenario scenario =
      BuildScenario(name, opts.procs, opts.m, opts.seed);
  const std::size_t p = scenario.servers;

  // In-process ground truth (inline, single-threaded, inproc backend —
  // the --transport flag selects the *inter-process* mesh only).
  MpcSimulator sim(p);
  sim.LoadInput(scenario.input);
  sim.RunRound(scenario.route,
               [&scenario](NodeId, const Instance& received) {
                 return MpcSimulator::ComputeResult{
                     Instance(), Evaluate(scenario.query, received)};
               });

  const TraceConfig trace =
      MakeTraceConfig(opts.trace_prefix, name, opts.kind, p, opts.seed);
  const DistResult dist =
      RunDistributed(name, opts.kind, opts.procs, opts.m, opts.seed, trace);

  bool ok = dist.output == sim.output();
  const RoundStats& ref_round = sim.stats().rounds.at(0);
  for (std::size_t r = 0; r < p && ok; ++r) {
    ok = dist.loads[r] == ref_round.received[r];
  }

  std::size_t max_load = 0;
  std::size_t wire_total = 0;
  for (std::size_t r = 0; r < p; ++r) {
    max_load = std::max(max_load, dist.loads[r]);
    wire_total += dist.wire_bytes[r];
  }
  std::printf(
      "%-20s %-4s procs=%-3zu out=%zu digest=%016llx ref=%016llx"
      " max-load=%zu wire=%zuB (in-proc %zuB) %s\n",
      name.c_str(),
      std::string(transport::TransportKindName(opts.kind)).c_str(), p,
      dist.output.Size(),
      static_cast<unsigned long long>(InstanceDigest(dist.output)),
      static_cast<unsigned long long>(InstanceDigest(sim.output())),
      max_load, wire_total, sim.stats().TotalWireBytes(),
      ok ? "OK" : "MISMATCH");

  // Audit the *measured* run against the strategy's closed-form bound,
  // exactly like the benches audit the simulator.
  RunStats measured;
  RoundStats round;
  round.received = dist.loads;
  round.wire_bytes = dist.wire_bytes;
  measured.rounds.push_back(std::move(round));
  const obs::audit::Catalog catalog =
      obs::audit::BuildCatalog(scenario.schema, scenario.input);
  obs::audit::LoadBound bound =
      scenario.strategy == obs::audit::Strategy::kHyperCube
          ? obs::audit::HyperCubeBound(scenario.query, scenario.schema,
                                       catalog, scenario.shares)
          : obs::audit::BoundFor(scenario.strategy, scenario.query,
                                 scenario.schema, catalog, p);
  obs::audit::AuditRecord record = obs::audit::MakeAuditRecord(
      "mpc_procs",
      name + "/" + std::string(transport::TransportKindName(opts.kind)),
      scenario.strategy, p, std::move(bound), measured);
  record.params.Set("m", opts.m);
  record.params.Set("procs", p);
  record.params.Set("transport",
                    std::string(transport::TransportKindName(opts.kind)));
  record.expected_violation = scenario.expected_violation;

  // With tracing on, merge the shards the workers just wrote and check
  // the merge invariants inline: complete pairing (every cross-process
  // batch matched) and causal order (aligned send strictly before recv).
  // The measured latency percentiles land in the audit record next to
  // the wire bytes.
  if (trace.enabled()) {
    std::vector<obs::dist::TraceShard> shards;
    for (std::size_t r = 0; r < p; ++r) {
      std::string err;
      auto shard = obs::dist::LoadShardFile(trace.PathFor(p, r), &err);
      LAMP_CHECK_MSG(shard.has_value(), "mpc_procs: trace shard missing");
      shards.push_back(std::move(*shard));
    }
    std::string err;
    const auto merged = obs::dist::MergeShards(std::move(shards), &err);
    if (!merged.has_value()) {
      std::fprintf(stderr, "mpc_procs: shard merge failed: %s\n",
                   err.c_str());
      LAMP_CHECK_MSG(false, "mpc_procs: shard merge failed");
    }
    LAMP_CHECK_MSG(merged->pairs.size() == p * (p - 1) &&
                       merged->unmatched_sends == 0 &&
                       merged->unmatched_recvs == 0,
                   "mpc_procs: merged trace did not pair every batch");
    for (const obs::dist::MatchedPair& pair : merged->pairs) {
      LAMP_CHECK_MSG(pair.send_ns < pair.recv_ns,
                     "mpc_procs: aligned send does not precede recv");
    }
    record.round_wire_p50_ns.assign(record.round_wire_bytes.size(), 0);
    record.round_wire_p99_ns.assign(record.round_wire_bytes.size(), 0);
    for (const obs::dist::RoundLatency& rl :
         obs::dist::RoundLatencies(*merged)) {
      if (rl.round < record.round_wire_p50_ns.size()) {
        record.round_wire_p50_ns[rl.round] = rl.stats.p50_ns;
        record.round_wire_p99_ns[rl.round] = rl.stats.p99_ns;
      }
    }
    const obs::dist::LatencyStats e2e = obs::dist::EndToEndLatency(*merged);
    const obs::audit::CausalReport causal =
        obs::audit::BuildCausalReport(*merged);
    std::printf(
        "  trace: shards=%zu pairs=%zu wire-p50=%lluns p99=%lluns"
        " max-depth=%llu dropped=%llu\n",
        static_cast<std::size_t>(p), merged->pairs.size(),
        static_cast<unsigned long long>(e2e.p50_ns),
        static_cast<unsigned long long>(e2e.p99_ns),
        static_cast<unsigned long long>(causal.max_depth),
        static_cast<unsigned long long>(merged->total_dropped));
  }
  obs::audit::GlobalAuditSink().Add(std::move(record));
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  // Keep the process single-threaded: workers are forked, and fork() and
  // pool threads do not mix. The reference run is bit-identical at every
  // thread count anyway.
  lamp::par::SetDefaultThreads(1);
  lamp::transport::SetActiveKind(lamp::transport::TransportKind::kInProcess);

  Options opts;
  if (const char* env = std::getenv("LAMP_TRACE_SHARD");
      env != nullptr && env[0] != '\0') {
    opts.trace_prefix = env;
  }
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* flag) -> std::string {
      const std::string prefix = std::string(flag) + "=";
      if (arg.rfind(prefix, 0) == 0) return arg.substr(prefix.size());
      if (arg == flag && i + 1 < argc) return argv[++i];
      Usage();
      return {};
    };
    if (arg == "--selfcheck") {
      opts.selfcheck = true;
    } else if (arg.rfind("--scenario", 0) == 0) {
      opts.scenario = value("--scenario");
    } else if (arg.rfind("--transport", 0) == 0) {
      lamp::transport::TransportKind kind;
      if (!lamp::transport::ParseTransportKind(value("--transport"), &kind) ||
          kind == lamp::transport::TransportKind::kInProcess) {
        std::fprintf(stderr, "mpc_procs: --transport must be tcp or uds\n");
        return 2;
      }
      opts.kind = kind;
      opts.kind_set = true;
    } else if (arg.rfind("--procs", 0) == 0) {
      opts.procs = static_cast<std::size_t>(std::stoul(value("--procs")));
      if (opts.procs == 0) Usage();
    } else if (arg.rfind("--m", 0) == 0) {
      opts.m = static_cast<std::size_t>(std::stoul(value("--m")));
    } else if (arg.rfind("--seed", 0) == 0) {
      opts.seed = std::stoull(value("--seed"));
    } else {
      Usage();
    }
  }

  std::vector<std::string> names;
  if (opts.scenario == "all") {
    names.assign(std::begin(kScenarioNames), std::end(kScenarioNames));
  } else {
    names.push_back(opts.scenario);
  }

  bool all_ok = true;
  if (opts.selfcheck) {
    // The CI smoke matrix: both socket families (or just the requested
    // one), growing process counts, every scenario — each compared
    // against the in-process reference.
    std::vector<lamp::transport::TransportKind> kinds = {
        lamp::transport::TransportKind::kTcp,
        lamp::transport::TransportKind::kUds};
    if (opts.kind_set) kinds = {opts.kind};
    for (auto kind : kinds) {
      for (std::size_t procs : {std::size_t{1}, std::size_t{2},
                                std::size_t{4}}) {
        Options sweep = opts;
        sweep.kind = kind;
        sweep.procs = procs;
        for (const std::string& name : names) {
          all_ok = RunOne(name, sweep) && all_ok;
        }
      }
    }
  } else {
    for (const std::string& name : names) {
      all_ok = RunOne(name, opts) && all_ok;
    }
  }
  if (!all_ok) {
    std::fprintf(stderr,
                 "mpc_procs: distributed run diverged from the in-process"
                 " reference\n");
    return 1;
  }
  return lamp::obs::audit::FinalizeGlobalAudit();
}
