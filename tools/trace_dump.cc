// trace_dump: renders a lamp.trace.v1 recording as a human-readable
// timeline.
//
//   trace_dump <trace.json>    render a saved trace (see obs/trace.h)
//   trace_dump --demo-mpc      trace a HyperCube triangle run, render it
//   trace_dump --demo-net      trace a broadcast transducer run, render it
//   trace_dump --transport tcp --demo-mpc
//                              demo over a socket backend; the trace then
//                              carries transport.connect/send/recv events
//                              (rendered as the Transport section, and as
//                              the transport.wire_bytes counter track in
//                              --chrome output)
//   trace_dump ... --json      emit the raw trace JSON instead
//   trace_dump ... --chrome    emit Chrome Trace Event Format JSON (open
//                              in Perfetto / chrome://tracing)
//   trace_dump ... --strict    exit non-zero when the trace reports
//                              dropped events (ring overflow)
//   trace_dump ... --stats     print per-kind event counts and drop
//                              totals only (ring-buffer sizing view)
//
// The MPC section renders one heatmap row per round (per-server load as
// block glyphs, normalised to the round maximum) so routing skew is
// visible at a glance; the net section lists transitions in delivery
// order, which is the causal order of the run.

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "cq/eval.h"
#include "cq/parser.h"
#include "common/rng.h"
#include "mpc/hypercube_run.h"
#include "net/network.h"
#include "net/programs.h"
#include "obs/audit/causal.h"
#include "obs/chrome_trace.h"
#include "obs/dist/merge.h"
#include "obs/dist/shard.h"
#include "obs/json.h"
#include "obs/trace.h"
#include "relational/generators.h"
#include "transport/transport.h"

namespace lamp {
namespace {

// One parsed event; kind is the wire name so the renderer works off a
// trace JSON regardless of whether it came from a file or a live Tracer.
struct Event {
  std::uint64_t t_ns = 0;
  std::uint64_t value = 0;
  std::uint32_t a = 0;
  std::uint32_t b = 0;
  std::string kind;
  std::string label;
};

std::vector<Event> EventsFromJson(const obs::JsonValue& trace) {
  std::vector<Event> out;
  const obs::JsonValue* events = trace.Find("events");
  if (events == nullptr || !events->IsArray()) return out;
  for (std::size_t i = 0; i < events->size(); ++i) {
    const obs::JsonValue& e = events->at(i);
    Event ev;
    if (const auto* v = e.Find("t_ns")) ev.t_ns = static_cast<std::uint64_t>(v->AsInt());
    if (const auto* v = e.Find("value")) ev.value = static_cast<std::uint64_t>(v->AsInt());
    if (const auto* v = e.Find("a")) ev.a = static_cast<std::uint32_t>(v->AsInt());
    if (const auto* v = e.Find("b")) ev.b = static_cast<std::uint32_t>(v->AsInt());
    if (const auto* v = e.Find("kind")) ev.kind = v->AsString();
    if (const auto* v = e.Find("label")) ev.label = v->AsString();
    out.push_back(std::move(ev));
  }
  return out;
}

// Eight block glyphs; load 0 renders as '.' so empty servers stay visible.
const char* LoadGlyph(std::uint64_t load, std::uint64_t max) {
  static const char* kBlocks[] = {"▁", "▂", "▃", "▄",
                                  "▅", "▆", "▇", "█"};
  if (load == 0) return ".";
  if (max == 0) return kBlocks[0];
  std::size_t idx = static_cast<std::size_t>((8 * load - 1) / max);
  return kBlocks[std::min<std::size_t>(idx, 7)];
}

void RenderMpc(const std::vector<Event>& events) {
  // round -> (p, total, per-server loads).
  struct Round {
    std::uint64_t p = 0;
    std::uint64_t total = 0;
    std::map<std::uint32_t, std::uint64_t> loads;
  };
  std::map<std::uint32_t, Round> rounds;
  for (const Event& e : events) {
    if (e.kind == "mpc.round_begin") {
      rounds[e.a].p = e.value;
    } else if (e.kind == "mpc.server_load") {
      rounds[e.a].loads[e.b] = e.value;
    } else if (e.kind == "mpc.round_end") {
      rounds[e.a].total = e.value;
    }
  }
  if (rounds.empty()) return;

  std::printf("== MPC rounds (%zu) ==\n", rounds.size());
  std::printf("   load heatmap: one glyph per server, normalised per round"
              " ('.' = zero)\n");
  for (const auto& [idx, round] : rounds) {
    std::uint64_t max_load = 0;
    for (const auto& [server, load] : round.loads) {
      max_load = std::max(max_load, load);
    }
    std::string heat;
    for (std::uint64_t s = 0; s < round.p; ++s) {
      const auto it = round.loads.find(static_cast<std::uint32_t>(s));
      heat += LoadGlyph(it == round.loads.end() ? 0 : it->second, max_load);
    }
    std::printf("  round %2u  p=%-5llu total=%-9llu max=%-8llu |%s|\n", idx,
                static_cast<unsigned long long>(round.p),
                static_cast<unsigned long long>(round.total),
                static_cast<unsigned long long>(max_load), heat.c_str());
  }
  std::printf("\n");
}

void RenderNet(const std::vector<Event>& events) {
  bool any = false;
  for (const Event& e : events) {
    if (e.kind.rfind("net.", 0) == 0) {
      any = true;
      break;
    }
  }
  if (!any) return;

  std::printf("== Transducer network timeline ==\n");
  for (const Event& e : events) {
    const double t_us = static_cast<double>(e.t_ns) / 1000.0;
    if (e.kind == "net.start") {
      std::printf("  %10.1fus  start      node %u (heartbeat)\n", t_us, e.a);
    } else if (e.kind == "net.broadcast") {
      std::printf("  %10.1fus  broadcast  node %u sends %llu fact(s) to all"
                  " others\n",
                  t_us, e.a, static_cast<unsigned long long>(e.value));
    } else if (e.kind == "net.deliver") {
      std::printf("  %10.1fus  deliver    #%-4u -> node %u (%llu fact(s))\n",
                  t_us, e.b, e.a, static_cast<unsigned long long>(e.value));
    } else if (e.kind == "net.drop") {
      std::printf("  %10.1fus  drop       attempt #%-4u -> node %u fails"
                  " (will retransmit)\n",
                  t_us, e.b, e.a);
    } else if (e.kind == "net.duplicate") {
      std::printf("  %10.1fus  duplicate  #%-4u -> node %u (copy stays in"
                  " flight)\n",
                  t_us, e.b, e.a);
    } else if (e.kind == "net.crash") {
      std::printf("  %10.1fus  crash      node %u goes down (%s state)\n",
                  t_us, e.a, e.value != 0 ? "durable" : "volatile");
    } else if (e.kind == "net.restart") {
      std::printf("  %10.1fus  restart    node %u back up (%llu message(s)"
                  " requeued)\n",
                  t_us, e.a, static_cast<unsigned long long>(e.value));
    } else if (e.kind == "net.partition") {
      std::printf("  %10.1fus  partition  %llu node(s) isolated\n", t_us,
                  static_cast<unsigned long long>(e.value));
    } else if (e.kind == "net.heal") {
      std::printf("  %10.1fus  heal       partition removed\n", t_us);
    } else if (e.kind == "net.quiescent") {
      std::printf("  %10.1fus  quiescent  after %llu transition(s)\n", t_us,
                  static_cast<unsigned long long>(e.value));
    }
  }
  std::printf("\n");
}

// --- Two-trace diff -----------------------------------------------------

/// One line of the diff view: the event as the timeline renders it,
/// minus the wall-clock column (schedules are compared causally, so
/// t_ns differences are noise).
std::string EventKey(const Event& e) {
  std::string key = e.kind;
  key += " a=";
  key += std::to_string(e.a);
  key += " b=";
  key += std::to_string(e.b);
  key += " value=";
  key += std::to_string(e.value);
  return key;
}

std::vector<Event> NetEvents(const obs::JsonValue& trace) {
  std::vector<Event> net;
  for (Event& e : EventsFromJson(trace)) {
    if (e.kind.rfind("net.", 0) == 0) net.push_back(std::move(e));
  }
  return net;
}

/// Aligns the two runs' net-event sequences by (kind, a, b, value) and
/// reports the first step where they differ — for a witness/reference
/// pair from the fault explorer, that is the first delivery (or injected
/// fault) distinguishing the divergent schedule from the correct one.
int DiffTraces(const obs::JsonValue& left, const obs::JsonValue& right,
               const std::string& left_name,
               const std::string& right_name) {
  const std::vector<Event> a = NetEvents(left);
  const std::vector<Event> b = NetEvents(right);
  std::printf("diff: %s (%zu net event(s)) vs %s (%zu net event(s))\n\n",
              left_name.c_str(), a.size(), right_name.c_str(), b.size());

  std::size_t common = 0;
  while (common < a.size() && common < b.size() &&
         EventKey(a[common]) == EventKey(b[common])) {
    ++common;
  }
  if (common == a.size() && common == b.size()) {
    std::printf("traces are identical (%zu shared net event(s))\n", common);
    return 0;
  }

  const std::size_t kContext = 4;
  const std::size_t from = common > kContext ? common - kContext : 0;
  std::printf("first divergence at net event #%zu (%zu shared before"
              " it)\n\n",
              common, common);
  for (std::size_t i = from; i < common; ++i) {
    std::printf("    #%-4zu  %s\n", i, EventKey(a[i]).c_str());
  }
  const std::size_t kAfter = 3;
  for (std::size_t i = common; i < std::min(a.size(), common + kAfter);
       ++i) {
    std::printf("  < #%-4zu  %s\n", i, EventKey(a[i]).c_str());
  }
  if (common >= a.size()) {
    std::printf("  < (end of %s)\n", left_name.c_str());
  }
  for (std::size_t i = common; i < std::min(b.size(), common + kAfter);
       ++i) {
    std::printf("  > #%-4zu  %s\n", i, EventKey(b[i]).c_str());
  }
  if (common >= b.size()) {
    std::printf("  > (end of %s)\n", right_name.c_str());
  }
  std::printf("\n  (<) %s   (>) %s\n", left_name.c_str(),
              right_name.c_str());
  return 1;
}

// Transport sections: one summary line per connect (clique setup), then
// per-endpoint egress totals as a heatmap — skewed routing shows up as a
// lopsided byte distribution even before the tuple-level MPC heatmaps.
void RenderTransport(const std::vector<Event>& events) {
  bool any = false;
  for (const Event& e : events) {
    if (e.kind.rfind("transport.", 0) == 0) {
      any = true;
      break;
    }
  }
  if (!any) return;

  std::printf("== Transport (lamp.wire.v1) ==\n");
  static const char* kKindNames[] = {"inproc", "tcp", "uds"};
  for (const Event& e : events) {
    if (e.kind != "transport.connect") continue;
    const char* backend = e.b < 3 ? kKindNames[e.b] : "unknown";
    std::printf("  connect: %u endpoint(s) over %s (%llu fd(s))\n", e.a,
                backend, static_cast<unsigned long long>(e.value));
  }
  std::map<std::uint32_t, std::uint64_t> sent_bytes;
  std::uint64_t frames_sent = 0, bytes_sent = 0;
  std::uint64_t frames_recv = 0, bytes_recv = 0;
  for (const Event& e : events) {
    if (e.kind == "transport.send") {
      ++frames_sent;
      bytes_sent += e.value;
      sent_bytes[e.a] += e.value;
    } else if (e.kind == "transport.recv") {
      ++frames_recv;
      bytes_recv += e.value;
    }
  }
  std::printf("  sent: %llu frame(s), %llu byte(s); received: %llu"
              " frame(s), %llu byte(s)\n",
              static_cast<unsigned long long>(frames_sent),
              static_cast<unsigned long long>(bytes_sent),
              static_cast<unsigned long long>(frames_recv),
              static_cast<unsigned long long>(bytes_recv));
  if (!sent_bytes.empty()) {
    std::uint64_t max = 0;
    std::uint32_t last = 0;
    for (const auto& [endpoint, bytes] : sent_bytes) {
      max = std::max(max, bytes);
      last = std::max(last, endpoint);
    }
    std::string heat;
    for (std::uint32_t ep = 0; ep <= last; ++ep) {
      const auto it = sent_bytes.find(ep);
      heat += LoadGlyph(it == sent_bytes.end() ? 0 : it->second, max);
    }
    std::printf("  egress bytes per endpoint (max=%llu) |%s|\n",
                static_cast<unsigned long long>(max), heat.c_str());
  }
  std::printf("\n");
}

void RenderDatalog(const std::vector<Event>& events) {
  bool any = false;
  for (const Event& e : events) {
    if (e.kind == "datalog.iteration") {
      any = true;
      break;
    }
  }
  if (!any) return;
  std::printf("== Datalog iterations ==\n");
  for (const Event& e : events) {
    if (e.kind != "datalog.iteration") continue;
    std::printf("  stratum %u  iter %2u  delta=%llu\n", e.a, e.b,
                static_cast<unsigned long long>(e.value));
  }
  std::printf("\n");
}

void RenderSpans(const std::vector<Event>& events) {
  struct Agg {
    std::uint64_t count = 0;
    std::uint64_t total_ns = 0;
  };
  std::map<std::string, Agg> spans;
  for (const Event& e : events) {
    if (e.kind != "span" || e.label.empty()) continue;
    Agg& agg = spans[e.label];
    ++agg.count;
    agg.total_ns += e.value;
  }
  if (spans.empty()) return;
  std::printf("== Span aggregates ==\n");
  for (const auto& [label, agg] : spans) {
    std::printf("  %-16s count=%-5llu total=%.3fms mean=%.1fus\n",
                label.c_str(), static_cast<unsigned long long>(agg.count),
                static_cast<double>(agg.total_ns) / 1e6,
                static_cast<double>(agg.total_ns) / 1e3 /
                    static_cast<double>(agg.count));
  }
  std::printf("\n");
}

/// The --stats view: how full the ring got and what filled it. Everything
/// a user needs to size Tracer capacity without opening a Chrome trace:
/// kept/emitted/dropped totals plus per-kind counts of the kept events.
void RenderStats(const obs::JsonValue& trace) {
  std::uint64_t total = 0;
  std::uint64_t dropped = 0;
  std::uint64_t capacity = 0;
  std::uint64_t shards = 0;
  if (const auto* v = trace.Find("total_emitted")) {
    total = static_cast<std::uint64_t>(v->AsInt());
  }
  if (const auto* v = trace.Find("dropped")) {
    dropped = static_cast<std::uint64_t>(v->AsInt());
  }
  if (const auto* v = trace.Find("capacity")) {
    capacity = static_cast<std::uint64_t>(v->AsInt());
  }
  if (const auto* v = trace.Find("shards")) {
    shards = static_cast<std::uint64_t>(v->AsInt());
  }
  const std::vector<Event> events = EventsFromJson(trace);

  std::printf("emitted:  %llu\n", static_cast<unsigned long long>(total));
  std::printf("kept:     %zu\n", events.size());
  std::printf("dropped:  %llu (ring overflow)\n",
              static_cast<unsigned long long>(dropped));
  std::printf("capacity: %llu per shard, %llu shard(s)\n",
              static_cast<unsigned long long>(capacity),
              static_cast<unsigned long long>(shards));
  if (dropped > 0 && capacity > 0) {
    // Suggest the next power of two that would have held everything.
    std::uint64_t need = 1;
    const std::uint64_t per_shard =
        shards > 0 ? (total + shards - 1) / shards : total;
    while (need < per_shard) need <<= 1;
    std::printf("          (a capacity of %llu per shard would have kept"
                " every event)\n",
                static_cast<unsigned long long>(need));
  }
  if (events.empty()) return;
  std::printf("\nper-kind counts:\n");
  std::map<std::string, std::uint64_t> by_kind;
  for (const Event& e : events) ++by_kind[e.kind];
  std::vector<std::pair<std::string, std::uint64_t>> sorted(by_kind.begin(),
                                                            by_kind.end());
  std::sort(sorted.begin(), sorted.end(),
            [](const auto& x, const auto& y) {
              if (x.second != y.second) return x.second > y.second;
              return x.first < y.first;
            });
  for (const auto& [kind, count] : sorted) {
    std::printf("  %-20s %llu\n", kind.c_str(),
                static_cast<unsigned long long>(count));
  }
}

void Render(const obs::JsonValue& trace) {
  const obs::JsonValue* schema = trace.Find("schema");
  if (schema == nullptr || schema->AsString() != "lamp.trace.v1") {
    std::fprintf(stderr, "warning: missing/unknown trace schema marker\n");
  }
  std::uint64_t total = 0;
  std::uint64_t dropped = 0;
  if (const auto* v = trace.Find("total_emitted")) {
    total = static_cast<std::uint64_t>(v->AsInt());
  }
  if (const auto* v = trace.Find("dropped")) {
    dropped = static_cast<std::uint64_t>(v->AsInt());
  }
  std::printf("trace: %llu event(s) emitted, %llu dropped (ring overflow)\n\n",
              static_cast<unsigned long long>(total),
              static_cast<unsigned long long>(dropped));
  const std::vector<Event> events = EventsFromJson(trace);
  RenderMpc(events);
  RenderNet(events);
  RenderTransport(events);
  RenderDatalog(events);
  RenderSpans(events);
}

obs::JsonValue DemoMpcTrace() {
  Schema schema;
  const ConjunctiveQuery q =
      ParseQuery(schema, "H(x,y,z) <- R(x,y), S(y,z), T(z,x)");
  Rng rng(7);
  Instance db;
  AddRandomGraph(schema, schema.IdOf("R"), 4000, 600, rng, db);
  AddRandomGraph(schema, schema.IdOf("S"), 4000, 600, rng, db);
  AddRandomGraph(schema, schema.IdOf("T"), 4000, 600, rng, db);
  obs::Tracer tracer;
  {
    obs::ScopedTracer install(tracer);
    (void)RunHyperCubeUniform(q, db, 64);
  }
  return obs::TraceToJson(tracer);
}

obs::JsonValue DemoNetTrace() {
  Schema schema;
  const RelationId e = schema.AddRelation("E", 2);
  const ConjunctiveQuery triangle = ParseQuery(
      schema, "H(x,y,z) <- E(x,y), E(y,z), E(z,x), x != y, y != z, x != z");
  Rng rng(7);
  Instance graph;
  AddRandomGraph(schema, e, 40, 12, rng, graph);
  AddTriangleClusters(schema, e, 2, 100, graph);
  MonotoneBroadcastProgram program(
      [&triangle](const Instance& instance) {
        return Evaluate(triangle, instance);
      });
  TransducerNetwork net(DistributeRoundRobin(graph, 4), program, nullptr,
                        /*aware=*/false);
  obs::Tracer tracer;
  {
    obs::ScopedTracer install(tracer);
    (void)net.Run(/*seed=*/3);
  }
  return obs::TraceToJson(tracer);
}

std::optional<obs::JsonValue> LoadTrace(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "trace_dump: cannot open %s\n", path.c_str());
    return std::nullopt;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  std::optional<obs::JsonValue> parsed = obs::JsonValue::Parse(buf.str());
  if (!parsed.has_value()) {
    std::fprintf(stderr, "trace_dump: %s is not valid JSON\n", path.c_str());
  }
  return parsed;
}

// The header's dropped count; a truncated trace must never render as if
// it were complete.
std::uint64_t DroppedCount(const obs::JsonValue& trace) {
  const obs::JsonValue* v = trace.Find("dropped");
  return v == nullptr ? 0 : static_cast<std::uint64_t>(v->AsInt());
}

// --- merged multi-process traces ----------------------------------------

/// The default --merge rendering: per-shard health (including each
/// process's dropped-event count — a truncated shard silently skews every
/// latency number, so it is surfaced per rank, not just as a total),
/// estimated clock offsets, per-round wire-latency percentiles, and the
/// cross-process causal profile.
void RenderMerged(const obs::dist::MergedTrace& merged) {
  std::printf("merged trace: %llu process(es), label '%s', trace id"
              " %016llx\n",
              static_cast<unsigned long long>(merged.procs),
              merged.label.c_str(),
              static_cast<unsigned long long>(merged.trace_id));
  std::printf("  matched pairs: %zu  unmatched: %llu send(s) / %llu"
              " recv(s)\n\n",
              merged.pairs.size(),
              static_cast<unsigned long long>(merged.unmatched_sends),
              static_cast<unsigned long long>(merged.unmatched_recvs));

  std::printf("== shards ==\n");
  for (const obs::dist::TraceShard& shard : merged.shards) {
    std::printf("  rank %-3llu events=%-6zu dropped=%-6llu offset=%+lldns\n",
                static_cast<unsigned long long>(shard.header.rank),
                shard.events.size(),
                static_cast<unsigned long long>(shard.header.dropped),
                static_cast<long long>(
                    merged.offset_ns[shard.header.rank]));
  }
  if (merged.total_dropped > 0) {
    std::printf("  WARNING: %llu event(s) dropped to ring overflow — the"
                " merged timeline is TRUNCATED\n",
                static_cast<unsigned long long>(merged.total_dropped));
  }
  std::printf("\n");

  const std::vector<obs::dist::RoundLatency> rounds =
      obs::dist::RoundLatencies(merged);
  if (!rounds.empty()) {
    std::printf("== wire latency (aligned send -> recv) ==\n");
    std::printf("  %-8s %-8s %-12s %-12s %-12s %-12s\n", "round", "pairs",
                "p50", "p95", "p99", "max");
    for (const obs::dist::RoundLatency& rl : rounds) {
      std::printf("  %-8llu %-8zu %-12llu %-12llu %-12llu %-12llu\n",
                  static_cast<unsigned long long>(rl.round), rl.stats.count,
                  static_cast<unsigned long long>(rl.stats.p50_ns),
                  static_cast<unsigned long long>(rl.stats.p95_ns),
                  static_cast<unsigned long long>(rl.stats.p99_ns),
                  static_cast<unsigned long long>(rl.stats.max_ns));
    }
    const obs::dist::LatencyStats e2e = obs::dist::EndToEndLatency(merged);
    std::printf("  %-8s %-8zu %-12llu %-12llu %-12llu %-12llu  (ns)\n",
                "all", e2e.count,
                static_cast<unsigned long long>(e2e.p50_ns),
                static_cast<unsigned long long>(e2e.p95_ns),
                static_cast<unsigned long long>(e2e.p99_ns),
                static_cast<unsigned long long>(e2e.max_ns));
    std::printf("\n");
  }

  if (!merged.pairs.empty()) {
    std::printf("== cross-process causality ==\n");
    std::printf("%s\n",
                obs::audit::BuildCausalReport(merged).Render().c_str());
  }
}

/// --merge entry point: load every shard, merge, render/emit.
int MergeMain(const std::vector<std::string>& files, bool raw_json,
              bool chrome, bool strict) {
  if (files.empty()) {
    std::fprintf(stderr, "trace_dump: --merge needs shard files\n");
    return 2;
  }
  std::vector<obs::dist::TraceShard> shards;
  for (const std::string& path : files) {
    std::string err;
    auto shard = obs::dist::LoadShardFile(path, &err);
    if (!shard.has_value()) {
      std::fprintf(stderr, "trace_dump: %s: %s\n", path.c_str(),
                   err.c_str());
      return 2;
    }
    if (shard->header.dropped > 0) {
      std::fprintf(stderr,
                   "trace_dump: WARNING: shard %s (rank %llu) dropped %llu"
                   " event(s) to ring overflow\n",
                   path.c_str(),
                   static_cast<unsigned long long>(shard->header.rank),
                   static_cast<unsigned long long>(shard->header.dropped));
    }
    shards.push_back(std::move(*shard));
  }
  std::string err;
  const auto merged = obs::dist::MergeShards(std::move(shards), &err);
  if (!merged.has_value()) {
    std::fprintf(stderr, "trace_dump: merge failed: %s\n", err.c_str());
    return 2;
  }
  if (raw_json) {
    std::printf("%s\n", obs::dist::MergedTraceJson(*merged).Dump(2).c_str());
  } else if (chrome) {
    std::printf("%s\n",
                obs::dist::MergedChromeTrace(*merged).Dump(1).c_str());
  } else {
    RenderMerged(*merged);
  }
  if (strict && merged->total_dropped > 0) return 3;
  return 0;
}

int Main(int argc, char** argv) {
  transport::ConfigureFromCommandLine(&argc, argv);
  bool raw_json = false;
  bool chrome = false;
  bool strict = false;
  bool diff = false;
  bool stats = false;
  bool merge = false;
  std::string mode;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      raw_json = true;
    } else if (arg == "--chrome") {
      chrome = true;
    } else if (arg == "--strict") {
      strict = true;
    } else if (arg == "--diff") {
      diff = true;
    } else if (arg == "--stats") {
      stats = true;
    } else if (arg == "--merge") {
      merge = true;
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: trace_dump [--json | --chrome | --stats] [--strict]"
          " (<trace.json> | --demo-mpc | --demo-net)\n"
          "       trace_dump --diff <a.json> <b.json>\n"
          "       trace_dump --merge [--json | --chrome] [--strict]"
          " <shard.jsonl...>\n"
          "\n"
          "--merge joins the lamp.traceshard.v1 files of one mpc_procs\n"
          "run (LAMP_TRACE_SHARD=<prefix> mpc_procs ...) into a single\n"
          "mesh-wide trace: clocks aligned via the ring seed-exchange\n"
          "timing, send/recv pairs matched by (sender rank, span) and\n"
          "rendered as per-round latency percentiles plus a cross-process\n"
          "causal profile. With --chrome, each server rank becomes one\n"
          "process lane and matched pairs become flow arrows; --json\n"
          "emits the lamp.merged_trace.v1 document; --strict exits 3 if\n"
          "any shard dropped events.\n"
          "\n"
          "--chrome converts the trace to the Chrome Trace Event Format;\n"
          "save it to a file and open it at ui.perfetto.dev or in\n"
          "chrome://tracing (shards map to threads, spans to slices,\n"
          "loads to counter tracks).\n"
          "--strict exits with status 3 when the trace header reports\n"
          "dropped events, so pipelines notice truncated recordings.\n"
          "--stats prints only per-kind event counts plus the\n"
          "kept/emitted/dropped totals — enough to size the Tracer ring\n"
          "buffer without rendering the timeline.\n"
          "--diff aligns two recordings' transducer-network events by\n"
          "(kind, actor, payload), ignoring wall-clock time, and reports\n"
          "the first divergent delivery — pair it with the witness and\n"
          "reference traces written by fault_hunt.\n");
      return 0;
    } else {
      files.push_back(arg);
      mode = arg;
    }
  }
  if (merge) {
    return MergeMain(files, raw_json, chrome, strict);
  }
  if (diff) {
    if (files.size() != 2) {
      std::fprintf(stderr, "trace_dump: --diff needs exactly two trace"
                           " files\n");
      return 2;
    }
    const std::optional<obs::JsonValue> left = LoadTrace(files[0]);
    const std::optional<obs::JsonValue> right = LoadTrace(files[1]);
    if (!left.has_value() || !right.has_value()) return 2;
    return DiffTraces(*left, *right, files[0], files[1]);
  }
  if (mode.empty()) {
    std::fprintf(stderr,
                 "trace_dump: need a trace file, --demo-mpc or --demo-net"
                 " (see --help)\n");
    return 2;
  }

  obs::JsonValue trace;
  if (mode == "--demo-mpc") {
    trace = DemoMpcTrace();
  } else if (mode == "--demo-net") {
    trace = DemoNetTrace();
  } else {
    std::optional<obs::JsonValue> parsed = LoadTrace(mode);
    if (!parsed.has_value()) return 2;
    trace = std::move(*parsed);
  }

  const std::uint64_t dropped = DroppedCount(trace);
  if (dropped > 0) {
    std::fprintf(stderr,
                 "trace_dump: WARNING: trace dropped %llu event(s) to ring"
                 " overflow — the rendered timeline is TRUNCATED (record"
                 " with a larger Tracer capacity to keep everything)\n",
                 static_cast<unsigned long long>(dropped));
  }
  if (raw_json) {
    std::printf("%s\n", trace.Dump(2).c_str());
  } else if (chrome) {
    std::printf("%s\n", obs::ChromeTraceFromTraceJson(trace).Dump(1).c_str());
  } else if (stats) {
    RenderStats(trace);
  } else {
    Render(trace);
  }
  if (dropped > 0 && strict) return 3;
  return 0;
}

}  // namespace
}  // namespace lamp

int main(int argc, char** argv) { return lamp::Main(argc, argv); }
