// bench_runner: runs the bench suite from bench/MANIFEST.json, aggregates
// the JSON-lines records every bench emits (obs/bench_report.h) into a
// perf store (obs/perfdb.h), writes a BENCH_report.json, and — given a
// baseline — gates on noise-aware regressions.
//
//   bench_runner --repeat 3                      run suite, write report
//   bench_runner --threads 1,4                   run at several lane counts
//   bench_runner --filter hypercube              subset of the manifest
//   bench_runner --baseline BENCH_baseline.json  compare + gate (exit 1)
//   bench_runner --baseline B.json --update      rewrite the baseline
//   bench_runner --compare RECORDS.jsonl ...     skip running; diff files
//   bench_runner --audit AUDIT.jsonl             collect lamp.audit.v1
//                                                records from the benches
//   bench_runner --audit A.jsonl --audit-hard-fail
//                                                exit 4 on any unexpected
//                                                load-bound violation
//   bench_runner --plan PLAN.jsonl               collect the benches'
//                                                lamp.plan_agreement.v1
//                                                records (sa/plan)
//
// Every record is stamped with run provenance (git rev, ISO date, host,
// repeat index) so BENCH_report.json is a self-describing point on the
// PR-to-PR perf trajectory. Exit codes: 0 ok, 1 regression, 2 usage or
// environment error (missing binary, bench failed, unreadable baseline),
// 4 audit hard-fail (obs/audit/audit.h).

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "obs/audit/audit.h"
#include "obs/bench_report.h"
#include "obs/json.h"
#include "obs/perfdb.h"
#include "sa/plan/agreement.h"

namespace lamp {
namespace {

struct Options {
  std::string manifest = "bench/MANIFEST.json";
  std::string bin_dir;  // Defaults from argv[0]'s directory.
  std::string out = "BENCH_report.json";
  std::string markdown;          // Optional --md report path.
  std::string baseline;          // --baseline file.
  std::string compare;           // --compare: records file standing in for a run.
  std::string filter;            // Substring filter on manifest names.
  std::string audit;             // --audit: lamp.audit.v1 JSON-lines sink.
  std::string plan;              // --plan: lamp.plan_agreement.v1 sink.
  std::vector<int> threads{1};   // --threads 1,4
  int repeat = 1;
  bool update_baseline = false;
  bool audit_hard_fail = false;
  obs::DiffThresholds thresholds;
};

void Usage() {
  std::printf(
      "usage: bench_runner [options]\n"
      "  --manifest FILE   bench manifest (default bench/MANIFEST.json)\n"
      "  --bin-dir DIR     directory with bench binaries (default: next to\n"
      "                    this binary, ../bench)\n"
      "  --repeat N        repeats per configuration (default 1)\n"
      "  --threads LIST    comma-separated lane counts (default 1)\n"
      "  --filter SUBSTR   only manifest entries whose name contains SUBSTR\n"
      "  --out FILE        aggregated report (default BENCH_report.json)\n"
      "  --md FILE         also write the comparison as markdown\n"
      "  --audit FILE      collect the benches' lamp.audit.v1 records into\n"
      "                    FILE and print a load-bound summary\n"
      "  --audit-hard-fail exit 4 when any record violates its bound\n"
      "                    without being marked expected (needs --audit)\n"
      "  --plan FILE       collect the benches' planner-agreement records\n"
      "                    into FILE (gate them with: lamp_plan check)\n"
      "  --baseline FILE   compare against a baseline; exit 1 on regression\n"
      "  --update          rewrite --baseline from this run and exit 0\n"
      "  --compare FILE    don't run benches; read records/report/baseline\n"
      "                    from FILE as the current side\n"
      "  --rel-tol F       relative tolerance (default 0.10)\n"
      "  --noise-mult F    noise multiplier (default 3.0)\n"
      "  --min-delta-ms F  absolute delta floor in ms (default 0.05)\n");
}

std::optional<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

bool WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out << content;
  return static_cast<bool>(out);
}

std::string Dirname(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

/// First line of a command's stdout, or fallback.
std::string CaptureLine(const char* cmd, const std::string& fallback) {
  std::FILE* pipe = ::popen(cmd, "r");
  if (pipe == nullptr) return fallback;
  char buf[256] = {0};
  std::string out = fallback;
  if (std::fgets(buf, sizeof(buf), pipe) != nullptr) {
    out = buf;
    while (!out.empty() && (out.back() == '\n' || out.back() == '\r')) {
      out.pop_back();
    }
    if (out.empty()) out = fallback;
  }
  ::pclose(pipe);
  return out;
}

obs::JsonValue RunMetadata(const Options& opt) {
  obs::JsonValue meta = obs::JsonValue::Object();
  meta.Set("git_rev",
           CaptureLine("git rev-parse --short HEAD 2>/dev/null", "unknown"));
  char stamp[64] = "unknown";
  const std::time_t now = std::time(nullptr);
  std::tm tm_utc;
  if (gmtime_r(&now, &tm_utc) != nullptr) {
    std::strftime(stamp, sizeof(stamp), "%Y-%m-%dT%H:%M:%SZ", &tm_utc);
  }
  meta.Set("date", stamp);
  char host[256] = {0};
  meta.Set("host", ::gethostname(host, sizeof(host) - 1) == 0 &&
                           host[0] != '\0'
                       ? host
                       : "unknown");
  meta.Set("repeats", opt.repeat);
  obs::JsonValue threads = obs::JsonValue::Array();
  for (int t : opt.threads) threads.PushBack(t);
  meta.Set("threads", std::move(threads));
  return meta;
}

struct ManifestEntry {
  std::string name;
  std::string bin;
  // Transport fan-out: one run per listed backend, passed as
  // `--transport <kind>`. A single empty string means "no flag" (the
  // bench's default backend), keeping entries without the key unchanged.
  std::vector<std::string> transports{std::string()};
};

std::optional<std::vector<ManifestEntry>> LoadManifest(
    const std::string& path) {
  const std::optional<std::string> text = ReadFile(path);
  if (!text.has_value()) {
    std::fprintf(stderr, "bench_runner: cannot read manifest %s\n",
                 path.c_str());
    return std::nullopt;
  }
  const std::optional<obs::JsonValue> doc = obs::JsonValue::Parse(*text);
  if (!doc.has_value() || !doc->IsObject()) {
    std::fprintf(stderr, "bench_runner: %s is not a JSON object\n",
                 path.c_str());
    return std::nullopt;
  }
  const obs::JsonValue* benches = doc->Find("benches");
  if (benches == nullptr || !benches->IsArray()) {
    std::fprintf(stderr, "bench_runner: %s has no \"benches\" array\n",
                 path.c_str());
    return std::nullopt;
  }
  std::vector<ManifestEntry> out;
  for (std::size_t i = 0; i < benches->size(); ++i) {
    const obs::JsonValue& e = benches->at(i);
    const obs::JsonValue* name = e.Find("name");
    const obs::JsonValue* bin = e.Find("bin");
    if (name == nullptr || !name->IsString() || bin == nullptr ||
        !bin->IsString()) {
      std::fprintf(stderr,
                   "bench_runner: manifest entry %zu lacks name/bin\n", i);
      return std::nullopt;
    }
    ManifestEntry entry;
    entry.name = name->AsString();
    entry.bin = bin->AsString();
    const obs::JsonValue* transports = e.Find("transports");
    if (transports != nullptr) {
      if (!transports->IsArray() || transports->size() == 0) {
        std::fprintf(stderr,
                     "bench_runner: manifest entry %zu has a non-array or"
                     " empty \"transports\"\n",
                     i);
        return std::nullopt;
      }
      entry.transports.clear();
      for (std::size_t t = 0; t < transports->size(); ++t) {
        const obs::JsonValue& kind = transports->at(t);
        if (!kind.IsString() || kind.AsString().empty()) {
          std::fprintf(stderr,
                       "bench_runner: manifest entry %zu: \"transports\""
                       " holds a non-string element\n",
                       i);
          return std::nullopt;
        }
        entry.transports.push_back(kind.AsString());
      }
    }
    out.push_back(std::move(entry));
  }
  return out;
}

/// Loads "the other side" of a comparison from any of the formats this
/// tool reads or writes: a report/baseline document (uses "summaries"),
/// or raw JSON-lines records (summarised on the fly).
std::optional<std::map<obs::PerfKey, obs::PerfSummary>> LoadSummaries(
    const std::string& path) {
  const std::optional<std::string> text = ReadFile(path);
  if (!text.has_value()) {
    std::fprintf(stderr, "bench_runner: cannot read %s\n", path.c_str());
    return std::nullopt;
  }
  const std::optional<obs::JsonValue> whole = obs::JsonValue::Parse(*text);
  if (whole.has_value() && whole->IsObject() &&
      whole->Find("summaries") != nullptr) {
    return obs::SummariesFromJson(*whole);
  }
  obs::PerfDb db;
  const obs::PerfDb::LoadStats stats = db.IngestJsonLines(*text);
  for (const std::string& err : stats.errors) {
    std::fprintf(stderr, "bench_runner: %s: %s\n", path.c_str(), err.c_str());
  }
  if (stats.records == 0) {
    std::fprintf(stderr, "bench_runner: %s holds no bench records\n",
                 path.c_str());
    return std::nullopt;
  }
  return db.Summaries();
}

bool ParseThreadsList(const char* text, std::vector<int>* out) {
  out->clear();
  std::string token;
  std::istringstream in(text);
  while (std::getline(in, token, ',')) {
    const int v = std::atoi(token.c_str());
    if (v < 1) return false;
    out->push_back(v);
  }
  return !out->empty();
}

/// Shell-quotes with single quotes (paths and JSON may hold spaces).
std::string Quoted(const std::string& s) {
  std::string out = "'";
  for (char c : s) {
    if (c == '\'') {
      out += "'\\''";
    } else {
      out += c;
    }
  }
  out += "'";
  return out;
}

int RunSuite(const Options& opt, const obs::JsonValue& meta, obs::PerfDb* db) {
  const std::optional<std::vector<ManifestEntry>> manifest =
      LoadManifest(opt.manifest);
  if (!manifest.has_value()) return 2;

  std::vector<ManifestEntry> selected;
  for (const ManifestEntry& e : *manifest) {
    if (opt.filter.empty() || e.name.find(opt.filter) != std::string::npos) {
      selected.push_back(e);
    }
  }
  if (selected.empty()) {
    std::fprintf(stderr, "bench_runner: filter %s matches no manifest entry\n",
                 opt.filter.c_str());
    return 2;
  }

  // Validate the whole selection before running anything: a manifest
  // entry whose binary is missing used to surface only when the run
  // reached it, wasting every bench before it. Collect all problems.
  std::vector<std::string> missing;
  for (const ManifestEntry& e : selected) {
    const std::string bin = opt.bin_dir + "/" + e.bin;
    if (::access(bin.c_str(), X_OK) != 0) {
      missing.push_back(e.name + " -> " + bin);
    }
  }
  if (!missing.empty()) {
    std::fprintf(stderr,
                 "bench_runner: %zu manifest entr%s name no built bench"
                 " binary (build the bench targets, or pass --bin-dir):\n",
                 missing.size(), missing.size() == 1 ? "y" : "ies");
    for (const std::string& m : missing) {
      std::fprintf(stderr, "  %s\n", m.c_str());
    }
    return 2;
  }

  const std::string records_path =
      opt.out + ".records.tmp";  // One shared append target, wiped first.
  std::remove(records_path.c_str());
  if (!opt.audit.empty()) std::remove(opt.audit.c_str());
  if (!opt.plan.empty()) std::remove(opt.plan.c_str());
  const std::string meta_json = meta.Dump();

  std::size_t run = 0;
  std::size_t total = 0;
  for (const ManifestEntry& e : selected) {
    total += e.transports.size() * opt.threads.size();
  }
  for (const ManifestEntry& e : selected) {
    const std::string bin = opt.bin_dir + "/" + e.bin;
    for (const std::string& transport : e.transports) {
      const std::string transport_flag =
          transport.empty() ? std::string()
                            : " --transport " + Quoted(transport);
      for (int t : opt.threads) {
        ++run;
        std::printf("[%zu/%zu] %s%s --threads %d --repeat %d\n", run, total,
                    e.name.c_str(), transport_flag.c_str(), t, opt.repeat);
        std::fflush(stdout);
        // The filter '$^' matches no registered microbenchmark, so only the
        // instrumented table section (and its reporter flush) executes.
        // The audit sink is shared the same way as the records sink; the
        // children never hard-fail themselves (the runner gates once over
        // the aggregate, keeping per-bench exit codes clean).
        const std::string audit_env =
            opt.audit.empty()
                ? std::string()
                : std::string(obs::audit::kAuditJsonEnvVar) + "=" +
                      Quoted(opt.audit) + " ";
        const std::string plan_env =
            opt.plan.empty()
                ? std::string()
                : std::string(sa::plan::kPlanJsonEnvVar) + "=" +
                      Quoted(opt.plan) + " ";
        const std::string cmd =
            audit_env + plan_env + std::string(obs::kBenchJsonEnvVar) + "=" +
            Quoted(records_path) + " " + obs::kBenchMetaEnvVar + "=" +
            Quoted(meta_json) + " " + Quoted(bin) + transport_flag +
            " --threads " + std::to_string(t) + " --repeat " +
            std::to_string(opt.repeat) + " --benchmark_filter='$^'" +
            " > /dev/null";
        const int status = std::system(cmd.c_str());
        if (status != 0) {
          std::fprintf(stderr, "bench_runner: %s exited with status %d\n",
                       e.bin.c_str(), status);
          std::remove(records_path.c_str());
          return 2;
        }
      }
    }
  }

  const std::optional<std::string> records = ReadFile(records_path);
  std::remove(records_path.c_str());
  if (!records.has_value()) {
    std::fprintf(stderr, "bench_runner: benches produced no records\n");
    return 2;
  }
  const obs::PerfDb::LoadStats stats = db->IngestJsonLines(*records);
  for (const std::string& err : stats.errors) {
    std::fprintf(stderr, "bench_runner: %s\n", err.c_str());
  }
  std::printf("collected %zu record(s) across %zu configuration(s)%s\n",
              db->NumRecords(), db->Summaries().size(),
              stats.malformed > 0 ? " (some lines were malformed)" : "");
  return 0;
}

/// Summarises the lamp.audit.v1 records the benches appended to
/// opt.audit; returns kAuditHardFailExit when --audit-hard-fail is set
/// and some record violates its bound without being marked expected.
int SummarizeAudit(const Options& opt) {
  const std::optional<std::string> text = ReadFile(opt.audit);
  if (!text.has_value() || text->empty()) {
    std::fprintf(stderr, "bench_runner: benches emitted no audit records"
                         " into %s\n",
                 opt.audit.c_str());
    // A hard-fail run that audited nothing is itself a failure: the gate
    // would otherwise pass vacuously when the benches lose their audit
    // instrumentation.
    return opt.audit_hard_fail ? 2 : 0;
  }
  std::size_t total = 0, passed = 0, expected = 0;
  std::vector<const obs::audit::AuditRecord*> hard;
  std::vector<obs::audit::AuditRecord> records;
  std::istringstream lines(*text);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.empty() || line[0] == '#') continue;
    const std::optional<obs::JsonValue> doc = obs::JsonValue::Parse(line);
    std::optional<obs::audit::AuditRecord> record;
    if (doc.has_value()) record = obs::audit::AuditRecord::FromJson(*doc);
    if (!record.has_value()) {
      std::fprintf(stderr, "bench_runner: malformed audit record in %s\n",
                   opt.audit.c_str());
      continue;
    }
    records.push_back(std::move(*record));
  }
  for (const obs::audit::AuditRecord& r : records) {
    ++total;
    if (r.Pass()) {
      ++passed;
    } else if (r.expected_violation) {
      ++expected;
    }
  }
  for (const obs::audit::AuditRecord& r : records) {
    if (r.HardViolation()) hard.push_back(&r);
  }
  std::printf("audit: %zu record(s) in %s — %zu within bound, %zu expected"
              " violation(s), %zu hard violation(s)\n",
              total, opt.audit.c_str(), passed, expected, hard.size());
  for (const obs::audit::AuditRecord* r : hard) {
    std::fprintf(stderr,
                 "audit VIOLATION: %s/%s (%s, p=%zu) measured %zu vs bound"
                 " %.1f x slack %.1f\n",
                 r->bench.c_str(), r->label.c_str(),
                 std::string(obs::audit::StrategyName(r->strategy)).c_str(),
                 r->p, r->measured_max_load, r->bound.tuples, r->slack);
  }
  if (opt.audit_hard_fail && !hard.empty()) {
    std::printf("audit gate: FAIL (%zu unexpected load-bound"
                " violation(s))\n",
                hard.size());
    return obs::audit::kAuditHardFailExit;
  }
  if (opt.audit_hard_fail) std::printf("audit gate: ok\n");
  return 0;
}

/// Counts the lamp.plan_agreement.v1 records the benches appended to
/// opt.plan and reports immediate disagreements. The committed-pin gate
/// lives in `lamp_plan check`; the runner only surfaces the raw tally so
/// a run that silently emitted nothing is visible right away.
int SummarizePlan(const Options& opt) {
  const std::optional<std::string> text = ReadFile(opt.plan);
  if (!text.has_value() || text->empty()) {
    std::fprintf(stderr,
                 "bench_runner: benches emitted no planner-agreement"
                 " records into %s\n",
                 opt.plan.c_str());
    return 2;
  }
  std::size_t total = 0, agreed = 0;
  std::istringstream lines(*text);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.empty() || line[0] != '{') continue;
    const std::optional<obs::JsonValue> doc = obs::JsonValue::Parse(line);
    if (!doc.has_value()) continue;
    const std::optional<sa::plan::AgreementRecord> record =
        sa::plan::AgreementRecord::FromJson(*doc);
    if (!record.has_value()) continue;
    ++total;
    if (record->Agree()) ++agreed;
  }
  std::printf("plan: %zu agreement record(s) in %s — %zu agree, %zu"
              " disagree (gate: lamp_plan check --pins bench/PLAN_pins.json"
              " %s)\n",
              total, opt.plan.c_str(), agreed, total - agreed,
              opt.plan.c_str());
  if (total == 0) {
    std::fprintf(stderr,
                 "bench_runner: %s holds no parseable planner-agreement"
                 " records\n",
                 opt.plan.c_str());
    return 2;
  }
  return 0;
}

int Main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "bench_runner: %s needs a value\n", flag);
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      Usage();
      return 0;
    } else if (arg == "--manifest") {
      const char* v = next("--manifest");
      if (v == nullptr) return 2;
      opt.manifest = v;
    } else if (arg == "--bin-dir") {
      const char* v = next("--bin-dir");
      if (v == nullptr) return 2;
      opt.bin_dir = v;
    } else if (arg == "--repeat") {
      const char* v = next("--repeat");
      if (v == nullptr) return 2;
      opt.repeat = std::max(1, std::atoi(v));
    } else if (arg == "--threads") {
      const char* v = next("--threads");
      if (v == nullptr || !ParseThreadsList(v, &opt.threads)) {
        std::fprintf(stderr, "bench_runner: bad --threads list\n");
        return 2;
      }
    } else if (arg == "--filter") {
      const char* v = next("--filter");
      if (v == nullptr) return 2;
      opt.filter = v;
    } else if (arg == "--out") {
      const char* v = next("--out");
      if (v == nullptr) return 2;
      opt.out = v;
    } else if (arg == "--md") {
      const char* v = next("--md");
      if (v == nullptr) return 2;
      opt.markdown = v;
    } else if (arg == "--baseline") {
      const char* v = next("--baseline");
      if (v == nullptr) return 2;
      opt.baseline = v;
    } else if (arg == "--compare") {
      const char* v = next("--compare");
      if (v == nullptr) return 2;
      opt.compare = v;
    } else if (arg == "--audit") {
      const char* v = next("--audit");
      if (v == nullptr) return 2;
      opt.audit = v;
    } else if (arg == "--plan") {
      const char* v = next("--plan");
      if (v == nullptr) return 2;
      opt.plan = v;
    } else if (arg == "--audit-hard-fail") {
      opt.audit_hard_fail = true;
    } else if (arg == "--update") {
      opt.update_baseline = true;
    } else if (arg == "--rel-tol") {
      const char* v = next("--rel-tol");
      if (v == nullptr) return 2;
      opt.thresholds.rel_tolerance = std::atof(v);
    } else if (arg == "--noise-mult") {
      const char* v = next("--noise-mult");
      if (v == nullptr) return 2;
      opt.thresholds.noise_mult = std::atof(v);
    } else if (arg == "--min-delta-ms") {
      const char* v = next("--min-delta-ms");
      if (v == nullptr) return 2;
      opt.thresholds.min_delta_ns = std::atof(v) * 1e6;
    } else {
      std::fprintf(stderr, "bench_runner: unknown argument %s\n", arg.c_str());
      Usage();
      return 2;
    }
  }
  if (opt.bin_dir.empty()) {
    opt.bin_dir = Dirname(argv[0]) + "/../bench";
  }
  if (opt.update_baseline && opt.baseline.empty()) {
    std::fprintf(stderr, "bench_runner: --update needs --baseline\n");
    return 2;
  }
  if (opt.audit_hard_fail && opt.audit.empty()) {
    std::fprintf(stderr, "bench_runner: --audit-hard-fail needs --audit\n");
    return 2;
  }
  if (!opt.audit.empty() && !opt.compare.empty()) {
    std::fprintf(stderr, "bench_runner: --audit needs a real run, not"
                         " --compare\n");
    return 2;
  }
  if (!opt.plan.empty() && !opt.compare.empty()) {
    std::fprintf(stderr, "bench_runner: --plan needs a real run, not"
                         " --compare\n");
    return 2;
  }

  // Load the baseline before running anything, for the same reason the
  // suite validates its binaries up front: an unreadable or malformed
  // baseline used to surface only after the whole suite had run, wasting
  // every measurement. --update rewrites the file, so only the compare
  // path needs it readable.
  std::optional<std::map<obs::PerfKey, obs::PerfSummary>> baseline;
  if (!opt.baseline.empty() && !opt.update_baseline) {
    baseline = LoadSummaries(opt.baseline);
    if (!baseline.has_value()) {
      std::fprintf(stderr,
                   "bench_runner: cannot load baseline %s — nothing was run;"
                   " fix the file or rebuild it with --update\n",
                   opt.baseline.c_str());
      return 2;
    }
  }

  const obs::JsonValue meta = RunMetadata(opt);
  obs::PerfDb db;
  std::map<obs::PerfKey, obs::PerfSummary> current;
  if (!opt.compare.empty()) {
    const auto loaded = LoadSummaries(opt.compare);
    if (!loaded.has_value()) return 2;
    current = *loaded;
  } else {
    const int status = RunSuite(opt, meta, &db);
    if (status != 0) return status;
    current = db.Summaries();

    // The aggregated report: provenance + per-key summaries + raw records.
    obs::JsonValue report = obs::JsonValue::Object();
    report.Set("schema", "lamp.bench_report.v1");
    report.Set("meta", meta);
    report.Set("summaries", *db.SummariesToJson().Find("summaries"));
    report.Set("records", db.RecordsToJson());
    if (!WriteFile(opt.out, report.Dump(1) + "\n")) {
      std::fprintf(stderr, "bench_runner: cannot write %s\n",
                   opt.out.c_str());
      return 2;
    }
    std::printf("wrote %s\n", opt.out.c_str());

    if (!opt.audit.empty()) {
      const int audit_status = SummarizeAudit(opt);
      if (audit_status != 0) return audit_status;
    }
    if (!opt.plan.empty()) {
      const int plan_status = SummarizePlan(opt);
      if (plan_status != 0) return plan_status;
    }
  }

  if (opt.baseline.empty()) return 0;

  if (opt.update_baseline) {
    obs::JsonValue baseline = obs::JsonValue::Object();
    baseline.Set("schema", "lamp.perf_baseline.v1");
    baseline.Set("meta", meta);
    // Only the fields the gate needs (median + noise), so the committed
    // file stays small and only changes when the medians move.
    obs::JsonValue arr = obs::JsonValue::Array();
    for (const auto& [key, s] : current) {
      obs::JsonValue e = obs::JsonValue::Object();
      e.Set("bench", key.bench);
      const std::optional<obs::JsonValue> params =
          obs::JsonValue::Parse(key.params);
      e.Set("params", params.has_value() ? *params : obs::JsonValue::Object());
      e.Set("threads", key.threads);
      e.Set("count", s.count);
      e.Set("median_ns", s.median_ns);
      e.Set("stddev_ns", s.stddev_ns);
      arr.PushBack(std::move(e));
    }
    baseline.Set("summaries", std::move(arr));
    if (!WriteFile(opt.baseline, baseline.Dump(1) + "\n")) {
      std::fprintf(stderr, "bench_runner: cannot write %s\n",
                   opt.baseline.c_str());
      return 2;
    }
    std::printf("updated baseline %s (%zu key(s))\n", opt.baseline.c_str(),
                current.size());
    return 0;
  }

  const obs::DiffReport diff =
      obs::DiffSummaries(*baseline, current, opt.thresholds);
  std::printf("\n%s", diff.RenderConsole().c_str());
  // Keys the baseline pins but this run never produced are a silent way
  // to lose gate coverage (a renamed bench, a dropped transport, a
  // narrowed --threads list): name every one of them explicitly.
  if (diff.num_missing > 0) {
    std::fprintf(stderr,
                 "bench_runner: %zu baseline key(s) missing from this run"
                 " (renamed bench, dropped params, or a narrower --filter/"
                 "--threads selection? rebuild with --update if intended):\n",
                 diff.num_missing);
    for (const obs::DiffEntry& e : diff.entries) {
      if (e.status != obs::DiffStatus::kMissing) continue;
      std::fprintf(stderr, "  missing: %s\n", e.key.Label().c_str());
    }
  }
  if (!opt.markdown.empty() &&
      !WriteFile(opt.markdown, diff.RenderMarkdown())) {
    std::fprintf(stderr, "bench_runner: cannot write %s\n",
                 opt.markdown.c_str());
    return 2;
  }
  if (diff.HasRegressions()) {
    std::printf("\nperf gate: FAIL (%zu regressed key(s); rerun with"
                " --update after an intended change)\n",
                diff.num_regressed);
    return 1;
  }
  std::printf("\nperf gate: ok\n");
  return 0;
}

}  // namespace
}  // namespace lamp

int main(int argc, char** argv) { return lamp::Main(argc, argv); }
