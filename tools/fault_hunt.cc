// fault_hunt: hunts divergence witnesses for transducer programs under
// adversarial schedules and fault injection (src/fault).
//
//   fault_hunt --program <name>     hunt a divergent final output
//   fault_hunt --program <name> --classify
//                                   per-fault-class confluence sweep
//   fault_hunt --list               show the example programs
//
// Options: --nodes N (default 3), --seeds N (per strategy / class,
// default 4), --out PREFIX (write PREFIX.witness.json and
// PREFIX.reference.json trace recordings for trace_dump --diff).
//
// The programs bracket the CALM dividing line: the monotone pipeline
// should come back clean under every strategy, the naive non-monotone
// broadcast diverges on a pure schedule, and the fragile counting
// barrier is correct fault-free but breaks under duplication — the hunt
// minimizes that to a single duplicated delivery.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "cq/eval.h"
#include "cq/parser.h"
#include "datalog/eval.h"
#include "datalog/program.h"
#include "fault/confluence.h"
#include "fault/explorer.h"
#include "net/datalog_program.h"
#include "net/network.h"
#include "net/programs.h"
#include "relational/generators.h"

namespace lamp {
namespace {

/// One hunt target: a program, its input distribution, and Q(I).
struct Target {
  std::unique_ptr<TransducerProgram> program;
  std::vector<std::vector<Instance>> distributions;
  Instance expected;
  Schema schema;
  bool aware = true;

  // Keeps the query/program dependencies alive.
  ConjunctiveQuery query;
  DatalogProgram datalog;
};

const char* const kPrograms[] = {"tc", "naive-open-triangle",
                                 "coordinated-barrier", "fragile-barrier"};

const char* Describe(const std::string& name) {
  if (name == "tc") {
    return "distributed Datalog transitive closure (monotone -> confluent)";
  }
  if (name == "naive-open-triangle") {
    return "naive broadcast of a non-monotone query (diverges on a pure"
           " schedule)";
  }
  if (name == "coordinated-barrier") {
    return "set-based done-marker barrier (correct under every injected"
           " class)";
  }
  if (name == "fragile-barrier") {
    return "counting barrier (correct fault-free, broken by duplication)";
  }
  return "";
}

std::unique_ptr<Target> MakeTarget(const std::string& name,
                                   std::size_t nodes) {
  auto target = std::make_unique<Target>();
  if (name == "tc") {
    target->datalog = ParseProgram(target->schema,
                                   "TC(x,y) <- E(x,y)\n"
                                   "TC(x,y) <- TC(x,z), E(z,y)");
    Instance edges;
    AddPathGraph(target->schema, target->schema.IdOf("E"), 8, edges);
    const Instance everything =
        EvaluateProgram(target->schema, target->datalog, edges);
    for (const Fact& f :
         everything.FactsOf(target->schema.IdOf("TC"))) {
      target->expected.Insert(f);
    }
    target->distributions.push_back(DistributeRoundRobin(edges, nodes));
    target->program = std::make_unique<DistributedDatalogProgram>(
        target->schema, target->datalog);
    target->aware = false;
    return target;
  }

  // The rest share the open-triangle query on a random graph.
  target->schema.AddRelation("E", 2);
  target->query = ParseQuery(target->schema,
                             "H(x,y,z) <- E(x,y), E(y,z), !E(z,x)");
  Rng rng(4);
  Instance graph;
  AddRandomGraph(target->schema, target->schema.IdOf("E"), 30, 10, rng,
                 graph);
  const ConjunctiveQuery& query = target->query;
  NetQueryFunction wrapped = [&query](const Instance& instance) {
    return Evaluate(query, instance);
  };
  target->expected = wrapped(graph);
  target->distributions.push_back(DistributeRoundRobin(graph, nodes));

  if (name == "naive-open-triangle") {
    target->program = std::make_unique<MonotoneBroadcastProgram>(wrapped);
    target->aware = false;
  } else if (name == "coordinated-barrier") {
    target->program = std::make_unique<CoordinatedBarrierProgram>(
        wrapped, target->schema);
  } else if (name == "fragile-barrier") {
    target->program = std::make_unique<FragileCountingBarrierProgram>(
        wrapped, target->schema);
  } else {
    return nullptr;
  }
  return target;
}

bool WriteJson(const std::string& path, const obs::JsonValue& value) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "fault_hunt: cannot write %s\n", path.c_str());
    return false;
  }
  out << value.Dump(2) << "\n";
  return true;
}

int Hunt(Target& target, std::size_t seeds, const std::string& out_prefix) {
  fault::ExplorerOptions options;
  options.seeds_per_strategy = seeds;
  options.capture_traces = !out_prefix.empty();
  const fault::ExplorerResult result = fault::ExploreSchedules(
      *target.program, target.distributions, target.expected, options,
      nullptr, target.aware, &target.schema);
  std::printf("strategies tried: %zu, network runs: %zu\n",
              result.strategies_tried, result.runs);
  if (!result.divergence_found) {
    std::printf("no divergence found: every strategy computed Q(I)\n");
    return 0;
  }
  const fault::DivergenceWitness& witness = result.witness;
  std::printf("divergence found by strategy '%s' (seed %llu,"
              " distribution %zu)\n",
              witness.strategy.c_str(),
              static_cast<unsigned long long>(witness.seed),
              witness.distribution_index);
  std::printf("minimized plan: %s\n", witness.plan.ToString().c_str());
  std::printf("output diff vs Q(I): %s\n", witness.diff.summary.c_str());
  if (!out_prefix.empty()) {
    const std::string witness_path = out_prefix + ".witness.json";
    const std::string reference_path = out_prefix + ".reference.json";
    if (!WriteJson(witness_path, witness.divergent_trace)) return 2;
    std::printf("witness trace:   %s\n", witness_path.c_str());
    if (witness.has_reference) {
      if (!WriteJson(reference_path, witness.reference_trace)) return 2;
      std::printf("reference trace: %s (clean seed %llu)\n",
                  reference_path.c_str(),
                  static_cast<unsigned long long>(witness.reference_seed));
      std::printf("inspect with: trace_dump --diff %s %s\n",
                  witness_path.c_str(), reference_path.c_str());
    }
  }
  return 1;
}

int Classify(Target& target, std::size_t seeds) {
  const fault::ConfluenceReport report = fault::ClassifyConfluence(
      *target.program, target.distributions, target.expected, seeds,
      nullptr, target.aware, &target.schema);
  std::printf("%-26s %-8s %-6s %-12s %s\n", "fault class", "verdict",
              "runs", "mean deliver", "first failure");
  for (const fault::FaultSweep& sweep : report.by_class) {
    std::string failure;
    if (sweep.first_failure.has_value()) {
      failure = sweep.first_failure->plan.ToString();
      failure += " -> ";
      failure += sweep.first_failure->diff.summary;
    }
    std::printf("%-26s %-8s %-6zu %-12.1f %s\n",
                std::string(fault::FaultClassName(sweep.fault_class)).c_str(),
                sweep.all_runs_correct ? "ok" : "DIVERGE", sweep.runs,
                sweep.MeanTransitions(), failure.c_str());
  }
  std::printf("verdict: %s\n",
              report.confluent ? "confluent under every injected class"
                               : "not confluent");
  return report.confluent ? 0 : 1;
}

int Main(int argc, char** argv) {
  std::string program_name;
  std::string out_prefix;
  std::size_t nodes = 3;
  std::size_t seeds = 4;
  bool classify = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--program") {
      if (const char* v = next()) program_name = v;
    } else if (arg == "--nodes") {
      if (const char* v = next()) nodes = std::strtoul(v, nullptr, 10);
    } else if (arg == "--seeds") {
      if (const char* v = next()) seeds = std::strtoul(v, nullptr, 10);
    } else if (arg == "--out") {
      if (const char* v = next()) out_prefix = v;
    } else if (arg == "--classify") {
      classify = true;
    } else if (arg == "--list") {
      for (const char* name : kPrograms) {
        std::printf("  %-22s %s\n", name, Describe(name));
      }
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: fault_hunt --program <name> [--classify] [--nodes N]\n"
          "                  [--seeds N] [--out PREFIX]\n"
          "       fault_hunt --list\n");
      return 0;
    } else {
      std::fprintf(stderr, "fault_hunt: unknown argument %s\n", arg.c_str());
      return 2;
    }
  }
  if (program_name.empty() || nodes < 2 || seeds == 0) {
    std::fprintf(stderr,
                 "fault_hunt: need --program (see --list), nodes >= 2 and"
                 " seeds >= 1\n");
    return 2;
  }
  std::unique_ptr<Target> target = MakeTarget(program_name, nodes);
  if (target == nullptr) {
    std::fprintf(stderr, "fault_hunt: unknown program %s (see --list)\n",
                 program_name.c_str());
    return 2;
  }
  return classify ? Classify(*target, seeds)
                  : Hunt(*target, seeds, out_prefix);
}

}  // namespace
}  // namespace lamp

int main(int argc, char** argv) { return lamp::Main(argc, argv); }
