// Columnar storage contract tests (DESIGN.md §Storage layout).
//
// Two halves. (1) A randomized property test drives Instance through the
// full mutation surface — InsertRow / Insert / InsertAll / ClearRelation —
// against a reference set-of-rows model, checking after every step that
// set semantics, per-relation insertion order, membership, ActiveDomain
// and the lazily built join indexes all agree with the model. (2) A
// digest-parity test pins the end-to-end contract the refactor must not
// move: the same MPC workload produces byte-identical output fingerprints
// at thread counts {1, 4} and across the inproc / tcp / uds transports.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <set>
#include <utility>
#include <vector>

#include "common/hash.h"
#include "common/rng.h"
#include "cq/parser.h"
#include "mpc/hypercube_run.h"
#include "par/thread_pool.h"
#include "relational/generators.h"
#include "relational/instance.h"
#include "transport/transport.h"

namespace lamp {
namespace {

// ------------------------------------------------ reference model --

/// The specification Instance implements: a set of rows per relation that
/// also remembers first-insertion order.
class ReferenceModel {
 public:
  bool Insert(RelationId rel, const std::vector<std::int64_t>& row) {
    if (!seen_.insert({rel, row}).second) return false;
    rows_[rel].push_back(row);
    return true;
  }

  bool Contains(RelationId rel, const std::vector<std::int64_t>& row) const {
    return seen_.count({rel, row}) > 0;
  }

  void ClearRelation(RelationId rel) {
    for (const auto& row : rows_[rel]) seen_.erase({rel, row});
    rows_.erase(rel);
  }

  std::size_t Size() const { return seen_.size(); }

  const std::vector<std::vector<std::int64_t>>& RowsOf(RelationId rel) const {
    static const std::vector<std::vector<std::int64_t>> kEmpty;
    auto it = rows_.find(rel);
    return it == rows_.end() ? kEmpty : it->second;
  }

  std::vector<std::int64_t> ActiveDomain() const {
    std::set<std::int64_t> dom;
    for (const auto& [rel, rows] : rows_) {
      for (const auto& row : rows) dom.insert(row.begin(), row.end());
    }
    return {dom.begin(), dom.end()};
  }

  const std::map<RelationId, std::vector<std::vector<std::int64_t>>>& rows()
      const {
    return rows_;
  }

 private:
  std::map<RelationId, std::vector<std::vector<std::int64_t>>> rows_;
  std::set<std::pair<RelationId, std::vector<std::int64_t>>> seen_;
};

std::vector<std::int64_t> RandomRow(Rng& rng, std::size_t arity,
                                    std::int64_t domain) {
  std::vector<std::int64_t> row(arity);
  for (auto& v : row) v = rng.UniformInt(0, domain - 1);
  return row;
}

std::vector<Value> ToValues(const std::vector<std::int64_t>& row) {
  std::vector<Value> out;
  out.reserve(row.size());
  for (std::int64_t v : row) out.push_back(Value(v));
  return out;
}

/// Full agreement check: sizes, per-relation row sequences (insertion
/// order), membership of present rows, ActiveDomain.
void ExpectMatchesModel(const Instance& instance,
                        const ReferenceModel& model) {
  ASSERT_EQ(instance.Size(), model.Size());
  for (const auto& [rel, expected] : model.rows()) {
    const RowsView rows = instance.RowsOf(rel);
    ASSERT_EQ(rows.num_rows, expected.size()) << "relation " << rel;
    for (std::size_t i = 0; i < expected.size(); ++i) {
      const Value* row = rows.Row(i);
      for (std::size_t j = 0; j < expected[i].size(); ++j) {
        ASSERT_EQ(row[j].v, expected[i][j])
            << "relation " << rel << " row " << i << " pos " << j;
      }
      const std::vector<Value> vals = ToValues(expected[i]);
      EXPECT_TRUE(instance.ContainsRow(rel, vals.data(), vals.size()));
    }
  }
  const std::vector<Value> dom = instance.ActiveDomain();
  const std::vector<std::int64_t> expected_dom = model.ActiveDomain();
  ASSERT_EQ(dom.size(), expected_dom.size());
  for (std::size_t i = 0; i < dom.size(); ++i) {
    EXPECT_EQ(dom[i].v, expected_dom[i]);
  }
}

/// Probes every key of \p rel through IndexOn and checks the bucket chain
/// enumerates exactly the model's matching rows, in insertion order.
void ExpectIndexMatchesModel(const Instance& instance,
                             const ReferenceModel& model, RelationId rel,
                             std::size_t arity, std::uint64_t mask) {
  if (instance.NumRows(rel) == 0) return;
  std::vector<std::uint32_t> key_pos;
  for (std::size_t p = 0; p < arity; ++p) {
    if ((mask >> p) & 1) key_pos.push_back(static_cast<std::uint32_t>(p));
  }
  const JoinIndex& index = instance.IndexOn(rel, mask);
  ASSERT_EQ(index.key_pos, key_pos);
  const RowsView rows = instance.RowsOf(rel);
  const auto& expected = model.RowsOf(rel);

  // For every distinct key in the relation, gather the chain's rows and
  // compare with a model scan.
  std::set<std::vector<std::int64_t>> keys;
  for (const auto& row : expected) {
    std::vector<std::int64_t> key;
    for (std::uint32_t p : key_pos) key.push_back(row[p]);
    keys.insert(key);
  }
  for (const auto& key : keys) {
    std::uint64_t h = 1469598103934665603ull;
    for (std::int64_t v : key) {
      h = HashCombine(h, static_cast<std::uint64_t>(v));
    }
    const std::size_t slot = static_cast<std::size_t>(h) & index.SlotMask();
    std::vector<std::size_t> via_index;
    for (std::uint32_t link = index.head[slot]; link != 0;
         link = index.next[link - 1]) {
      const std::size_t row_id = link - 1;
      const Value* row = rows.Row(row_id);
      bool match = true;
      for (std::size_t k = 0; k < key_pos.size(); ++k) {
        if (row[key_pos[k]].v != key[k]) {
          match = false;
          break;
        }
      }
      if (match) via_index.push_back(row_id);
    }
    std::vector<std::size_t> via_scan;
    for (std::size_t i = 0; i < expected.size(); ++i) {
      bool match = true;
      for (std::size_t k = 0; k < key_pos.size(); ++k) {
        if (expected[i][key_pos[k]] != key[k]) {
          match = false;
          break;
        }
      }
      if (match) via_scan.push_back(i);
    }
    // Chains are threaded in ascending row id = insertion order.
    EXPECT_EQ(via_index, via_scan);
  }
}

TEST(StorageProperty, RandomOpsAgreeWithReferenceModel) {
  constexpr RelationId kRelations = 4;
  const std::size_t kArity[kRelations] = {2, 2, 3, 1};
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    Rng rng(1000 + seed);
    Instance instance;
    ReferenceModel model;
    for (int step = 0; step < 600; ++step) {
      const RelationId rel = static_cast<RelationId>(rng.Uniform(kRelations));
      const std::size_t arity = kArity[rel];
      const std::uint64_t op = rng.Uniform(100);
      if (op < 55) {
        // InsertRow (sometimes via the Fact shim) — return values agree.
        const auto row = RandomRow(rng, arity, 12);
        const std::vector<Value> vals = ToValues(row);
        const bool fresh_model = model.Insert(rel, row);
        bool fresh = false;
        if (rng.Bernoulli(0.25)) {
          fresh = instance.Insert(Fact(rel, vals));
        } else {
          fresh = instance.InsertRow(rel, vals.data(), vals.size());
        }
        EXPECT_EQ(fresh, fresh_model);
      } else if (op < 70) {
        // Batch insert through InsertRows; count of new rows agrees.
        const std::size_t n = 1 + rng.Uniform(6);
        std::vector<Value> batch;
        std::size_t expected_added = 0;
        for (std::size_t i = 0; i < n; ++i) {
          const auto row = RandomRow(rng, arity, 12);
          if (model.Insert(rel, row)) ++expected_added;
          const std::vector<Value> vals = ToValues(row);
          batch.insert(batch.end(), vals.begin(), vals.end());
        }
        EXPECT_EQ(instance.InsertRows(rel, batch.data(), n, arity),
                  expected_added);
      } else if (op < 80) {
        // InsertAll from a random second instance.
        Instance other;
        const std::size_t n = rng.Uniform(8);
        std::vector<std::vector<std::int64_t>> other_rows;
        for (std::size_t i = 0; i < n; ++i) {
          const auto row = RandomRow(rng, arity, 12);
          const std::vector<Value> vals = ToValues(row);
          if (other.InsertRow(rel, vals.data(), vals.size())) {
            other_rows.push_back(row);
          }
        }
        std::size_t expected_added = 0;
        for (const auto& row : other_rows) {
          if (model.Insert(rel, row)) ++expected_added;
        }
        EXPECT_EQ(instance.InsertAll(other), expected_added);
      } else if (op < 90) {
        // Membership of a random (usually absent) row.
        const auto row = RandomRow(rng, arity, 12);
        const std::vector<Value> vals = ToValues(row);
        EXPECT_EQ(instance.ContainsRow(rel, vals.data(), vals.size()),
                  model.Contains(rel, row));
      } else if (op < 95) {
        instance.ClearRelation(rel);
        model.ClearRelation(rel);
      } else {
        // Exercise the copy path: copies carry the data but rebuild their
        // index caches cold; both must still match the model.
        Instance copy = instance;
        ExpectMatchesModel(copy, model);
      }
      if (step % 97 == 0) ExpectMatchesModel(instance, model);
      if (step % 151 == 0) {
        for (RelationId r = 0; r < kRelations; ++r) {
          const std::size_t arity_r = kArity[r];
          const std::uint64_t mask = 1 + rng.Uniform((1u << arity_r) - 1);
          ExpectIndexMatchesModel(instance, model, r, arity_r, mask);
        }
      }
    }
    ExpectMatchesModel(instance, model);
  }
}

TEST(StorageProperty, EqualityIsInsertionOrderIndependent) {
  Rng rng(7);
  std::vector<std::vector<std::int64_t>> rows;
  for (int i = 0; i < 50; ++i) rows.push_back(RandomRow(rng, 2, 9));
  Instance a;
  Instance b;
  for (const auto& row : rows) {
    const std::vector<Value> vals = ToValues(row);
    a.InsertRow(0, vals.data(), 2);
  }
  std::vector<std::vector<std::int64_t>> shuffled = rows;
  rng.Shuffle(shuffled);
  for (const auto& row : shuffled) {
    const std::vector<Value> vals = ToValues(row);
    b.InsertRow(0, vals.data(), 2);
  }
  EXPECT_TRUE(a == b);
  const std::vector<Value> extra = {Value(100), Value(100)};
  b.InsertRow(0, extra.data(), 2);
  EXPECT_FALSE(a == b);
}

// ------------------------------------------------- digest parity --

// FNV-1a accumulator (determinism_test.cc's): order-sensitive, so any
// change in dedup decisions or iteration order shows up.
struct Fnv {
  std::uint64_t h = 1469598103934665603ull;
  void Mix(std::uint64_t x) {
    h ^= x;
    h *= 1099511628211ull;
  }
};

std::uint64_t InstanceFingerprint(const Instance& instance) {
  Fnv f;
  instance.ForEachFact([&](const Fact& fact) {
    f.Mix(HashMix(fact.relation));
    f.Mix(fact.args.size());
    for (Value v : fact.args) f.Mix(static_cast<std::uint64_t>(v.v));
  });
  return f.h;
}

class EnvRestorer {
 public:
  ~EnvRestorer() {
    transport::SetActiveKind(transport::TransportKind::kInProcess);
    par::SetDefaultThreads(1);
  }
};

std::uint64_t TriangleOutputFingerprint() {
  Schema schema;
  const ConjunctiveQuery q =
      ParseQuery(schema, "H(x,y,z) <- R0(x,y), R1(y,z), R2(z,x)");
  Rng rng(23);
  Instance db;
  for (const Atom& atom : q.body()) {
    AddUniformRelation(schema, atom.relation, /*m=*/300, /*domain_size=*/30,
                       rng, db);
  }
  const MpcRunResult run = RunHyperCubeUniform(q, db, /*num_servers=*/8);
  return InstanceFingerprint(run.output);
}

TEST(StorageDigestParity, SameDigestAcrossThreadsAndTransports) {
  EnvRestorer restore;
  constexpr transport::TransportKind kBackends[] = {
      transport::TransportKind::kInProcess,
      transport::TransportKind::kTcp,
      transport::TransportKind::kUds,
  };
  par::SetDefaultThreads(1);
  transport::SetActiveKind(transport::TransportKind::kInProcess);
  const std::uint64_t reference = TriangleOutputFingerprint();
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    for (const transport::TransportKind backend : kBackends) {
      par::SetDefaultThreads(threads);
      transport::SetActiveKind(backend);
      EXPECT_EQ(TriangleOutputFingerprint(), reference)
          << "threads=" << threads
          << " backend=" << static_cast<int>(backend);
    }
  }
}

}  // namespace
}  // namespace lamp
