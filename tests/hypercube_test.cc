#include <set>

#include <gtest/gtest.h>

#include "cq/eval.h"
#include "cq/parser.h"
#include "distribution/hypercube.h"
#include "distribution/policies.h"
#include "distribution/parallel_correctness.h"
#include "relational/generators.h"

namespace lamp {
namespace {

class HypercubeTest : public ::testing::Test {
 protected:
  HypercubeTest()
      : triangle_(
            ParseQuery(schema_, "H(x,y,z) <- R(x,y), S(y,z), T(z,x)")) {}

  Schema schema_;
  ConjunctiveQuery triangle_;
};

TEST_F(HypercubeTest, GridGeometry) {
  // Example 3.2 with alpha_x = 2, alpha_y = 3, alpha_z = 4: 24 servers.
  HypercubePolicy policy(triangle_, {2, 3, 4}, MakeUniverse(10));
  EXPECT_EQ(policy.NumNodes(), 24u);
  for (NodeId node = 0; node < 24; ++node) {
    EXPECT_EQ(policy.NodeAt(policy.Coordinates(node)), node);
  }
}

TEST_F(HypercubeTest, ReplicationFactorsMatchExample32) {
  // R(a,b) is replicated alpha_z times, S alpha_x times, T alpha_y times.
  HypercubePolicy policy(triangle_, {2, 3, 4}, MakeUniverse(10));
  EXPECT_EQ(policy.ReplicationOf(0), 4u);  // R(x,y): free dim z.
  EXPECT_EQ(policy.ReplicationOf(1), 2u);  // S(y,z): free dim x.
  EXPECT_EQ(policy.ReplicationOf(2), 3u);  // T(z,x): free dim y.

  const Fact r_fact(schema_.IdOf("R"), {5, 6});
  EXPECT_EQ(policy.ResponsibleNodes(r_fact).size(), 4u);
  const Fact s_fact(schema_.IdOf("S"), {5, 6});
  EXPECT_EQ(policy.ResponsibleNodes(s_fact).size(), 2u);
  const Fact t_fact(schema_.IdOf("T"), {5, 6});
  EXPECT_EQ(policy.ResponsibleNodes(t_fact).size(), 3u);
}

TEST_F(HypercubeTest, ResponsibleNodesAgreesWithIsResponsible) {
  HypercubePolicy policy(triangle_, {2, 2, 2}, MakeUniverse(6), 3);
  for (RelationId rel :
       {schema_.IdOf("R"), schema_.IdOf("S"), schema_.IdOf("T")}) {
    for (std::int64_t a = 0; a < 4; ++a) {
      for (std::int64_t b = 0; b < 4; ++b) {
        const Fact f(rel, {a, b});
        const std::vector<NodeId> fast = policy.ResponsibleNodes(f);
        const std::set<NodeId> fast_set(fast.begin(), fast.end());
        std::set<NodeId> slow;
        for (NodeId n = 0; n < policy.NumNodes(); ++n) {
          if (policy.IsResponsible(n, f)) slow.insert(n);
        }
        EXPECT_EQ(fast_set, slow) << FactToString(schema_, f);
      }
    }
  }
}

TEST_F(HypercubeTest, ValuationsMeetAtTheirServer) {
  // Correctness argument of Example 3.2: for every valuation (a,b,c),
  // the three required facts meet at server (h_x(a), h_y(b), h_z(c)).
  HypercubePolicy policy(triangle_, {2, 3, 2}, MakeUniverse(8), 17);
  const VarId x = triangle_.FindVar("x");
  const VarId y = triangle_.FindVar("y");
  const VarId z = triangle_.FindVar("z");
  for (std::int64_t a = 0; a < 8; ++a) {
    for (std::int64_t b = 0; b < 8; ++b) {
      for (std::int64_t c = 0; c < 8; ++c) {
        std::vector<std::size_t> coords(3);
        coords[x] = policy.HashVar(x, Value(a));
        coords[y] = policy.HashVar(y, Value(b));
        coords[z] = policy.HashVar(z, Value(c));
        const NodeId server = policy.NodeAt(coords);
        EXPECT_TRUE(
            policy.IsResponsible(server, Fact(schema_.IdOf("R"), {a, b})));
        EXPECT_TRUE(
            policy.IsResponsible(server, Fact(schema_.IdOf("S"), {b, c})));
        EXPECT_TRUE(
            policy.IsResponsible(server, Fact(schema_.IdOf("T"), {c, a})));
      }
    }
  }
}

TEST_F(HypercubeTest, StronglySaturatesItsQuery) {
  // Section 4.1: every HyperCube distribution strongly saturates its query,
  // independent of shares and hash functions.
  for (std::uint64_t seed : {0ULL, 1ULL, 99ULL}) {
    HypercubePolicy policy(triangle_, {2, 1, 3}, MakeUniverse(4), seed);
    EXPECT_TRUE(StronglySaturates(policy, triangle_));
    EXPECT_TRUE(Saturates(policy, triangle_));
    EXPECT_TRUE(IsParallelCorrect(triangle_, policy));
  }
}

TEST_F(HypercubeTest, DistributedEvalMatchesCentralized) {
  HypercubePolicy policy(triangle_, {2, 2, 2}, MakeUniverse(12), 5);
  Rng rng(21);
  for (int trial = 0; trial < 10; ++trial) {
    Instance inst;
    AddRandomGraph(schema_, schema_.IdOf("R"), 40, 12, rng, inst);
    AddRandomGraph(schema_, schema_.IdOf("S"), 40, 12, rng, inst);
    AddRandomGraph(schema_, schema_.IdOf("T"), 40, 12, rng, inst);
    EXPECT_TRUE(IsParallelCorrectOn(triangle_, policy, inst));
  }
}

TEST_F(HypercubeTest, SelfJoinFactsRoutedForBothAtoms) {
  Schema schema;
  const ConjunctiveQuery path =
      ParseQuery(schema, "H(x,z) <- R(x,y), R(y,z)");
  HypercubePolicy policy(path, {2, 2, 2}, MakeUniverse(8), 1);
  // An R-fact must reach servers for both its role as R(x,y) and R(y,z).
  const Fact f(schema.IdOf("R"), {3, 4});
  const std::vector<NodeId> nodes = policy.ResponsibleNodes(f);
  // Role R(x,y): z free (2 servers); role R(y,z): x free (2 servers);
  // overlaps possible but at least max(2,2) distinct.
  EXPECT_GE(nodes.size(), 2u);
  // Parallel-correctness despite the self-join.
  EXPECT_TRUE(IsParallelCorrect(path, policy));
}

TEST_F(HypercubeTest, ConstantsInAtomsFilterRouting) {
  Schema schema;
  const ConjunctiveQuery q = ParseQuery(schema, "H(x) <- R(x, 7)");
  HypercubePolicy policy(q, {4}, MakeUniverse(10), 2);
  // Facts not matching the constant are routed nowhere.
  EXPECT_TRUE(policy.ResponsibleNodes(Fact(schema.IdOf("R"), {1, 8})).empty());
  EXPECT_EQ(policy.ResponsibleNodes(Fact(schema.IdOf("R"), {1, 7})).size(),
            1u);
  EXPECT_TRUE(IsParallelCorrect(q, policy));
}

TEST_F(HypercubeTest, UniformSharesRespectBudget) {
  const Shares shares = UniformShares(triangle_, 27);
  EXPECT_EQ(shares, Shares(3, 3));
  const Shares small = UniformShares(triangle_, 20);
  EXPECT_EQ(small, Shares(3, 2));
}

TEST_F(HypercubeTest, OptimizedSharesBeatUniformOnAsymmetricSizes) {
  // Join R(x,y) |x| S(y,z) with |R| = 1000, |S| = 10: all budget should go
  // to y (hash-join behaviour), not spread over x and z.
  Schema schema;
  const ConjunctiveQuery join =
      ParseQuery(schema, "H(x,y,z) <- R(x,y), S(y,z)");
  const Shares shares = OptimizeIntegerShares(join, 16, {1000.0, 10.0});
  EXPECT_EQ(shares[join.FindVar("y")], 16u);
  EXPECT_EQ(shares[join.FindVar("x")], 1u);
  EXPECT_EQ(shares[join.FindVar("z")], 1u);
}

TEST_F(HypercubeTest, OptimizedSharesForTriangleAreBalanced) {
  const Shares shares = OptimizeIntegerShares(triangle_, 8, {1e4, 1e4, 1e4});
  EXPECT_EQ(shares, Shares(3, 2));
}

}  // namespace
}  // namespace lamp
