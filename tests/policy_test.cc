#include <gtest/gtest.h>

#include "distribution/domain_guided.h"
#include "distribution/policies.h"
#include "relational/schema.h"

namespace lamp {
namespace {

class PolicyTest : public ::testing::Test {
 protected:
  PolicyTest() {
    r_ = schema_.AddRelation("R", 2);
    s_ = schema_.AddRelation("S", 2);
  }

  Schema schema_;
  RelationId r_ = 0;
  RelationId s_ = 0;
};

TEST_F(PolicyTest, FinitePolicyAssignments) {
  FinitePolicy policy(2, MakeUniverse(3));
  policy.Assign(0, Fact(r_, {0, 1}));
  policy.Assign(1, Fact(r_, {0, 1}));
  policy.Assign(1, Fact(s_, {1, 2}));
  EXPECT_TRUE(policy.IsResponsible(0, Fact(r_, {0, 1})));
  EXPECT_TRUE(policy.IsResponsible(1, Fact(r_, {0, 1})));
  EXPECT_FALSE(policy.IsResponsible(0, Fact(s_, {1, 2})));
  EXPECT_FALSE(policy.IsResponsible(0, Fact(r_, {1, 0})));
  EXPECT_EQ(policy.ResponsibleNodes(Fact(r_, {0, 1})).size(), 2u);
  EXPECT_TRUE(policy.ResponsibleNodes(Fact(r_, {2, 2})).empty());
}

TEST_F(PolicyTest, LocalInstanceIsIntersection) {
  // Example 4.1 of the paper: P1 over Ie = {R(a,b), R(b,a), R(b,c),
  // S(a,a), S(c,a)} with a=0, b=1, c=2. All R-facts go to both nodes;
  // S(d1,d2) goes to node 0 if d1 == d2, else node 1.
  LambdaPolicy policy(2, MakeUniverse(3),
                      [this](NodeId node, const Fact& f) {
                        if (f.relation == r_) return true;
                        return (f.args[0] == f.args[1]) == (node == 0);
                      });
  Instance ie;
  ie.Insert(Fact(r_, {0, 1}));
  ie.Insert(Fact(r_, {1, 0}));
  ie.Insert(Fact(r_, {1, 2}));
  ie.Insert(Fact(s_, {0, 0}));
  ie.Insert(Fact(s_, {2, 0}));

  const Instance local0 = policy.LocalInstance(ie, 0);
  EXPECT_EQ(local0.Size(), 4u);
  EXPECT_TRUE(local0.Contains(Fact(s_, {0, 0})));
  EXPECT_FALSE(local0.Contains(Fact(s_, {2, 0})));

  const Instance local1 = policy.LocalInstance(ie, 1);
  EXPECT_EQ(local1.Size(), 4u);
  EXPECT_TRUE(local1.Contains(Fact(s_, {2, 0})));
}

TEST_F(PolicyTest, SomeNodeHasAll) {
  FinitePolicy policy(2, MakeUniverse(2));
  policy.Assign(0, Fact(r_, {0, 0}));
  policy.Assign(1, Fact(r_, {0, 0}));
  policy.Assign(1, Fact(r_, {1, 1}));
  Instance both;
  both.Insert(Fact(r_, {0, 0}));
  both.Insert(Fact(r_, {1, 1}));
  EXPECT_TRUE(policy.SomeNodeHasAll(both));
  policy.Assign(0, Fact(s_, {0, 1}));
  Instance split;
  split.Insert(Fact(r_, {1, 1}));
  split.Insert(Fact(s_, {0, 1}));
  EXPECT_FALSE(policy.SomeNodeHasAll(split));
}

TEST_F(PolicyTest, HashPolicyRoutesByKey) {
  HashPolicy policy(4, MakeUniverse(100));
  policy.SetKey(r_, {1});  // Route R by second column.
  const Fact f1(r_, {1, 7});
  const Fact f2(r_, {2, 7});
  const Fact f3(r_, {1, 8});
  // Same key -> same node.
  EXPECT_EQ(policy.TargetNode(f1), policy.TargetNode(f2));
  // Exactly one responsible node per keyed fact.
  EXPECT_EQ(policy.ResponsibleNodes(f1).size(), 1u);
  EXPECT_EQ(policy.ResponsibleNodes(f3).size(), 1u);
  // Unkeyed relations are broadcast.
  EXPECT_EQ(policy.ResponsibleNodes(Fact(s_, {1, 2})).size(), 4u);
}

TEST_F(PolicyTest, HashPolicySpreadsKeys) {
  HashPolicy policy(4, MakeUniverse(100));
  policy.SetKey(r_, {0});
  std::set<NodeId> used;
  for (int v = 0; v < 50; ++v) {
    used.insert(policy.TargetNode(Fact(r_, {v, 0})));
  }
  EXPECT_EQ(used.size(), 4u);
}

TEST_F(PolicyTest, RangePolicyBuckets) {
  // Customer-style range partitioning (Section 4.1): thresholds 10, 20 ->
  // 3 nodes.
  RangePolicy policy(MakeUniverse(30), r_, 0, {10, 20});
  EXPECT_EQ(policy.NumNodes(), 3u);
  EXPECT_TRUE(policy.IsResponsible(0, Fact(r_, {5, 0})));
  EXPECT_FALSE(policy.IsResponsible(1, Fact(r_, {5, 0})));
  EXPECT_TRUE(policy.IsResponsible(1, Fact(r_, {10, 0})));
  EXPECT_TRUE(policy.IsResponsible(1, Fact(r_, {15, 0})));
  EXPECT_TRUE(policy.IsResponsible(2, Fact(r_, {25, 0})));
  // Non-keyed relation broadcast.
  EXPECT_TRUE(policy.IsResponsible(0, Fact(s_, {25, 0})));
  EXPECT_TRUE(policy.IsResponsible(2, Fact(s_, {25, 0})));
}

TEST_F(PolicyTest, DomainGuidedResponsibility) {
  // alpha(a) = {a mod 2}: node 0 owns even values, node 1 odd values.
  DomainGuidedPolicy policy(
      2, MakeUniverse(10), [](Value a) -> std::vector<NodeId> {
        return {static_cast<NodeId>(a.v % 2)};
      });
  EXPECT_TRUE(policy.IsResponsible(0, Fact(0, {2, 4})));
  EXPECT_FALSE(policy.IsResponsible(1, Fact(0, {2, 4})));
  // Mixed-parity fact: both nodes responsible.
  EXPECT_TRUE(policy.IsResponsible(0, Fact(0, {2, 3})));
  EXPECT_TRUE(policy.IsResponsible(1, Fact(0, {2, 3})));
}

TEST_F(PolicyTest, DomainGuidedCoversEveryValue) {
  // Key property used by Theorem 5.12's algorithm: for every value a there
  // is a node responsible for *all* facts containing a.
  const DomainGuidedPolicy policy =
      DomainGuidedPolicy::HashBased(4, MakeUniverse(20), 9);
  for (std::int64_t a = 0; a < 20; ++a) {
    const std::vector<NodeId> owners = policy.AssignmentOf(Value(a));
    ASSERT_EQ(owners.size(), 1u);
    // Any fact containing `a` must be owned by that node.
    for (std::int64_t b = 0; b < 20; ++b) {
      EXPECT_TRUE(policy.IsResponsible(owners[0], Fact(r_, {a, b})));
      EXPECT_TRUE(policy.IsResponsible(owners[0], Fact(r_, {b, a})));
    }
  }
}

TEST_F(PolicyTest, NullaryFactsBroadcastUnderDomainGuided) {
  Schema schema;
  const RelationId n = schema.AddRelation("N", 0);
  const DomainGuidedPolicy policy =
      DomainGuidedPolicy::HashBased(3, MakeUniverse(5));
  for (NodeId node = 0; node < 3; ++node) {
    EXPECT_TRUE(policy.IsResponsible(node, Fact(n, {})));
  }
}

}  // namespace
}  // namespace lamp
