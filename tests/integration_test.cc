// Cross-module integration: the paper's two halves composed — MPC-style
// distribution policies feeding asynchronous transducer networks — plus
// checked-error behaviour at module boundaries.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "cq/eval.h"
#include "cq/parser.h"
#include "distribution/hypercube.h"
#include "distribution/policies.h"
#include "mpc/hypercube_run.h"
#include "mpc/simulator.h"
#include "net/consistency.h"
#include "net/programs.h"
#include "relational/generators.h"

namespace lamp {
namespace {

TEST(Integration, HypercubeDistributionFeedsTransducerNetwork) {
  // Distribute a database with the HyperCube policy (Section 3/4), then
  // let an asynchronous network (Section 5) answer the same query under
  // eventual consistency: the synchronous reshuffle and the asynchronous
  // broadcast agree on the result.
  Schema schema;
  const ConjunctiveQuery triangle =
      ParseQuery(schema, "H(x,y,z) <- R(x,y), S(y,z), T(z,x)");
  Rng rng(3);
  Instance db;
  AddRandomGraph(schema, schema.IdOf("R"), 60, 15, rng, db);
  AddRandomGraph(schema, schema.IdOf("S"), 60, 15, rng, db);
  AddRandomGraph(schema, schema.IdOf("T"), 60, 15, rng, db);

  const Instance expected = Evaluate(triangle, db);

  // Synchronous: one MPC round.
  const MpcRunResult mpc = RunHyperCubeUniform(triangle, db, 8, 5);
  EXPECT_EQ(mpc.output, expected);

  // Asynchronous: the HyperCube locals as the horizontal distribution.
  const HypercubePolicy policy(triangle, UniformShares(triangle, 8),
                               MakeUniverse(1), 5);
  NetQueryFunction q = [&triangle](const Instance& i) {
    return Evaluate(triangle, i);
  };
  MonotoneBroadcastProgram program(q);
  const ConsistencySweep sweep = CheckEventualConsistency(
      program, {DistributeByPolicy(db, policy)}, expected, 5, nullptr,
      /*aware=*/false);
  EXPECT_TRUE(sweep.all_runs_correct);
}

TEST(Integration, MpcSimulatorLoadLocalsRoundTrips) {
  Schema schema;
  const RelationId r = schema.AddRelation("R", 2);
  std::vector<Instance> locals(3);
  locals[0].Insert(Fact(r, {1, 2}));
  locals[2].Insert(Fact(r, {3, 4}));
  MpcSimulator sim(3);
  sim.LoadLocals(locals);
  EXPECT_EQ(sim.locals()[0].Size(), 1u);
  EXPECT_TRUE(sim.locals()[1].Empty());
  EXPECT_EQ(sim.GlobalState().Size(), 2u);
}

TEST(Integration, ValuationToStringNamesVariables) {
  Schema schema;
  ConjunctiveQuery q = ParseQuery(schema, "H(x) <- R(x,y)");
  Valuation v(q.NumVars());
  v.Bind(q.VarIdOf("x"), Value(3));
  const std::string s = v.ToString(q);
  EXPECT_NE(s.find("x->3"), std::string::npos);
  EXPECT_EQ(s.find("y->"), std::string::npos);  // Unbound not printed.
}

TEST(IntegrationDeath, ParserRejectsInconsistentArity) {
  Schema schema;
  ParseQuery(schema, "H(x) <- R(x,y)");
  EXPECT_DEATH(ParseQuery(schema, "G(x) <- R(x)"), "arity");
}

TEST(IntegrationDeath, ValidateRejectsUnsafeHead) {
  Schema schema;
  EXPECT_DEATH(ParseQuery(schema, "H(z) <- R(x,y)"), "unsafe");
}

TEST(IntegrationDeath, ValidateRejectsUnsafeNegation) {
  Schema schema;
  EXPECT_DEATH(ParseQuery(schema, "H(x) <- R(x,y), !S(z)"), "unsafe");
}

TEST(IntegrationDeath, SchemaRejectsArityChange) {
  Schema schema;
  schema.AddRelation("R", 2);
  EXPECT_DEATH(schema.AddRelation("R", 3), "arity");
}

TEST(IntegrationDeath, HypercubeRejectsWrongShareCount) {
  Schema schema;
  const ConjunctiveQuery q = ParseQuery(schema, "H(x,y) <- R(x,y)");
  EXPECT_DEATH(HypercubePolicy(q, {2, 2, 2}, MakeUniverse(2)),
               "shares_.size");
}

}  // namespace
}  // namespace lamp
