// Cross-validation of the static analyzer against the dynamic
// falsifiers — the certify-vs-falsify contract made executable:
//
//  * every program the fragment classifier *certifies* must produce zero
//    violations from FindMonotonicityViolation at the certified kind
//    (and, for the M certificate, stay confluent under every fault class
//    of the fault layer's ClassifyConfluence);
//  * every program it *refutes* must either be falsified dynamically
//    within the catalog's documented bounds, or be a documented
//    precision gap (the fragments are sound, not complete).
//
// The example catalog (sa/catalog.h) carries the ground truth for both
// directions; the PrecisionGap test pins a program where the static
// refutation intentionally has no dynamic witness.

#include <gtest/gtest.h>

#include <array>
#include <string>
#include <vector>

#include "datalog/eval.h"
#include "datalog/monotone.h"
#include "fault/confluence.h"
#include "net/datalog_program.h"
#include "net/network.h"
#include "relational/generators.h"
#include "sa/analyzer.h"
#include "sa/catalog.h"

namespace lamp::sa {
namespace {

constexpr std::array<MonotonicityKind, 3> kKindOfFragment = {
    MonotonicityKind::kPlain,            // negation_free certifies M
    MonotonicityKind::kDomainDistinct,   // semi_positive => Mdistinct
    MonotonicityKind::kDomainDisjoint};  // semi_connected => Mdisjoint

struct AnalyzedEntry {
  Schema schema;
  ProgramAnalysis analysis;
};

AnalyzedEntry Analyze(const CatalogEntry& entry) {
  AnalyzedEntry result;
  result.analysis = AnalyzeProgramText(result.schema, entry.text);
  result.analysis.name = std::string(entry.id);
  return result;
}

/// The EDB relations the falsifier enumerates instances over: everything
/// extensional except the built-in active-domain predicate.
std::vector<RelationId> FalsifierEdbs(const Schema& schema,
                                      const DatalogProgram& program) {
  std::vector<RelationId> edbs;
  for (RelationId rel : program.EdbRelations()) {
    if (schema.NameOf(rel) == kADomRelationName) continue;
    edbs.push_back(rel);
  }
  return edbs;
}

TEST(SaCatalogTest, EveryEntryMeetsItsExpectations) {
  for (const CatalogEntry& entry : ExampleCatalog()) {
    const AnalyzedEntry a = Analyze(entry);
    for (const std::string& mismatch :
         CheckCatalogExpectations(entry, a.analysis)) {
      ADD_FAILURE() << entry.id << ": " << mismatch;
    }
  }
}

// For every catalog entry with a stratified semantics, every fragment
// verdict must agree with the dynamic falsifier at the corresponding
// monotonicity kind: certificates are never falsified, refutations are
// witnessed (the catalog documents no precision gaps — the one we keep
// on purpose is pinned in PrecisionGap below).
TEST(SaCrossvalTest, VerdictsMatchDynamicFalsifier) {
  for (const CatalogEntry& entry : ExampleCatalog()) {
    if (!entry.run_falsifier) continue;
    AnalyzedEntry a = Analyze(entry);
    ASSERT_TRUE(a.analysis.strata.has_value()) << entry.id;
    const DatalogProgram& program = a.analysis.program;
    const QueryFunction q = [&a, &program](const Instance& i) {
      return EvaluateProgram(a.schema, program, i);
    };
    const std::vector<RelationId> edbs = FalsifierEdbs(a.schema, program);
    ASSERT_FALSE(edbs.empty()) << entry.id;

    for (Fragment fragment : kAllFragments) {
      const std::size_t fi = static_cast<std::size_t>(fragment);
      const auto violation = FindMonotonicityViolation(
          a.schema, edbs, q, kKindOfFragment[fi], entry.domain_size,
          entry.extra_values, entry.max_facts);
      EXPECT_EQ(!violation.has_value(), entry.expected_monotone[fi])
          << entry.id << " at " << FragmentClassName(fragment);
      if (a.analysis.fragments.Verdict(fragment).certified) {
        EXPECT_FALSE(violation.has_value())
            << entry.id << ": certificate for "
            << FragmentClassName(fragment)
            << " contradicted by a dynamic witness";
      } else {
        EXPECT_TRUE(violation.has_value())
            << entry.id << ": refutation of " << FragmentClassName(fragment)
            << " has no witness within the catalog bounds";
      }
    }
  }
}

// The M certificate also has to hold up on the network side: the
// negation-free tc entry, run distributed, must stay correct under
// every injectable fault class.
TEST(SaCrossvalTest, CertifiedMonotoneProgramIsConfluentUnderFaults) {
  const CatalogEntry* entry = FindCatalogEntry("tc");
  ASSERT_NE(entry, nullptr);
  AnalyzedEntry a = Analyze(*entry);
  ASSERT_TRUE(a.analysis.fragments.strongest.has_value());
  ASSERT_EQ(*a.analysis.fragments.strongest, Fragment::kNegationFree);

  Instance edges;
  AddPathGraph(a.schema, a.schema.IdOf("E"), 6, edges);
  const Instance everything =
      EvaluateProgram(a.schema, a.analysis.program, edges);
  Instance expected;
  for (const Fact& f : everything.FactsOf(a.schema.IdOf("TC"))) {
    expected.Insert(f);
  }

  DistributedDatalogProgram program(a.schema, a.analysis.program);
  const std::vector<std::vector<Instance>> distributions = {
      DistributeRoundRobin(edges, 3)};
  const fault::ConfluenceReport report = fault::ClassifyConfluence(
      program, distributions, expected, /*num_seeds=*/2, nullptr,
      /*aware=*/false);
  std::string broken;
  for (const fault::FaultSweep& sweep : report.by_class) {
    if (!sweep.all_runs_correct) {
      broken = std::string(fault::FaultClassName(sweep.fault_class));
      break;
    }
  }
  EXPECT_TRUE(report.confluent)
      << "certified-M program diverged under fault class " << broken;
}

// The documented precision gap: H can never fire (its body asserts
// E(x,x), which makes F(x) true, which the rule negates), so the program
// is semantically monotone — but syntactically it negates the IDB
// relation F, so semi-positive is refuted. The fragments are sound, not
// complete; this test pins the gap so it stays documented rather than
// silently "fixed" into unsoundness.
TEST(SaCrossvalTest, PrecisionGapIsDocumentedNotFalsified) {
  Schema schema;
  DatalogProgram prog = ParseProgram(schema,
                                     "F(x) <- E(x,x)\n"
                                     "H(x,y) <- E(x,y), E(x,x), !F(x)");
  const FragmentReport report = ClassifyFragments(schema, prog);
  EXPECT_FALSE(report.Verdict(Fragment::kNegationFree).certified);
  EXPECT_FALSE(report.Verdict(Fragment::kSemiPositive).certified);
  ASSERT_TRUE(report.strongest.has_value());
  EXPECT_EQ(*report.strongest, Fragment::kSemiConnected);

  const QueryFunction q = [&schema, &prog](const Instance& i) {
    return EvaluateProgram(schema, prog, i);
  };
  const std::vector<RelationId> edbs = {schema.IdOf("E")};
  // No dynamic witness exists even for plain monotonicity: the refuted
  // verdicts overshoot the semantics here, by design.
  EXPECT_FALSE(FindMonotonicityViolation(schema, edbs, q,
                                         MonotonicityKind::kPlain, 2, 1, 3)
                   .has_value());
  EXPECT_FALSE(FindMonotonicityViolation(schema, edbs, q,
                                         MonotonicityKind::kDomainDistinct,
                                         2, 1, 3)
                   .has_value());
}

}  // namespace
}  // namespace lamp::sa
