#include <gtest/gtest.h>

#include "cq/parser.h"
#include "cq/containment.h"
#include "cq/ucq.h"
#include "relational/generators.h"

namespace lamp {
namespace {

class UcqTest : public ::testing::Test {
 protected:
  UcqTest() { e_ = schema_.AddRelation("E", 2); }

  Schema schema_;
  RelationId e_ = 0;
};

TEST_F(UcqTest, EvaluationIsUnionOfDisjuncts) {
  UnionQuery u;
  u.AddDisjunct(ParseQuery(schema_, "H(x) <- E(x,y)"));
  u.AddDisjunct(ParseQuery(schema_, "H(y) <- E(x,y)"));
  Instance inst;
  inst.Insert(Fact(e_, {1, 2}));
  inst.Insert(Fact(e_, {3, 4}));
  const Instance result = u.Evaluate(inst);
  EXPECT_EQ(result.Size(), 4u);
  EXPECT_TRUE(result.Contains(Fact(schema_.IdOf("H"), {2})));
}

TEST_F(UcqTest, DisjunctContainedInItsUnion) {
  const ConjunctiveQuery q1 = ParseQuery(schema_, "H(x) <- E(x,y)");
  UnionQuery u;
  u.AddDisjunct(ParseQuery(schema_, "H(x) <- E(x,y)"));
  u.AddDisjunct(ParseQuery(schema_, "H(y) <- E(x,y)"));
  EXPECT_TRUE(IsContainedIn(q1, u));
  // The union is not contained in a single disjunct.
  EXPECT_FALSE(IsContainedIn(u, q1));
}

TEST_F(UcqTest, CaseSplitContainment) {
  // The classic UCQ phenomenon: "E(x,y) with x = y or x != y" is
  // equivalent to plain E(x,y), but neither disjunct alone contains it.
  UnionQuery split;
  split.AddDisjunct(ParseQuery(schema_, "H(x,x) <- E(x,x)"));
  split.AddDisjunct(ParseQuery(schema_, "H(x,y) <- E(x,y), x != y"));
  const ConjunctiveQuery plain = ParseQuery(schema_, "H(x,y) <- E(x,y)");
  EXPECT_TRUE(IsContainedIn(plain, split));
  EXPECT_TRUE(IsContainedIn(split, plain));
  for (const ConjunctiveQuery& disjunct : split.disjuncts()) {
    EXPECT_FALSE(IsContainedIn(plain, disjunct));
  }
}

TEST_F(UcqTest, UnionContainmentIsPerDisjunct) {
  UnionQuery u1;
  u1.AddDisjunct(ParseQuery(schema_, "H() <- E(x,x)"));
  u1.AddDisjunct(ParseQuery(schema_, "H() <- E(x,y), E(y,x)"));
  UnionQuery u2;
  u2.AddDisjunct(ParseQuery(schema_, "H() <- E(x,y), E(y,x)"));
  // E(x,x) instantiates E(x,y), E(y,x) with x=y: u1 subseteq u2.
  EXPECT_TRUE(IsContainedIn(u1, u2));
  EXPECT_TRUE(IsContainedIn(u2, u1));
}

TEST_F(UcqTest, NonContainmentDetected) {
  UnionQuery u1;
  u1.AddDisjunct(ParseQuery(schema_, "H(x,y) <- E(x,y)"));
  UnionQuery u2;
  u2.AddDisjunct(ParseQuery(schema_, "H(x,y) <- E(y,x)"));
  EXPECT_FALSE(IsContainedIn(u1, u2));
}

TEST_F(UcqTest, ToStringJoinsDisjuncts) {
  UnionQuery u;
  u.AddDisjunct(ParseQuery(schema_, "H(x) <- E(x,y)"));
  u.AddDisjunct(ParseQuery(schema_, "H(y) <- E(x,y)"));
  const std::string s = u.ToString(schema_);
  EXPECT_NE(s.find("|"), std::string::npos);
  EXPECT_TRUE(u.IsNegationFree());
}

}  // namespace
}  // namespace lamp
