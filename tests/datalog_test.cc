#include <gtest/gtest.h>

#include "datalog/eval.h"
#include "datalog/program.h"
#include "datalog/wellfounded.h"
#include "relational/generators.h"

namespace lamp {
namespace {

// Example 5.13 program (1): complement of transitive closure.
constexpr const char* kComplementTc = R"(
  TC(x,y) <- E(x,y)
  TC(x,y) <- TC(x,z), TC(z,y)
  OUT(x,y) <- ADom(x), ADom(y), !TC(x,y)
)";

// Example 5.13 program (2): edge relation when no triangle exists.
constexpr const char* kNoTriangle = R"(
  T(x,y,z) <- E(x,y), E(y,z), E(z,x), y != x, y != z, x != z
  S(x) <- ADom(x), T(u,v,w)
  OUT(x,y) <- E(x,y), !S(x)
)";

constexpr const char* kWinMove = "WIN(x) <- MOVE(x,y), !WIN(y)";

TEST(Program, IdbEdbSplit) {
  Schema schema;
  const DatalogProgram p = ParseProgram(schema, kComplementTc);
  const auto idb = p.IdbRelations();
  EXPECT_EQ(idb.size(), 2u);
  EXPECT_TRUE(idb.count(schema.IdOf("TC")));
  EXPECT_TRUE(idb.count(schema.IdOf("OUT")));
  const auto edb = p.EdbRelations();
  EXPECT_TRUE(edb.count(schema.IdOf("E")));
  EXPECT_TRUE(edb.count(schema.IdOf("ADom")));
}

TEST(Program, StratifiesComplementTc) {
  Schema schema;
  const DatalogProgram p = ParseProgram(schema, kComplementTc);
  const auto strata = p.Stratify();
  ASSERT_TRUE(strata.has_value());
  ASSERT_EQ(strata->size(), 2u);
  // TC rules in stratum 0, OUT rule in stratum 1.
  EXPECT_EQ((*strata)[0].size(), 2u);
  EXPECT_EQ((*strata)[1].size(), 1u);
}

TEST(Program, WinMoveDoesNotStratify) {
  Schema schema;
  const DatalogProgram p = ParseProgram(schema, kWinMove);
  EXPECT_FALSE(p.Stratify().has_value());
}

TEST(Program, SemiPositivity) {
  Schema schema;
  // Negation on the EDB only.
  const DatalogProgram sp = ParseProgram(
      schema, "OUT(x,y) <- E(x,y), !F(x,y)");
  EXPECT_TRUE(sp.IsSemiPositive());

  Schema schema2;
  const DatalogProgram not_sp = ParseProgram(schema2, kComplementTc);
  EXPECT_FALSE(not_sp.IsSemiPositive());  // !TC negates an IDB relation.
}

TEST(Program, ConnectednessOfPaperExamples) {
  Schema schema;
  const DatalogProgram tc = ParseProgram(schema, kComplementTc);
  // TC rules are connected; the OUT rule (ADom(x), ADom(y)) is not.
  EXPECT_TRUE(DatalogProgram::IsConnectedRule(tc.rules()[0]));
  EXPECT_TRUE(DatalogProgram::IsConnectedRule(tc.rules()[1]));
  EXPECT_FALSE(DatalogProgram::IsConnectedRule(tc.rules()[2]));
  EXPECT_FALSE(tc.IsConnected());
  // Semi-connected: the disconnected rule sits in the last stratum.
  EXPECT_TRUE(tc.IsSemiConnected());
}

TEST(Program, NoTriangleProgramIsNotSemiConnected) {
  // The paper: "the rule defining S is not connected", and S feeds a
  // negation in a later stratum.
  Schema schema;
  const DatalogProgram p = ParseProgram(schema, kNoTriangle);
  ASSERT_TRUE(p.Stratify().has_value());
  EXPECT_FALSE(p.IsSemiConnected());
}

TEST(Eval, TransitiveClosureOnPath) {
  Schema schema;
  DatalogProgram p = ParseProgram(schema,
                                  "TC(x,y) <- E(x,y)\n"
                                  "TC(x,y) <- TC(x,z), E(z,y)");
  Instance edb;
  AddPathGraph(schema, schema.IdOf("E"), 6, edb);  // 0 -> 1 -> ... -> 5.
  const Instance result = EvaluateProgram(schema, p, edb);
  const RelationId tc = schema.IdOf("TC");
  // |TC| of a 6-node path = 5+4+3+2+1 = 15.
  EXPECT_EQ(result.FactsOf(tc).size(), 15u);
  EXPECT_TRUE(result.Contains(Fact(tc, {0, 5})));
  EXPECT_FALSE(result.Contains(Fact(tc, {5, 0})));
}

TEST(Eval, TransitiveClosureOnCycleIsComplete) {
  Schema schema;
  DatalogProgram p = ParseProgram(schema,
                                  "TC(x,y) <- E(x,y)\n"
                                  "TC(x,y) <- TC(x,z), E(z,y)");
  Instance edb;
  AddCycleGraph(schema, schema.IdOf("E"), 5, edb);
  const Instance result = EvaluateProgram(schema, p, edb);
  EXPECT_EQ(result.FactsOf(schema.IdOf("TC")).size(), 25u);
}

TEST(Eval, SemiNaiveAgreesWithNaive) {
  Schema schema;
  DatalogProgram p = ParseProgram(schema,
                                  "TC(x,y) <- E(x,y)\n"
                                  "TC(x,y) <- TC(x,z), TC(z,y)");
  Rng rng(7);
  for (int trial = 0; trial < 5; ++trial) {
    Instance edb;
    AddRandomGraph(schema, schema.IdOf("E"), 30, 15, rng, edb);
    DatalogStats semi_stats;
    DatalogStats naive_stats;
    const Instance semi = EvaluateProgram(schema, p, edb, &semi_stats);
    const Instance naive = EvaluateProgramNaive(schema, p, edb, &naive_stats);
    // Results agree fact-for-fact on the TC relation.
    const RelationId tc = schema.IdOf("TC");
    EXPECT_EQ(semi.FactsOf(tc).size(), naive.FactsOf(tc).size());
    for (const Fact& f : naive.FactsOf(tc)) EXPECT_TRUE(semi.Contains(f));
    EXPECT_EQ(semi_stats.facts_derived, naive_stats.facts_derived);
  }
}

TEST(Eval, ComplementOfTransitiveClosure) {
  Schema schema;
  DatalogProgram p = ParseProgram(schema, kComplementTc);
  Instance edb;
  // Two components: 0 -> 1 and the isolated loop 2 -> 2.
  edb.Insert(Fact(schema.IdOf("E"), {0, 1}));
  edb.Insert(Fact(schema.IdOf("E"), {2, 2}));
  const Instance result = EvaluateProgram(schema, p, edb);
  const RelationId out = schema.IdOf("OUT");
  // Reachable pairs: (0,1), (2,2). All 9 adom pairs minus these.
  EXPECT_EQ(result.FactsOf(out).size(), 7u);
  EXPECT_TRUE(result.Contains(Fact(out, {1, 0})));
  EXPECT_FALSE(result.Contains(Fact(out, {0, 1})));
}

TEST(Eval, NoTriangleProgramSemantics) {
  Schema schema;
  DatalogProgram p = ParseProgram(schema, kNoTriangle);
  const RelationId e = schema.IdOf("E");
  const RelationId out = schema.IdOf("OUT");

  Instance no_triangle;
  no_triangle.Insert(Fact(e, {0, 1}));
  no_triangle.Insert(Fact(e, {1, 2}));
  const Instance r1 = EvaluateProgram(schema, p, no_triangle);
  EXPECT_EQ(r1.FactsOf(out).size(), 2u);  // OUT = E.

  Instance with_triangle = no_triangle;
  with_triangle.Insert(Fact(e, {2, 0}));
  const Instance r2 = EvaluateProgram(schema, p, with_triangle);
  EXPECT_TRUE(r2.FactsOf(out).empty());  // Triangle kills everything.
}

TEST(Eval, InequalityInRecursiveRule) {
  Schema schema;
  DatalogProgram p = ParseProgram(
      schema, "P(x,y) <- E(x,y), x != y\nP(x,y) <- P(x,z), E(z,y), x != y");
  Instance edb;
  AddCycleGraph(schema, schema.IdOf("E"), 4, edb);
  const Instance result = EvaluateProgram(schema, p, edb);
  // All pairs (x,y), x != y, reachable on the 4-cycle: 12 pairs.
  EXPECT_EQ(result.FactsOf(schema.IdOf("P")).size(), 12u);
}

TEST(WellFounded, WinMoveSimpleGame) {
  // Positions: 3 -> 2 -> 1 -> 0 (0 has no moves: losing).
  // 1 moves to 0 (loser) -> 1 wins; 2 -> 1 (winner) -> 2 loses;
  // 3 -> 2 (loser) -> 3 wins.
  Schema schema;
  DatalogProgram p = ParseProgram(schema, kWinMove);
  Instance edb;
  const RelationId move = schema.IdOf("MOVE");
  edb.Insert(Fact(move, {3, 2}));
  edb.Insert(Fact(move, {2, 1}));
  edb.Insert(Fact(move, {1, 0}));
  const WellFoundedModel model = EvaluateWellFounded(schema, p, edb);
  const RelationId win = schema.IdOf("WIN");
  EXPECT_TRUE(model.true_facts.Contains(Fact(win, {1})));
  EXPECT_TRUE(model.true_facts.Contains(Fact(win, {3})));
  EXPECT_FALSE(model.true_facts.Contains(Fact(win, {2})));
  EXPECT_FALSE(model.true_facts.Contains(Fact(win, {0})));
  EXPECT_TRUE(model.undefined_facts.Empty());
}

TEST(WellFounded, DrawPositionsAreUndefined) {
  // A 2-cycle a <-> b: both positions are draws (undefined in WFS).
  Schema schema;
  DatalogProgram p = ParseProgram(schema, kWinMove);
  Instance edb;
  const RelationId move = schema.IdOf("MOVE");
  edb.Insert(Fact(move, {10, 11}));
  edb.Insert(Fact(move, {11, 10}));
  const WellFoundedModel model = EvaluateWellFounded(schema, p, edb);
  const RelationId win = schema.IdOf("WIN");
  EXPECT_TRUE(model.true_facts.Empty());
  EXPECT_TRUE(model.undefined_facts.Contains(Fact(win, {10})));
  EXPECT_TRUE(model.undefined_facts.Contains(Fact(win, {11})));
}

TEST(WellFounded, MixedGameGraph) {
  // 0 <- losing leaf; 1 -> 0 wins; draw cycle 5 <-> 6 with an escape
  // 5 -> 0? No: give 6 -> 1: moving to a winning position doesn't help;
  // 6's only other option is the cycle -> still a draw.
  Schema schema;
  DatalogProgram p = ParseProgram(schema, kWinMove);
  Instance edb;
  const RelationId move = schema.IdOf("MOVE");
  edb.Insert(Fact(move, {1, 0}));
  edb.Insert(Fact(move, {5, 6}));
  edb.Insert(Fact(move, {6, 5}));
  edb.Insert(Fact(move, {6, 1}));
  const WellFoundedModel model = EvaluateWellFounded(schema, p, edb);
  const RelationId win = schema.IdOf("WIN");
  EXPECT_TRUE(model.true_facts.Contains(Fact(win, {1})));
  EXPECT_TRUE(model.undefined_facts.Contains(Fact(win, {5})));
  EXPECT_TRUE(model.undefined_facts.Contains(Fact(win, {6})));
}

TEST(WellFounded, AgreesWithStratifiedOnStratifiedProgram) {
  Schema schema;
  DatalogProgram p = ParseProgram(schema, kComplementTc);
  Instance edb;
  AddPathGraph(schema, schema.IdOf("E"), 4, edb);
  const Instance stratified = EvaluateProgram(schema, p, edb);
  const WellFoundedModel wfs = EvaluateWellFounded(schema, p, edb);
  EXPECT_TRUE(wfs.undefined_facts.Empty());
  for (const Fact& f : wfs.true_facts.AllFacts()) {
    EXPECT_TRUE(stratified.Contains(f));
  }
  // Same OUT relation in both.
  const RelationId out = schema.IdOf("OUT");
  EXPECT_EQ(wfs.true_facts.FactsOf(out).size(),
            stratified.FactsOf(out).size());
}

}  // namespace
}  // namespace lamp
