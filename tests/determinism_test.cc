// Determinism suite for the parallel execution engine (ISSUE: parallel
// runs must be *bit-identical* to serial). Two MPC workloads — a
// one-round HyperCube triangle join and a multi-round KeepAll reshuffle —
// run at threads in {1, 2, 8} over seeds 0..4; outputs, per-round
// RunStats and golden trace hashes must match the serial run byte for
// byte. The golden constants pin the threads=1 behaviour across commits
// (the fault_test.cc pattern), and the cross-thread-count comparison pins
// the lamp::par merge-order argument (DESIGN.md §lamp::par).

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/hash.h"
#include "common/rng.h"
#include "cq/parser.h"
#include "mpc/hypercube_run.h"
#include "mpc/simulator.h"
#include "obs/trace.h"
#include "par/thread_pool.h"
#include "relational/generators.h"

namespace lamp {
namespace {

// FNV-1a accumulator: order-sensitive, so any reordering of facts or
// stats entries changes the hash.
struct Fnv {
  std::uint64_t h = 1469598103934665603ull;
  void Mix(std::uint64_t x) {
    h ^= x;
    h *= 1099511628211ull;
  }
};

// Hash over the (relation, insertion)-ordered fact sequence — exactly the
// order ForEachFact exposes and serial execution produces. Any change in
// dedup decisions or insert order at higher thread counts changes this.
std::uint64_t InstanceFingerprint(const Instance& instance) {
  Fnv f;
  instance.ForEachFact([&](const Fact& fact) {
    f.Mix(HashMix(fact.relation));
    f.Mix(fact.args.size());
    for (Value v : fact.args) f.Mix(static_cast<std::uint64_t>(v.v));
  });
  return f.h;
}

std::uint64_t StatsFingerprint(const RunStats& stats) {
  Fnv f;
  f.Mix(stats.rounds.size());
  for (const RoundStats& r : stats.rounds) {
    f.Mix(r.received.size());
    for (std::size_t load : r.received) f.Mix(load);
  }
  return f.h;
}

// fault_test.cc's TraceHash, minus kSpan events: span durations are wall
// clock and legitimately vary run to run, while every structural event
// (round begin/end, per-server loads) must not. Transport send/recv
// events are excluded for the same reason: they are emitted from pool
// workers draining independent channels, so their cross-thread interleave
// (and hence the chronological merge) is timing, not structure — the
// structural consequences (loads, wire bytes, outputs) are all hashed.
std::uint64_t TraceHashNoSpans(const obs::Tracer& tracer) {
  Fnv f;
  for (const obs::TraceEvent& e : tracer.Events()) {
    if (e.kind == obs::EventKind::kSpan ||
        e.kind == obs::EventKind::kTransportConnect ||
        e.kind == obs::EventKind::kTransportSend ||
        e.kind == obs::EventKind::kTransportRecv) {
      continue;
    }
    f.Mix(static_cast<std::uint64_t>(e.kind));
    f.Mix(e.a);
    f.Mix(e.b);
    f.Mix(e.value);
  }
  return f.h;
}

struct RunDigest {
  std::uint64_t output = 0;
  std::uint64_t locals = 0;
  std::uint64_t stats = 0;
  std::uint64_t trace = 0;

  friend bool operator==(const RunDigest& a, const RunDigest& b) {
    return a.output == b.output && a.locals == b.locals &&
           a.stats == b.stats && a.trace == b.trace;
  }
};

std::ostream& operator<<(std::ostream& os, const RunDigest& d) {
  return os << "{output=" << d.output << " locals=" << d.locals
            << " stats=" << d.stats << " trace=" << d.trace << "}";
}

// ------------------------------------------------ HyperCube triangle --

Instance TriangleInput(const Schema& schema, const ConjunctiveQuery& q,
                       std::uint64_t seed) {
  Rng rng(seed * 7919 + 13);
  Instance db;
  for (const Atom& atom : q.body()) {
    AddUniformRelation(schema, atom.relation, /*m=*/600, /*domain_size=*/40,
                       rng, db);
  }
  return db;
}

RunDigest HyperCubeDigest(std::uint64_t seed) {
  Schema schema;
  const ConjunctiveQuery q =
      ParseQuery(schema, "H(x,y,z) <- R0(x,y), R1(y,z), R2(z,x)");
  const Instance db = TriangleInput(schema, q, seed);
  obs::Tracer tracer;
  obs::ScopedTracer install(tracer);
  const MpcRunResult run = RunHyperCubeUniform(q, db, /*num_servers=*/64);
  RunDigest d;
  d.output = InstanceFingerprint(run.output);
  d.stats = StatsFingerprint(run.stats);
  d.trace = TraceHashNoSpans(tracer);
  return d;
}

// ------------------------------------------- multi-round reshuffle --

// Three KeepAll rounds on p=8 servers; the router fans every fact out to
// two hash-chosen servers, so dedup on receive and per-round loads
// exercise the merge path (not just disjoint repartitioning).
RunDigest ReshuffleDigest(std::uint64_t seed) {
  const std::size_t p = 8;
  Schema schema;
  const RelationId r = schema.AddRelation("R", 2);
  const RelationId s = schema.AddRelation("S", 2);
  Rng rng(seed + 101);
  Instance db;
  AddUniformRelation(schema, r, /*m=*/1500, /*domain_size=*/200, rng, db);
  AddUniformRelation(schema, s, /*m=*/900, /*domain_size=*/120, rng, db);

  MpcSimulator sim(p);
  sim.LoadInput(db);
  obs::Tracer tracer;
  obs::ScopedTracer install(tracer);
  for (std::uint64_t round = 0; round < 3; ++round) {
    sim.RunRound(
        [round, p](NodeId, const Fact& fact) {
          const std::uint64_t h =
              HashMix(static_cast<std::uint64_t>(fact.args[0].v) * 31 +
                      round);
          return std::vector<NodeId>{
              static_cast<NodeId>(h % p),
              static_cast<NodeId>((h >> 20) % p)};
        },
        MpcSimulator::KeepAll());
  }
  RunDigest d;
  Fnv locals;
  for (const Instance& local : sim.locals()) {
    locals.Mix(InstanceFingerprint(local));
  }
  d.locals = locals.h;
  d.output = InstanceFingerprint(sim.output());
  d.stats = StatsFingerprint(sim.stats());
  d.trace = TraceHashNoSpans(tracer);
  return d;
}

// ------------------------------------------------------------ tests --

constexpr std::uint64_t kSeeds[] = {0, 1, 2, 3, 4};
constexpr std::size_t kThreadCounts[] = {1, 2, 8};

class ThreadRestorer {
 public:
  ~ThreadRestorer() { par::SetDefaultThreads(1); }
};

TEST(DeterminismTest, HyperCubeRunsAreBitIdenticalAcrossThreadCounts) {
  ThreadRestorer restore;
  for (std::uint64_t seed : kSeeds) {
    par::SetDefaultThreads(1);
    const RunDigest serial = HyperCubeDigest(seed);
    for (std::size_t threads : kThreadCounts) {
      par::SetDefaultThreads(threads);
      EXPECT_EQ(HyperCubeDigest(seed), serial)
          << "seed " << seed << " threads " << threads;
    }
  }
}

TEST(DeterminismTest, ReshuffleRunsAreBitIdenticalAcrossThreadCounts) {
  ThreadRestorer restore;
  for (std::uint64_t seed : kSeeds) {
    par::SetDefaultThreads(1);
    const RunDigest serial = ReshuffleDigest(seed);
    for (std::size_t threads : kThreadCounts) {
      par::SetDefaultThreads(threads);
      EXPECT_EQ(ReshuffleDigest(seed), serial)
          << "seed " << seed << " threads " << threads;
    }
  }
}

// Golden pinning (fault_test.cc pattern): the serial digests themselves
// are frozen, so a semantics change anywhere in routing, dedup or stats
// shows up even if it is consistent across thread counts.
struct Golden {
  std::uint64_t output, stats, trace;
};

TEST(DeterminismTest, SerialHyperCubeDigestsMatchGolden) {
  ThreadRestorer restore;
  constexpr Golden golden[] = {
      {14338835893641956687ull, 14281822698986460ull,
       4935154643048114563ull},
      {11230423438902327825ull, 7909780018122835451ull,
       3535439940312791071ull},
      {13377368258368684909ull, 17691231741279409875ull,
       16958798099839459587ull},
      {16543810253471282915ull, 4681841633658187328ull,
       362452524656887117ull},
      {5581158950698117550ull, 12392788418635686142ull,
       13661698555742107713ull},
  };
  par::SetDefaultThreads(1);
  for (std::uint64_t seed : kSeeds) {
    const RunDigest d = HyperCubeDigest(seed);
    EXPECT_EQ(d.output, golden[seed].output) << "seed " << seed;
    EXPECT_EQ(d.stats, golden[seed].stats) << "seed " << seed;
    EXPECT_EQ(d.trace, golden[seed].trace) << "seed " << seed;
  }
}

}  // namespace
}  // namespace lamp
