// Golden-file tests for the static analyzer's "lamp.sa.v1" JSON
// diagnostics document (src/sa/analyzer.h) — the same document
// tools/lamp_lint --json emits. Three fixtures cover the three verdict
// shapes: a clean stratified program, an unstratifiable one (negation
// cycle witness) and one full of range-restriction violations. Each must
// match tests/golden/sa_<name>.json byte for byte.
//
// Regenerate the goldens after an intentional format change with:
//   LAMP_REGEN_GOLDEN=1 ./build/tests/lamp_lint_test

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/json.h"
#include "sa/analyzer.h"

#ifndef LAMP_TESTS_DIR
#error "tests/CMakeLists.txt must define LAMP_TESTS_DIR"
#endif

namespace lamp::sa {
namespace {

std::string ReadFileOrDie(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.is_open()) << path;
  std::stringstream text;
  text << in.rdbuf();
  return text.str();
}

struct Analyzed {
  Schema schema;
  ProgramAnalysis analysis;
};

Analyzed AnalyzeFixture(const std::string& name) {
  Analyzed result;
  result.analysis = AnalyzeProgramText(
      result.schema,
      ReadFileOrDie(std::string(LAMP_TESTS_DIR) + "/data/sa/" + name +
                    ".dl"));
  result.analysis.name = name;
  return result;
}

void CheckGolden(const std::string& name) {
  const Analyzed a = AnalyzeFixture(name);
  const std::string got =
      AnalysisToJson(a.schema, a.analysis).Dump(2) + "\n";
  const std::string golden_path =
      std::string(LAMP_TESTS_DIR) + "/golden/sa_" + name + ".json";

  if (std::getenv("LAMP_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(golden_path, std::ios::trunc);
    ASSERT_TRUE(out.is_open()) << golden_path;
    out << got;
    GTEST_SKIP() << "golden regenerated at " << golden_path;
  }

  std::ifstream in(golden_path);
  ASSERT_TRUE(in.is_open()) << "missing golden " << golden_path
                            << " — regenerate with LAMP_REGEN_GOLDEN=1";
  std::stringstream want;
  want << in.rdbuf();
  EXPECT_EQ(got, want.str())
      << "lamp.sa.v1 output drifted from the golden. If the change is "
         "intentional, rerun with LAMP_REGEN_GOLDEN=1.";

  // The document must stay parseable JSON regardless of the diff.
  EXPECT_TRUE(obs::JsonValue::Parse(got).has_value());
}

TEST(LampLintGoldenTest, CleanProgram) { CheckGolden("clean"); }

TEST(LampLintGoldenTest, UnstratifiableProgram) {
  CheckGolden("unstratifiable");
}

TEST(LampLintGoldenTest, UnsafeProgram) { CheckGolden("unsafe"); }

TEST(LampLintGoldenTest, CrossProductProgram) {
  CheckGolden("cross_product");
}

// Structural guards independent of the golden bytes, so a bad regen
// cannot silently bless a wrong analysis.

TEST(LampLintFixtureTest, CleanHasNoDiagnostics) {
  const Analyzed a = AnalyzeFixture("clean");
  EXPECT_TRUE(a.analysis.parse_ok);
  EXPECT_EQ(a.analysis.ErrorCount(), 0u);
  EXPECT_EQ(a.analysis.WarningCount(), 0u);
  ASSERT_TRUE(a.analysis.strata.has_value());
  EXPECT_EQ(a.analysis.strata->num_strata, 2u);
  ASSERT_TRUE(a.analysis.fragments.strongest.has_value());
  EXPECT_EQ(*a.analysis.fragments.strongest, Fragment::kSemiConnected);
}

TEST(LampLintFixtureTest, UnstratifiableNamesTheCycle) {
  const Analyzed a = AnalyzeFixture("unstratifiable");
  EXPECT_FALSE(a.analysis.strata.has_value());
  ASSERT_EQ(a.analysis.ErrorCount(), 1u);
  bool found = false;
  for (const LintDiagnostic& d : a.analysis.diagnostics) {
    if (d.pass != "stratification") continue;
    found = true;
    EXPECT_EQ(d.severity, LintSeverity::kError);
    EXPECT_NE(d.message.find("Win"), std::string::npos) << d.message;
    EXPECT_NE(d.message.find("Lose"), std::string::npos) << d.message;
  }
  EXPECT_TRUE(found);
  EXPECT_FALSE(a.analysis.fragments.strongest.has_value());
}

TEST(LampLintFixtureTest, UnsafeFlagsEveryViolationWithLines) {
  const Analyzed a = AnalyzeFixture("unsafe");
  std::size_t safety = 0;
  for (const LintDiagnostic& d : a.analysis.diagnostics) {
    if (d.pass != "safety") continue;
    ++safety;
    EXPECT_EQ(d.severity, LintSeverity::kError);
    EXPECT_GT(d.line, 0) << d.message;  // Source lines must be mapped.
  }
  EXPECT_EQ(safety, 3u);  // Head var, negated var, inequality var.
  bool dead = false;
  for (const LintDiagnostic& d : a.analysis.diagnostics) {
    dead = dead || d.pass == "dead-rule";
  }
  EXPECT_TRUE(dead) << "Q(x) cannot reach the declared output H";
}

TEST(LampLintFixtureTest, CrossProductNamesBothComponents) {
  const Analyzed a = AnalyzeFixture("cross_product");
  EXPECT_TRUE(a.analysis.parse_ok);
  EXPECT_EQ(a.analysis.ErrorCount(), 0u);
  bool found = false;
  for (const LintDiagnostic& d : a.analysis.diagnostics) {
    if (d.pass != "cross-product") continue;
    found = true;
    EXPECT_EQ(d.severity, LintSeverity::kWarning);
    EXPECT_NE(d.message.find("R(x,y)"), std::string::npos) << d.message;
    EXPECT_NE(d.message.find("S(u,v)"), std::string::npos) << d.message;
    EXPECT_GT(d.line, 0) << d.message;
  }
  EXPECT_TRUE(found);
}

TEST(LampLintFixtureTest, NoStatisticsFlagsOnlyUncataloguedEdbAtoms) {
  AnalyzerOptions options;
  options.have_catalog = true;
  options.catalog_relations = {"R"};
  Schema schema;
  const ProgramAnalysis analysis = AnalyzeProgramText(
      schema,
      "T(x,y) <- R(x,y)\n"
      "H(x,z) <- T(x,y), S(y,z)\n",
      options);
  std::size_t flagged = 0;
  for (const LintDiagnostic& d : analysis.diagnostics) {
    if (d.pass != "no-statistics") continue;
    ++flagged;
    EXPECT_EQ(d.severity, LintSeverity::kWarning);
    // S is extensional and uncatalogued; R is catalogued and T is
    // derived — only S may be flagged.
    EXPECT_NE(d.message.find("S/2"), std::string::npos) << d.message;
  }
  EXPECT_EQ(flagged, 1u);

  // Without a catalog the pass must stay silent.
  Schema schema2;
  const ProgramAnalysis no_catalog = AnalyzeProgramText(
      schema2, "H(x,z) <- T(x,y), S(y,z)\n");
  for (const LintDiagnostic& d : no_catalog.diagnostics) {
    EXPECT_NE(d.pass, "no-statistics") << d.message;
  }
}

TEST(LampLintFixtureTest, ParseErrorsAreDiagnosticsNotAborts) {
  Schema schema;
  const ProgramAnalysis analysis = AnalyzeProgramText(
      schema, "H(x) <- E(x,y)\nH(x <- E(x,y)\nH(x) <- E(x,y,z)\n");
  EXPECT_FALSE(analysis.parse_ok);
  EXPECT_EQ(analysis.program.rules().size(), 1u);
  std::size_t parse_errors = 0;
  for (const LintDiagnostic& d : analysis.diagnostics) {
    if (d.pass == "parse") {
      ++parse_errors;
      EXPECT_EQ(d.severity, LintSeverity::kError);
    }
  }
  EXPECT_EQ(parse_errors, 2u);  // Malformed atom; arity mismatch.
}

}  // namespace
}  // namespace lamp::sa
