// End-to-end validation of the machine-readable bench reporting
// (acceptance: bench binaries emit uniform JSON records via
// obs::BenchReporter). The harness receives bench binary paths on the
// command line (wired in tests/CMakeLists.txt), runs each with
// LAMP_BENCH_JSON pointing at a temp file and a benchmark filter that
// matches nothing (so only the table/report section executes), then
// parses every emitted line and checks the uniform record shape.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "obs/bench_report.h"
#include "obs/json.h"

namespace lamp::obs {
namespace {

std::vector<std::string> g_bench_binaries;

// Options for one validation run: repeat count and whether the record
// should carry the bench_runner-style "meta" object (set via
// LAMP_BENCH_META).
struct RunCheck {
  int repeat = 1;
  bool with_meta = false;
};

void CheckBenchEmitsUniformJson(const std::string& binary,
                                const RunCheck& check) {
  const std::string json_path =
      ::testing::TempDir() + "/lamp_bench_json_test.jsonl";
  std::remove(json_path.c_str());

  // The filter matches no registered benchmark, so only PrintTable (and
  // with it the BenchReporter flush) runs — the table is the slow part we
  // actually want to validate, the microbenchmarks are not.
  std::string cmd = "LAMP_BENCH_JSON='" + json_path + "' ";
  if (check.with_meta) {
    cmd += "LAMP_BENCH_META='{\"git_rev\":\"test\"}' ";
  }
  cmd += "'" + binary + "' --repeat " + std::to_string(check.repeat) +
         " --benchmark_filter='$^' > /dev/null 2>&1";
  ASSERT_EQ(std::system(cmd.c_str()), 0) << cmd;

  std::ifstream in(json_path);
  ASSERT_TRUE(in.is_open()) << "bench wrote no " << json_path;
  std::string line;
  std::size_t records = 0;
  int max_repeat_seen = -1;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    ++records;
    const auto parsed = JsonValue::Parse(line);
    ASSERT_TRUE(parsed.has_value()) << "invalid JSON line: " << line;
    ASSERT_TRUE(parsed->IsObject());
    // The uniform shape: bench, params, metrics, threads, repeat,
    // wall_ms, wall_ns — exactly, in order — plus a trailing "meta"
    // object when LAMP_BENCH_META is set.
    const std::size_t want = check.with_meta ? 8u : 7u;
    ASSERT_EQ(parsed->members().size(), want) << line;
    EXPECT_EQ(parsed->members()[0].first, "bench");
    EXPECT_EQ(parsed->members()[1].first, "params");
    EXPECT_EQ(parsed->members()[2].first, "metrics");
    EXPECT_EQ(parsed->members()[3].first, "threads");
    EXPECT_EQ(parsed->members()[4].first, "repeat");
    EXPECT_EQ(parsed->members()[5].first, "wall_ms");
    EXPECT_EQ(parsed->members()[6].first, "wall_ns");
    if (check.with_meta) {
      EXPECT_EQ(parsed->members()[7].first, "meta");
    }

    const JsonValue* bench = parsed->Find("bench");
    ASSERT_TRUE(bench != nullptr && bench->IsString());
    EXPECT_FALSE(bench->AsString().empty());
    const JsonValue* params = parsed->Find("params");
    ASSERT_TRUE(params != nullptr && params->IsObject());
    EXPECT_GT(params->size(), 0u);
    const JsonValue* metrics = parsed->Find("metrics");
    ASSERT_TRUE(metrics != nullptr && metrics->IsObject());
    EXPECT_GT(metrics->size(), 0u);
    const JsonValue* threads = parsed->Find("threads");
    ASSERT_TRUE(threads != nullptr && threads->IsNumber());
    EXPECT_GE(threads->AsInt(), 1);
    const JsonValue* repeat = parsed->Find("repeat");
    ASSERT_TRUE(repeat != nullptr && repeat->IsNumber());
    EXPECT_GE(repeat->AsInt(), 0);
    EXPECT_LT(repeat->AsInt(), check.repeat);
    max_repeat_seen =
        std::max(max_repeat_seen, static_cast<int>(repeat->AsInt()));
    const JsonValue* wall = parsed->Find("wall_ms");
    ASSERT_TRUE(wall != nullptr && wall->IsNumber());
    EXPECT_GE(wall->AsDouble(), 0.0);
    const JsonValue* wall_ns = parsed->Find("wall_ns");
    ASSERT_TRUE(wall_ns != nullptr && wall_ns->IsNumber());
    EXPECT_GE(wall_ns->AsInt(), 0);
    if (check.with_meta) {
      const JsonValue* meta = parsed->Find("meta");
      ASSERT_TRUE(meta != nullptr && meta->IsObject());
      const JsonValue* rev = meta->Find("git_rev");
      ASSERT_TRUE(rev != nullptr && rev->IsString());
      EXPECT_EQ(rev->AsString(), "test");
    }
  }
  EXPECT_GT(records, 0u) << "no records in " << json_path;
  // Every repeat index up to --repeat N-1 must actually appear.
  EXPECT_EQ(max_repeat_seen, check.repeat - 1);
  std::remove(json_path.c_str());
}

TEST(BenchJsonTest, AllListedBenchesEmitUniformJsonRecords) {
  ASSERT_FALSE(g_bench_binaries.empty())
      << "pass bench binary paths on the command line (see "
         "tests/CMakeLists.txt)";
  for (const std::string& binary : g_bench_binaries) {
    SCOPED_TRACE(binary);
    CheckBenchEmitsUniformJson(binary, RunCheck{});
  }
}

TEST(BenchJsonTest, RepeatAndMetaStamping) {
  ASSERT_FALSE(g_bench_binaries.empty())
      << "pass bench binary paths on the command line (see "
         "tests/CMakeLists.txt)";
  // One binary suffices: --repeat/--meta handling lives in the shared
  // BenchReporter, not the individual benches.
  SCOPED_TRACE(g_bench_binaries.front());
  CheckBenchEmitsUniformJson(g_bench_binaries.front(),
                             RunCheck{/*repeat=*/2, /*with_meta=*/true});
}

}  // namespace
}  // namespace lamp::obs

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (argv[i][0] != '-') {
      lamp::obs::g_bench_binaries.push_back(argv[i]);
    }
  }
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
