// End-to-end validation of the machine-readable bench reporting
// (acceptance: bench binaries emit uniform JSON records via
// obs::BenchReporter). The harness receives bench binary paths on the
// command line (wired in tests/CMakeLists.txt), runs each with
// LAMP_BENCH_JSON pointing at a temp file and a benchmark filter that
// matches nothing (so only the table/report section executes), then
// parses every emitted line and checks the uniform record shape.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "obs/bench_report.h"
#include "obs/json.h"

namespace lamp::obs {
namespace {

std::vector<std::string> g_bench_binaries;

void CheckBenchEmitsUniformJson(const std::string& binary) {
  const std::string json_path =
      ::testing::TempDir() + "/lamp_bench_json_test.jsonl";
  std::remove(json_path.c_str());

  // The filter matches no registered benchmark, so only PrintTable (and
  // with it the BenchReporter flush) runs — the table is the slow part we
  // actually want to validate, the microbenchmarks are not.
  const std::string cmd = "LAMP_BENCH_JSON='" + json_path + "' '" + binary +
                          "' --benchmark_filter='$^' > /dev/null 2>&1";
  ASSERT_EQ(std::system(cmd.c_str()), 0) << cmd;

  std::ifstream in(json_path);
  ASSERT_TRUE(in.is_open()) << "bench wrote no " << json_path;
  std::string line;
  std::size_t records = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    ++records;
    const auto parsed = JsonValue::Parse(line);
    ASSERT_TRUE(parsed.has_value()) << "invalid JSON line: " << line;
    ASSERT_TRUE(parsed->IsObject());
    // The uniform shape: bench, params, metrics, threads, wall_ms,
    // wall_ns — exactly, in order.
    ASSERT_EQ(parsed->members().size(), 6u) << line;
    EXPECT_EQ(parsed->members()[0].first, "bench");
    EXPECT_EQ(parsed->members()[1].first, "params");
    EXPECT_EQ(parsed->members()[2].first, "metrics");
    EXPECT_EQ(parsed->members()[3].first, "threads");
    EXPECT_EQ(parsed->members()[4].first, "wall_ms");
    EXPECT_EQ(parsed->members()[5].first, "wall_ns");

    const JsonValue* bench = parsed->Find("bench");
    ASSERT_TRUE(bench != nullptr && bench->IsString());
    EXPECT_FALSE(bench->AsString().empty());
    const JsonValue* params = parsed->Find("params");
    ASSERT_TRUE(params != nullptr && params->IsObject());
    EXPECT_GT(params->size(), 0u);
    const JsonValue* metrics = parsed->Find("metrics");
    ASSERT_TRUE(metrics != nullptr && metrics->IsObject());
    EXPECT_GT(metrics->size(), 0u);
    const JsonValue* threads = parsed->Find("threads");
    ASSERT_TRUE(threads != nullptr && threads->IsNumber());
    EXPECT_GE(threads->AsInt(), 1);
    const JsonValue* wall = parsed->Find("wall_ms");
    ASSERT_TRUE(wall != nullptr && wall->IsNumber());
    EXPECT_GE(wall->AsDouble(), 0.0);
    const JsonValue* wall_ns = parsed->Find("wall_ns");
    ASSERT_TRUE(wall_ns != nullptr && wall_ns->IsNumber());
    EXPECT_GE(wall_ns->AsInt(), 0);
  }
  EXPECT_GT(records, 0u) << "no records in " << json_path;
  std::remove(json_path.c_str());
}

TEST(BenchJsonTest, AllListedBenchesEmitUniformJsonRecords) {
  ASSERT_FALSE(g_bench_binaries.empty())
      << "pass bench binary paths on the command line (see "
         "tests/CMakeLists.txt)";
  for (const std::string& binary : g_bench_binaries) {
    SCOPED_TRACE(binary);
    CheckBenchEmitsUniformJson(binary);
  }
}

}  // namespace
}  // namespace lamp::obs

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (argv[i][0] != '-') {
      lamp::obs::g_bench_binaries.push_back(argv[i]);
    }
  }
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
