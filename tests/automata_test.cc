#include <gtest/gtest.h>

#include "automata/register_automaton.h"
#include "automata/streaming_ops.h"
#include "common/rng.h"
#include "mapreduce/mapreduce.h"
#include "relational/generators.h"

namespace lamp {
namespace {

class AutomataTest : public ::testing::Test {
 protected:
  AutomataTest() {
    // Relation ids are ordered by registration: S < R (the probe-first
    // order the streaming operators need).
    s_ = schema_.AddRelation("S", 2);
    r_ = schema_.AddRelation("R", 2);
    p_ = schema_.AddRelation("P", 1);
  }

  Schema schema_;
  RelationId s_ = 0;
  RelationId r_ = 0;
  RelationId p_ = 0;
};

TEST_F(AutomataTest, GuardsFilterByRelationAndConstant) {
  RegisterAutomaton automaton(1, 0, 0);
  Transition t;
  t.from_state = 0;
  t.guard.relation = r_;
  t.guard.equals_constant = {std::nullopt, Value(7)};
  t.to_state = 0;
  t.output_relation = p_;
  t.output_terms = {OutputTerm::Position(0)};
  automaton.AddTransition(t);

  const std::vector<Fact> stream = {Fact(r_, {1, 7}), Fact(r_, {2, 8}),
                                    Fact(s_, {3, 7}), Fact(r_, {4, 7})};
  const std::vector<Fact> out = automaton.Run(stream);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], Fact(p_, {1}));
  EXPECT_EQ(out[1], Fact(p_, {4}));
}

TEST_F(AutomataTest, RegistersRememberValues) {
  // Emit R facts whose first argument equals the first R fact's first
  // argument (a "same-origin" filter): one register.
  RegisterAutomaton automaton(2, 1, 0);
  {
    Transition first;
    first.from_state = 0;
    first.guard.relation = r_;
    first.to_state = 1;
    first.stores = {{0, 0}};  // reg0 <- args[0].
    first.output_relation = r_;
    first.output_terms = {OutputTerm::Position(0), OutputTerm::Position(1)};
    automaton.AddTransition(first);
  }
  {
    Transition same;
    same.from_state = 1;
    same.guard.relation = r_;
    same.guard.equals_register = {std::optional<std::size_t>(0),
                                  std::nullopt};
    same.to_state = 1;
    same.output_relation = r_;
    same.output_terms = {OutputTerm::Position(0), OutputTerm::Position(1)};
    automaton.AddTransition(same);
  }
  const std::vector<Fact> stream = {Fact(r_, {5, 1}), Fact(r_, {6, 2}),
                                    Fact(r_, {5, 3})};
  const std::vector<Fact> out = automaton.Run(stream);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], Fact(r_, {5, 1}));
  EXPECT_EQ(out[1], Fact(r_, {5, 3}));
}

TEST_F(AutomataTest, OutputFromRegisterAndConstant) {
  RegisterAutomaton automaton(1, 1, 0);
  Transition t;
  t.from_state = 0;
  t.guard.relation = p_;
  t.to_state = 0;
  t.stores = {{0, 0}};
  t.output_relation = r_;
  t.output_terms = {OutputTerm::Register(0), OutputTerm::Constant(Value(42))};
  automaton.AddTransition(t);
  const std::vector<Fact> out = automaton.Run({Fact(p_, {9})});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], Fact(r_, {9, 42}));
}

TEST_F(AutomataTest, StreamingSemijoinMatchesSetSemantics) {
  Rng rng(1);
  Instance db;
  AddUniformRelation(schema_, r_, 300, 50, rng, db);
  AddUniformRelation(schema_, s_, 100, 50, rng, db);

  // R semijoin S on R.args[1] == S.args[0].
  const MapReduceJob job = StreamingSemijoin(schema_, r_, 1, s_, 0);
  const Instance streamed = RunJob(job, db);

  Instance expected;
  std::set<Value> keys;
  for (const Fact& f : db.FactsOf(s_)) keys.insert(f.args[0]);
  for (const Fact& f : db.FactsOf(r_)) {
    if (keys.count(f.args[1]) > 0) expected.Insert(f);
  }
  EXPECT_EQ(streamed, expected);
}

TEST_F(AutomataTest, StreamingAntiSemijoinIsComplement) {
  Rng rng(2);
  Instance db;
  AddUniformRelation(schema_, r_, 300, 50, rng, db);
  AddUniformRelation(schema_, s_, 100, 50, rng, db);

  const Instance hits = RunJob(StreamingSemijoin(schema_, r_, 1, s_, 0), db);
  const Instance misses =
      RunJob(StreamingAntiSemijoin(schema_, r_, 1, s_, 0), db);
  // Partition of R.
  EXPECT_EQ(hits.Size() + misses.Size(), db.FactsOf(r_).size());
  for (const Fact& f : hits.AllFacts()) EXPECT_FALSE(misses.Contains(f));
}

TEST_F(AutomataTest, StreamingSelectionAndProjection) {
  Instance db;
  db.Insert(Fact(r_, {1, 7}));
  db.Insert(Fact(r_, {2, 7}));
  db.Insert(Fact(r_, {3, 8}));

  const Instance selected =
      RunJob(StreamingSelection(schema_, r_, 1, Value(7)), db);
  EXPECT_EQ(selected.Size(), 2u);

  const Instance projected =
      RunJob(StreamingProjection(schema_, r_, {1}, p_), db);
  EXPECT_EQ(projected.Size(), 2u);  // {P(7), P(8)} after dedup.
  EXPECT_TRUE(projected.Contains(Fact(p_, {7})));
  EXPECT_TRUE(projected.Contains(Fact(p_, {8})));
}

TEST_F(AutomataTest, ConstantMemoryIsStructural) {
  // The finite-memory claim of the model: the operators use O(1)
  // registers and states regardless of the data size — structural, so
  // assert it directly on the builders' automata via their public
  // wrapping (re-built here to inspect).
  RegisterAutomaton semijoin_shape(2, 0, 0);
  EXPECT_EQ(semijoin_shape.num_registers(), 0u);
  EXPECT_EQ(semijoin_shape.num_states(), 2u);
}

TEST_F(AutomataTest, SemijoinAlgebraPipeline) {
  // Compose: first semijoin R with S, then project the survivors —
  // a two-job streaming program (the semi-join algebra is closed under
  // composition; each stage stays constant-memory).
  Instance db;
  db.Insert(Fact(r_, {1, 10}));
  db.Insert(Fact(r_, {2, 20}));
  db.Insert(Fact(r_, {3, 30}));
  db.Insert(Fact(s_, {10, 0}));
  db.Insert(Fact(s_, {30, 0}));

  MapReduceProgram program;
  program.jobs.push_back(StreamingSemijoin(schema_, r_, 1, s_, 0));
  program.jobs.push_back(StreamingProjection(schema_, r_, {0}, p_));
  const Instance result = RunProgram(program, db);
  EXPECT_EQ(result.Size(), 2u);
  EXPECT_TRUE(result.Contains(Fact(p_, {1})));
  EXPECT_TRUE(result.Contains(Fact(p_, {3})));
}

}  // namespace
}  // namespace lamp
