#include <gtest/gtest.h>

#include "cq/acyclic.h"
#include "cq/parser.h"

namespace lamp {
namespace {

TEST(Acyclic, SingleAtomIsAcyclic) {
  Schema schema;
  EXPECT_TRUE(IsAcyclic(ParseQuery(schema, "H(x,y) <- R(x,y)")));
}

TEST(Acyclic, PathQueriesAreAcyclic) {
  Schema schema;
  EXPECT_TRUE(IsAcyclic(
      ParseQuery(schema, "H(x,w) <- E1(x,y), E2(y,z), E3(z,w)")));
}

TEST(Acyclic, StarQueryIsAcyclic) {
  Schema schema;
  EXPECT_TRUE(IsAcyclic(
      ParseQuery(schema, "H(x) <- R(x,a), S(x,b), T(x,c)")));
}

TEST(Acyclic, TriangleIsCyclic) {
  Schema schema;
  EXPECT_FALSE(IsAcyclic(
      ParseQuery(schema, "H(x,y,z) <- R(x,y), S(y,z), T(z,x)")));
}

TEST(Acyclic, FourCycleIsCyclic) {
  Schema schema;
  EXPECT_FALSE(IsAcyclic(ParseQuery(
      schema, "H(x,y,z,w) <- R(x,y), S(y,z), T(z,w), U(w,x)")));
}

TEST(Acyclic, TriangleWithCoveringAtomIsAcyclic) {
  // Adding an atom covering all three variables makes the triangle
  // alpha-acyclic.
  Schema schema;
  EXPECT_TRUE(IsAcyclic(ParseQuery(
      schema, "H(x,y,z) <- R(x,y), S(y,z), T(z,x), W(x,y,z)")));
}

TEST(Acyclic, JoinTreeShape) {
  Schema schema;
  const ConjunctiveQuery q =
      ParseQuery(schema, "H(x,w) <- E1(x,y), E2(y,z), E3(z,w)");
  const JoinTree tree = BuildJoinTree(q);
  ASSERT_TRUE(tree.acyclic);
  ASSERT_EQ(tree.parent.size(), 3u);
  ASSERT_EQ(tree.removal_order.size(), 3u);
  // Exactly one root.
  int roots = 0;
  for (std::ptrdiff_t p : tree.parent) {
    if (p == JoinTree::kRoot) ++roots;
  }
  EXPECT_EQ(roots, 1);
  // Each non-root parent shares a variable with its child (join-tree
  // connectivity for a path is simply adjacency).
  for (std::size_t i = 0; i < tree.parent.size(); ++i) {
    if (tree.parent[i] == JoinTree::kRoot) continue;
    const auto& child = q.body()[i];
    const auto& parent = q.body()[static_cast<std::size_t>(tree.parent[i])];
    bool share = false;
    for (const Term& a : child.terms) {
      for (const Term& b : parent.terms) {
        if (a.IsVar() && b.IsVar() && a.var == b.var) share = true;
      }
    }
    EXPECT_TRUE(share) << "atom " << i << " disconnected from parent";
  }
  // The root is the last entry of the removal order.
  EXPECT_EQ(tree.parent[tree.removal_order.back()], JoinTree::kRoot);
}

TEST(Acyclic, CartesianProductIsAcyclic) {
  // Disconnected hypergraphs are alpha-acyclic (ears with empty shared
  // variable sets).
  Schema schema;
  EXPECT_TRUE(IsAcyclic(ParseQuery(schema, "H(x,y) <- R(x,x), S(y,y)")));
}

}  // namespace
}  // namespace lamp
