// The transport determinism contract (DESIGN.md §src/transport): the
// backend moves bytes, the scheduler/merge order decides delivery, so
// outputs, per-server loads and wire bytes must be byte-identical across
// inproc / tcp / uds — at every thread count and every server count. The
// wire-byte equality is the sharpest check: the in-process backend
// *computes* frame sizes in closed form while the socket backends
// *measure* them after real send/recv, so any drift between the encoder
// and the accounting shows up here immediately.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/hash.h"
#include "common/rng.h"
#include "cq/eval.h"
#include "cq/parser.h"
#include "mpc/hypercube_run.h"
#include "mpc/join_strategies.h"
#include "mpc/simulator.h"
#include "net/network.h"
#include "net/programs.h"
#include "par/thread_pool.h"
#include "relational/generators.h"
#include "transport/transport.h"

namespace lamp {
namespace {

constexpr transport::TransportKind kBackends[] = {
    transport::TransportKind::kInProcess,
    transport::TransportKind::kTcp,
    transport::TransportKind::kUds,
};

// FNV-1a accumulator (determinism_test.cc's): order-sensitive.
struct Fnv {
  std::uint64_t h = 1469598103934665603ull;
  void Mix(std::uint64_t x) {
    h ^= x;
    h *= 1099511628211ull;
  }
};

std::uint64_t InstanceFingerprint(const Instance& instance) {
  Fnv f;
  instance.ForEachFact([&](const Fact& fact) {
    f.Mix(HashMix(fact.relation));
    f.Mix(fact.args.size());
    for (Value v : fact.args) f.Mix(static_cast<std::uint64_t>(v.v));
  });
  return f.h;
}

std::uint64_t StatsFingerprint(const RunStats& stats) {
  Fnv f;
  f.Mix(stats.rounds.size());
  for (const RoundStats& r : stats.rounds) {
    f.Mix(r.received.size());
    for (std::size_t load : r.received) f.Mix(load);
    f.Mix(r.wire_bytes.size());
    for (std::size_t bytes : r.wire_bytes) f.Mix(bytes);
  }
  return f.h;
}

struct RunDigest {
  std::uint64_t output = 0;
  std::uint64_t stats = 0;
  std::size_t wire_bytes = 0;

  friend bool operator==(const RunDigest& a, const RunDigest& b) {
    return a.output == b.output && a.stats == b.stats &&
           a.wire_bytes == b.wire_bytes;
  }
};

std::ostream& operator<<(std::ostream& os, const RunDigest& d) {
  return os << "{output=" << d.output << " stats=" << d.stats
            << " wire=" << d.wire_bytes << "}";
}

class BackendRestorer {
 public:
  ~BackendRestorer() {
    transport::SetActiveKind(transport::TransportKind::kInProcess);
    par::SetDefaultThreads(1);
  }
};

// ------------------------------------------------------- MPC digests --

RunDigest TriangleDigest() {
  Schema schema;
  const ConjunctiveQuery q =
      ParseQuery(schema, "H(x,y,z) <- R0(x,y), R1(y,z), R2(z,x)");
  Rng rng(29);
  Instance db;
  for (const Atom& atom : q.body()) {
    AddUniformRelation(schema, atom.relation, /*m=*/600, /*domain_size=*/40,
                       rng, db);
  }
  const MpcRunResult run = RunHyperCubeUniform(q, db, /*num_servers=*/27);
  return {InstanceFingerprint(run.output), StatsFingerprint(run.stats),
          run.stats.TotalWireBytes()};
}

RunDigest RepartitionDigest(std::size_t p) {
  Schema schema;
  const ConjunctiveQuery q = ParseQuery(schema, "H(x,y,z) <- R(x,y), S(y,z)");
  Rng rng(31);
  Instance db;
  AddMatchingRelation(schema, schema.IdOf("R"), /*m=*/800, 0, rng, db);
  AddMatchingRelation(schema, schema.IdOf("S"), /*m=*/800, 800, rng, db);
  const MpcRunResult run = RepartitionJoin(q, db, p, /*seed=*/7);
  return {InstanceFingerprint(run.output), StatsFingerprint(run.stats),
          run.stats.TotalWireBytes()};
}

// Multi-round duplication-heavy reshuffle: each fact fans out to two
// hash-chosen servers, so receive-side dedup and self-routing (facts that
// stay local, which must never be framed) are both on the wire path.
RunDigest ReshuffleDigest(std::size_t p) {
  Schema schema;
  const RelationId r = schema.AddRelation("R", 2);
  Rng rng(37);
  Instance db;
  AddUniformRelation(schema, r, /*m=*/1000, /*domain_size=*/150, rng, db);

  MpcSimulator sim(p);
  sim.LoadInput(db);
  for (std::uint64_t round = 0; round < 3; ++round) {
    sim.RunRound(
        [round, p](NodeId, const Fact& fact) {
          const std::uint64_t h =
              HashMix(static_cast<std::uint64_t>(fact.args[0].v) * 31 +
                      round);
          return std::vector<NodeId>{static_cast<NodeId>(h % p),
                                     static_cast<NodeId>((h >> 20) % p)};
        },
        MpcSimulator::KeepAll());
  }
  Fnv locals;
  for (const Instance& local : sim.locals()) {
    locals.Mix(InstanceFingerprint(local));
  }
  return {locals.h, StatsFingerprint(sim.stats()),
          sim.stats().TotalWireBytes()};
}

// -------------------------------------------------- network digests --

RunDigest NetworkDigest(std::uint64_t seed) {
  Schema schema;
  const RelationId e = schema.AddRelation("E", 2);
  const ConjunctiveQuery triangle = ParseQuery(
      schema, "H(x,y,z) <- E(x,y), E(y,z), E(z,x), x != y, y != z, x != z");
  Rng rng(seed);
  Instance graph;
  AddRandomGraph(schema, e, /*edges=*/40, /*nodes=*/12, rng, graph);
  AddTriangleClusters(schema, e, 2, 100, graph);

  MonotoneBroadcastProgram program(
      [&triangle](const Instance& instance) {
        return Evaluate(triangle, instance);
      });
  TransducerNetwork net(DistributeRoundRobin(graph, 5), program);
  const NetworkRunResult result = net.Run(seed);
  RunDigest d;
  d.output = InstanceFingerprint(result.output);
  Fnv stats;
  stats.Mix(result.messages_sent());
  stats.Mix(result.facts_transferred());
  stats.Mix(result.transitions());
  d.stats = stats.h;
  d.wire_bytes = result.wire_bytes();
  return d;
}

// ------------------------------------------------------------ tests --

TEST(TransportDeterminismTest, MpcDigestsIdenticalAcrossBackends) {
  BackendRestorer restore;
  transport::SetActiveKind(transport::TransportKind::kInProcess);
  const RunDigest triangle = TriangleDigest();
  const RunDigest reshuffle = ReshuffleDigest(8);
  ASSERT_GT(triangle.wire_bytes, 0u);
  for (transport::TransportKind kind : kBackends) {
    transport::SetActiveKind(kind);
    EXPECT_EQ(TriangleDigest(), triangle)
        << "backend " << transport::TransportKindName(kind);
    EXPECT_EQ(ReshuffleDigest(8), reshuffle)
        << "backend " << transport::TransportKindName(kind);
  }
}

TEST(TransportDeterminismTest, MpcDigestsIdenticalAcrossBackendsAndThreads) {
  BackendRestorer restore;
  transport::SetActiveKind(transport::TransportKind::kInProcess);
  par::SetDefaultThreads(1);
  const RunDigest serial = TriangleDigest();
  for (transport::TransportKind kind : kBackends) {
    transport::SetActiveKind(kind);
    for (std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
      par::SetDefaultThreads(threads);
      EXPECT_EQ(TriangleDigest(), serial)
          << "backend " << transport::TransportKindName(kind) << " threads "
          << threads;
    }
  }
}

TEST(TransportDeterminismTest, MpcDigestsIdenticalAcrossServerCounts) {
  BackendRestorer restore;
  for (std::size_t p : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    transport::SetActiveKind(transport::TransportKind::kInProcess);
    const RunDigest repartition = RepartitionDigest(p);
    const RunDigest reshuffle = ReshuffleDigest(p);
    for (transport::TransportKind kind : kBackends) {
      transport::SetActiveKind(kind);
      EXPECT_EQ(RepartitionDigest(p), repartition)
          << "backend " << transport::TransportKindName(kind) << " p=" << p;
      EXPECT_EQ(ReshuffleDigest(p), reshuffle)
          << "backend " << transport::TransportKindName(kind) << " p=" << p;
    }
  }
}

TEST(TransportDeterminismTest, NetworkDigestsIdenticalAcrossBackends) {
  BackendRestorer restore;
  for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
    transport::SetActiveKind(transport::TransportKind::kInProcess);
    const RunDigest reference = NetworkDigest(seed);
    ASSERT_GT(reference.wire_bytes, 0u) << "seed " << seed;
    for (transport::TransportKind kind : kBackends) {
      transport::SetActiveKind(kind);
      EXPECT_EQ(NetworkDigest(seed), reference)
          << "backend " << transport::TransportKindName(kind) << " seed "
          << seed;
    }
  }
}

}  // namespace
}  // namespace lamp
