// Unit and property tests for the theory-aware audit layer
// (obs/audit/*): the Space-Saving sketch guarantees against exact counts
// over seeded Zipf streams, the statistics catalog, the per-strategy load
// bounds, the lamp.audit.v1 record logic, and the causal-profile
// extraction from synthetic trace events.

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/rng.h"
#include "cq/parser.h"
#include "distribution/hypercube.h"
#include "obs/audit/audit.h"
#include "obs/audit/bounds.h"
#include "obs/audit/catalog.h"
#include "obs/audit/causal.h"
#include "obs/audit/sketch.h"
#include "obs/json.h"
#include "obs/trace.h"
#include "relational/generators.h"
#include "transport/wire.h"

namespace lamp::obs::audit {
namespace {

// --- Space-Saving sketch ------------------------------------------------

// The classic Metwally-Agrawal-El Abbadi guarantees, checked against
// exact counts over seeded Zipf streams of several skews and capacities:
//   (1) count(v) - error(v) <= true_freq(v) <= count(v) for tracked v;
//   (2) error(v) <= N/k;
//   (3) every value with true frequency > N/k is tracked.
TEST(SpaceSavingSketchTest, GuaranteesHoldOnZipfStreams) {
  for (const double s : {0.0, 0.8, 1.2, 2.0}) {
    for (const std::size_t capacity : {4u, 16u, 64u}) {
      Rng rng(42 + static_cast<std::uint64_t>(s * 10) + capacity);
      const ZipfSampler zipf(/*n=*/500, s);
      SpaceSavingSketch sketch(capacity);
      std::map<std::int64_t, std::uint64_t> exact;
      const std::size_t n = 20000;
      for (std::size_t i = 0; i < n; ++i) {
        const auto v = static_cast<std::int64_t>(zipf.Sample(rng));
        sketch.Observe(v);
        ++exact[v];
      }
      ASSERT_EQ(sketch.StreamLength(), n);
      const double threshold =
          static_cast<double>(n) / static_cast<double>(capacity);

      const std::vector<SketchEntry> entries = sketch.Entries();
      ASSERT_LE(entries.size(), capacity);
      std::map<std::int64_t, SketchEntry> tracked;
      for (const SketchEntry& e : entries) tracked[e.value] = e;

      for (const SketchEntry& e : entries) {
        const std::uint64_t truth =
            exact.count(e.value) ? exact.at(e.value) : 0;
        EXPECT_LE(truth, e.count)
            << "s=" << s << " k=" << capacity << " v=" << e.value;
        EXPECT_GE(e.count, e.error);
        EXPECT_LE(e.count - e.error, truth)
            << "s=" << s << " k=" << capacity << " v=" << e.value;
        EXPECT_LE(static_cast<double>(e.error), threshold);
      }
      for (const auto& [value, freq] : exact) {
        if (static_cast<double>(freq) > threshold) {
          EXPECT_TRUE(tracked.count(value))
              << "heavy value " << value << " (freq " << freq
              << " > N/k " << threshold << ") not tracked at s=" << s
              << " k=" << capacity;
        }
      }
    }
  }
}

TEST(SpaceSavingSketchTest, ExactWhenStreamFitsInCapacity) {
  SpaceSavingSketch sketch(16);
  for (int round = 0; round < 7; ++round) {
    for (std::int64_t v = 0; v <= round; ++v) sketch.Observe(v);
  }
  // Value v was observed (7 - v) times; 7 distinct values < capacity, so
  // the sketch is exact with zero error.
  const std::vector<SketchEntry> entries = sketch.Entries();
  ASSERT_EQ(entries.size(), 7u);
  EXPECT_EQ(entries.front().value, 0);
  EXPECT_EQ(entries.front().count, 7u);
  for (const SketchEntry& e : entries) {
    EXPECT_EQ(e.error, 0u);
    EXPECT_EQ(e.count, static_cast<std::uint64_t>(7 - e.value));
  }
  EXPECT_EQ(sketch.MaxFrequencyLowerBound(), 7u);
  EXPECT_EQ(sketch.TopK(2).size(), 2u);
}

TEST(SpaceSavingSketchTest, EntriesOrderIsDeterministic) {
  // Equal counts tie-break towards the smaller value, making sketches of
  // identical streams byte-identical across platforms.
  SpaceSavingSketch sketch(8);
  for (std::int64_t v : {5, 3, 9, 3, 5, 9}) sketch.Observe(v);
  const std::vector<SketchEntry> entries = sketch.Entries();
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0].value, 3);
  EXPECT_EQ(entries[1].value, 5);
  EXPECT_EQ(entries[2].value, 9);
}

TEST(ZipfEstimateTest, SeparatesSkewedFromUniform) {
  Rng rng(7);
  const ZipfSampler skewed(200, 1.5);
  const ZipfSampler flat(200, 0.0);
  SpaceSavingSketch sk_skew(64), sk_flat(64);
  for (std::size_t i = 0; i < 20000; ++i) {
    sk_skew.Observe(static_cast<std::int64_t>(skewed.Sample(rng)));
    sk_flat.Observe(static_cast<std::int64_t>(flat.Sample(rng)));
  }
  const double s_skew = EstimateZipfExponent(sk_skew.Entries());
  const double s_flat = EstimateZipfExponent(sk_flat.Entries());
  EXPECT_GT(s_skew, 0.8);
  EXPECT_LT(s_flat, 0.4);
  EXPECT_GT(s_skew, s_flat + 0.5);
}

TEST(ZipfEstimateTest, DegenerateProfilesEstimateZero) {
  EXPECT_EQ(EstimateZipfExponent({}), 0.0);
  EXPECT_EQ(EstimateZipfExponent({{1, 10, 0}, {2, 10, 0}}), 0.0);
}

// --- catalog ------------------------------------------------------------

TEST(CatalogTest, CollectsPerRelationAndPerColumnStats) {
  Schema schema;
  const RelationId r = schema.AddRelation("R", 2);
  schema.AddRelation("Empty", 3);
  Instance db;
  // Column 0: heavy value 0 (6 of 10 tuples); column 1: all distinct.
  for (std::int64_t i = 0; i < 6; ++i) db.Insert(Fact(r, {0, i}));
  for (std::int64_t i = 6; i < 10; ++i) db.Insert(Fact(r, {i, i}));

  const Catalog catalog = BuildCatalog(schema, db);
  ASSERT_EQ(catalog.relations.size(), 2u);
  EXPECT_EQ(catalog.TotalFacts(), 10u);
  EXPECT_EQ(catalog.CardinalityOf("R"), 10u);
  EXPECT_EQ(catalog.CardinalityOf("Empty"), 0u);
  EXPECT_EQ(catalog.CardinalityOf("NoSuchRelation"), 0u);

  const RelationStats* stats = catalog.Find("R");
  ASSERT_NE(stats, nullptr);
  ASSERT_EQ(stats->columns.size(), 2u);
  EXPECT_EQ(stats->columns[0].distinct, 5u);
  EXPECT_EQ(stats->columns[1].distinct, 10u);
  // 10 tuples fit in the default sketch capacity: counts are exact.
  EXPECT_EQ(stats->columns[0].MaxFrequencyLower(), 6u);
  EXPECT_EQ(stats->columns[0].MaxFrequencyUpper(), 6u);
  EXPECT_TRUE(stats->HasHeavyHitter(0.5));
  EXPECT_FALSE(stats->HasHeavyHitter(0.7));

  const RelationStats* empty = catalog.Find("Empty");
  ASSERT_NE(empty, nullptr);
  EXPECT_EQ(empty->cardinality, 0u);
  ASSERT_EQ(empty->columns.size(), 3u);
  EXPECT_EQ(empty->columns[0].MaxFrequencyLower(), 0u);
  EXPECT_FALSE(empty->HasHeavyHitter(0.01));
}

TEST(CatalogTest, SketchDegenerateColumns) {
  // The three degenerate column shapes the planner's estimator leans on:
  // an empty relation, an all-distinct column (pure sketch noise — every
  // counter holds count ~ error ~ N/capacity) and a single-value column
  // (one exact counter). Wire-size stats must track the same shapes.
  Schema schema;
  schema.AddRelation("Empty", 2);
  const RelationId d = schema.AddRelation("AllDistinct", 1);
  const RelationId s = schema.AddRelation("SingleValue", 1);
  Instance db;
  constexpr std::int64_t kN = 500;  // Overflows the 64-counter sketch.
  for (std::int64_t i = 0; i < kN; ++i) db.Insert(Fact(d, {i + 1}));
  for (std::int64_t i = 0; i < kN; ++i) {
    db.Insert(Fact(s, {42}));  // Set semantics: dedups to one fact.
  }
  const Catalog catalog = BuildCatalog(schema, db);

  const RelationStats* empty = catalog.Find("Empty");
  ASSERT_NE(empty, nullptr);
  EXPECT_EQ(empty->cardinality, 0u);
  for (const ColumnStats& col : empty->columns) {
    EXPECT_EQ(col.distinct, 0u);
    EXPECT_TRUE(col.heavy.empty());
    EXPECT_EQ(col.avg_bytes, 0.0);
  }

  const RelationStats* distinct = catalog.Find("AllDistinct");
  ASSERT_NE(distinct, nullptr);
  EXPECT_EQ(distinct->cardinality, static_cast<std::uint64_t>(kN));
  ASSERT_EQ(distinct->columns.size(), 1u);
  EXPECT_EQ(distinct->columns[0].distinct, static_cast<std::size_t>(kN));
  // Every true frequency is 1: the sketch's guaranteed lower bound can
  // never certify more, and no heavy-hitter call may fire.
  EXPECT_LE(distinct->columns[0].MaxFrequencyLower(), 1u);
  EXPECT_FALSE(distinct->HasHeavyHitter(0.05));
  EXPECT_GT(distinct->columns[0].avg_bytes, 0.0);

  const RelationStats* single = catalog.Find("SingleValue");
  ASSERT_NE(single, nullptr);
  EXPECT_EQ(single->cardinality, 1u) << "set semantics dedup";
  ASSERT_EQ(single->columns.size(), 1u);
  EXPECT_EQ(single->columns[0].distinct, 1u);
  // One exact counter: upper and lower bounds coincide.
  EXPECT_EQ(single->columns[0].MaxFrequencyLower(), 1u);
  EXPECT_EQ(single->columns[0].MaxFrequencyUpper(), 1u);
  // avg_bytes is the exact zigzag-varint size of the single value 42.
  EXPECT_DOUBLE_EQ(single->columns[0].avg_bytes,
                   static_cast<double>(transport::ZigzagSize(42)));
}

TEST(CatalogTest, JsonRoundTrip) {
  Schema schema;
  const RelationId r = schema.AddRelation("R", 1);
  Instance db;
  for (std::int64_t i = 0; i < 20; ++i) db.Insert(Fact(r, {i % 4}));

  const Catalog catalog = BuildCatalog(schema, db);
  const JsonValue doc = catalog.ToJson();
  const std::optional<JsonValue> reparsed = JsonValue::Parse(doc.Dump());
  ASSERT_TRUE(reparsed.has_value());
  const std::optional<Catalog> back = Catalog::FromJson(*reparsed);
  ASSERT_TRUE(back.has_value());
  ASSERT_EQ(back->relations.size(), catalog.relations.size());
  const RelationStats& a = catalog.relations[0];
  const RelationStats& b = back->relations[0];
  EXPECT_EQ(a.name, b.name);
  EXPECT_EQ(a.arity, b.arity);
  EXPECT_EQ(a.cardinality, b.cardinality);
  ASSERT_EQ(a.columns.size(), b.columns.size());
  EXPECT_EQ(a.columns[0].distinct, b.columns[0].distinct);
  EXPECT_DOUBLE_EQ(a.columns[0].zipf_s, b.columns[0].zipf_s);
  ASSERT_EQ(a.columns[0].heavy.size(), b.columns[0].heavy.size());
  EXPECT_EQ(a.columns[0].heavy[0].value, b.columns[0].heavy[0].value);
  EXPECT_EQ(a.columns[0].heavy[0].count, b.columns[0].heavy[0].count);

  EXPECT_FALSE(Catalog::FromJson(JsonValue::Object()).has_value());
}

// --- bounds -------------------------------------------------------------

TEST(BoundsTest, RepartitionAndSqrtPBounds) {
  Schema schema;
  const ConjunctiveQuery q =
      ParseQuery(schema, "H(x,y,z) <- R(x,y), S(y,z)");
  Instance db;
  Rng rng(3);
  AddMatchingRelation(schema, schema.IdOf("R"), 600, 0, rng, db);
  AddMatchingRelation(schema, schema.IdOf("S"), 400, 0, rng, db);
  const Catalog catalog = BuildCatalog(schema, db);

  const LoadBound repart = RepartitionBound(q, schema, catalog, 10);
  ASSERT_TRUE(repart.has_bound);
  EXPECT_DOUBLE_EQ(repart.tuples, 100.0);  // (600 + 400) / 10

  const LoadBound sqrtp = SqrtPBound(q, schema, catalog, 10);
  ASSERT_TRUE(sqrtp.has_bound);
  EXPECT_DOUBLE_EQ(sqrtp.tuples, 1000.0 / 3.0);  // floor(sqrt(10)) = 3

  EXPECT_FALSE(NoBound().has_bound);
}

TEST(BoundsTest, HyperCubeBoundIsTheExactExpectedLoad) {
  Schema schema;
  const ConjunctiveQuery triangle =
      ParseQuery(schema, "H(x,y,z) <- R(x,y), S(y,z), T(z,x)");
  Instance db;
  Rng rng(4);
  for (const char* name : {"R", "S", "T"}) {
    AddMatchingRelation(schema, schema.IdOf(name), 1000, 0, rng, db);
  }
  const Catalog catalog = BuildCatalog(schema, db);
  const Shares shares = {4, 4, 4};  // p = 64.
  const LoadBound bound = HyperCubeBound(triangle, schema, catalog, shares);
  ASSERT_TRUE(bound.has_bound);
  // Each atom spans two dimensions of share 4: E[load] = 3 * 1000 / 16.
  EXPECT_DOUBLE_EQ(bound.tuples, 187.5);

  // The dispatcher agrees with the direct call.
  const LoadBound dispatched = BoundFor(Strategy::kHyperCube, triangle,
                                        schema, catalog, 64, &shares);
  EXPECT_DOUBLE_EQ(dispatched.tuples, bound.tuples);
}

TEST(BoundsTest, StrategyNamesRoundTrip) {
  for (const Strategy s :
       {Strategy::kHyperCube, Strategy::kRepartition,
        Strategy::kFragmentReplicate, Strategy::kSharesSkew,
        Strategy::kSkewResilient, Strategy::kNone}) {
    EXPECT_EQ(StrategyFromName(StrategyName(s)), s);
  }
  EXPECT_EQ(StrategyFromName("no-such-strategy"), Strategy::kNone);
}

// --- audit records ------------------------------------------------------

RunStats TwoRoundStats() {
  RunStats stats;
  stats.rounds.push_back(RoundStats{{10, 20, 30}, {}});
  stats.rounds.push_back(RoundStats{{50, 5, 5}, {}});
  return stats;
}

TEST(AuditRecordTest, MakeFillsMeasuredSideAndWorstRound) {
  LoadBound bound{true, 40.0, "m/p"};
  const AuditRecord record =
      MakeAuditRecord("bench", "label", Strategy::kRepartition, 3, bound,
                      TwoRoundStats(), /*slack=*/2.0);
  EXPECT_EQ(record.measured_max_load, 50u);
  EXPECT_EQ(record.rounds, 2u);
  EXPECT_EQ(record.total_communication, 120u);
  EXPECT_EQ(record.worst_round, 1u);
  EXPECT_EQ(record.per_server, (std::vector<std::size_t>{50, 5, 5}));
  // 50 <= 40 * 2.0: within slack.
  EXPECT_TRUE(record.Pass());
  EXPECT_DOUBLE_EQ(record.Headroom(), 80.0 / 50.0);
  EXPECT_FALSE(record.HardViolation());
}

TEST(AuditRecordTest, ViolationAndExpectedViolationSemantics) {
  LoadBound bound{true, 10.0, "m/p"};
  AuditRecord record = MakeAuditRecord("bench", "label",
                                       Strategy::kRepartition, 3, bound,
                                       TwoRoundStats(), /*slack=*/3.0);
  EXPECT_FALSE(record.Pass());  // 50 > 30.
  EXPECT_TRUE(record.HardViolation());
  record.expected_violation = true;
  EXPECT_FALSE(record.HardViolation());

  // No bound: always passes, headroom 0 by convention.
  const AuditRecord unbounded = MakeAuditRecord(
      "bench", "label", Strategy::kNone, 3, NoBound(), TwoRoundStats());
  EXPECT_TRUE(unbounded.Pass());
  EXPECT_DOUBLE_EQ(unbounded.Headroom(), 0.0);
}

TEST(AuditRecordTest, JsonRoundTrip) {
  LoadBound bound{true, 40.0, "m/p = 40"};
  AuditRecord record =
      MakeAuditRecord("bench_x", "cfg/skewed", Strategy::kFragmentReplicate,
                      9, bound, TwoRoundStats(), /*slack=*/2.5);
  record.params.Set("m", 120);
  record.expected_violation = true;

  const std::optional<JsonValue> doc =
      JsonValue::Parse(record.ToJson().Dump());
  ASSERT_TRUE(doc.has_value());
  const std::optional<AuditRecord> back = AuditRecord::FromJson(*doc);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->bench, "bench_x");
  EXPECT_EQ(back->label, "cfg/skewed");
  EXPECT_EQ(back->strategy, Strategy::kFragmentReplicate);
  EXPECT_EQ(back->p, 9u);
  ASSERT_TRUE(back->bound.has_bound);
  EXPECT_DOUBLE_EQ(back->bound.tuples, 40.0);
  EXPECT_EQ(back->bound.formula, "m/p = 40");
  EXPECT_DOUBLE_EQ(back->slack, 2.5);
  EXPECT_EQ(back->measured_max_load, 50u);
  EXPECT_EQ(back->worst_round, 1u);
  EXPECT_EQ(back->per_server, record.per_server);
  EXPECT_TRUE(back->expected_violation);
  EXPECT_EQ(back->Pass(), record.Pass());

  EXPECT_FALSE(AuditRecord::FromJson(JsonValue::Object()).has_value());
}

TEST(AuditSinkTest, CountsAndRendersJsonLines) {
  AuditSink sink;
  LoadBound tight{true, 10.0, "m/p"};
  AuditRecord hard = MakeAuditRecord("b", "hard", Strategy::kRepartition, 3,
                                     tight, TwoRoundStats());
  AuditRecord soft = MakeAuditRecord("b", "soft", Strategy::kRepartition, 3,
                                     tight, TwoRoundStats());
  soft.expected_violation = true;
  AuditRecord ok = MakeAuditRecord("b", "ok", Strategy::kNone, 3, NoBound(),
                                   TwoRoundStats());
  sink.Add(std::move(hard));
  sink.Add(std::move(soft));
  sink.Add(std::move(ok));
  EXPECT_EQ(sink.NumRecords(), 3u);
  EXPECT_EQ(sink.ExpectedViolations(), 1u);
  EXPECT_EQ(sink.HardViolations(), 1u);

  // One JSON object per line, each a parseable lamp.audit.v1 record.
  const std::string lines = sink.RenderJsonLines();
  std::size_t parsed = 0;
  std::size_t pos = 0;
  while (pos < lines.size()) {
    const std::size_t eol = lines.find('\n', pos);
    const std::string line = lines.substr(pos, eol - pos);
    pos = eol == std::string::npos ? lines.size() : eol + 1;
    if (line.empty()) continue;
    const std::optional<JsonValue> doc = JsonValue::Parse(line);
    ASSERT_TRUE(doc.has_value());
    EXPECT_TRUE(AuditRecord::FromJson(*doc).has_value());
    ++parsed;
  }
  EXPECT_EQ(parsed, 3u);
}

// --- causal profiles from synthetic traces ------------------------------

std::uint64_t PackCausal(std::uint64_t depth, std::uint32_t parent_plus_1) {
  return (depth << 32) | parent_plus_1;
}

TraceEvent Ev(EventKind kind, std::uint32_t a, std::uint32_t b,
              std::uint64_t value) {
  TraceEvent e;
  e.kind = kind;
  e.a = a;
  e.b = b;
  e.value = value;
  return e;
}

TEST(CausalReportTest, ExtractsDepthOutputsAndCriticalPath) {
  // A 3-deep chain: transition 0 delivers a heartbeat message (depth 1,
  // no parent) to node 1; transition 1 delivers node 1's reaction (depth
  // 2, parent transition 0) to node 2; transition 2 delivers depth 3.
  // Node 2 outputs while processing transition 2; node 0 had already
  // produced a heartbeat output (depth 0).
  std::vector<TraceEvent> events;
  events.push_back(Ev(EventKind::kNetOutput, 0, 0, 0));
  events.push_back(Ev(EventKind::kNetCausalDeliver, 1, 0, PackCausal(1, 0)));
  events.push_back(Ev(EventKind::kNetCausalDeliver, 2, 1, PackCausal(2, 0 + 1)));
  events.push_back(Ev(EventKind::kNetCausalDeliver, 0, 2, PackCausal(3, 1 + 1)));
  events.push_back(Ev(EventKind::kNetOutput, 0, 2 + 1, 3));

  const CausalReport report = BuildCausalReport(events);
  EXPECT_EQ(report.deliveries, 3u);
  EXPECT_EQ(report.max_depth, 3u);
  EXPECT_TRUE(report.has_output);
  EXPECT_EQ(report.outputs, 2u);
  // First output in event order came from a heartbeat: depth 0.
  EXPECT_EQ(report.coordination_depth, 0u);
  EXPECT_TRUE(report.CoordinationFree());

  ASSERT_EQ(report.critical_path.size(), 3u);
  EXPECT_EQ(report.critical_path[0].depth, 1u);
  EXPECT_EQ(report.critical_path[0].node, 1u);
  EXPECT_EQ(report.critical_path[1].depth, 2u);
  EXPECT_EQ(report.critical_path[2].depth, 3u);
  EXPECT_EQ(report.critical_path[2].node, 0u);
}

TEST(CausalReportTest, FirstOutputAfterDeliveryIsCoordinated) {
  std::vector<TraceEvent> events;
  events.push_back(Ev(EventKind::kNetCausalDeliver, 1, 0, PackCausal(1, 0)));
  events.push_back(Ev(EventKind::kNetOutput, 1, 0 + 1, 1));
  const CausalReport report = BuildCausalReport(events);
  EXPECT_EQ(report.coordination_depth, 1u);
  EXPECT_FALSE(report.CoordinationFree());
}

TEST(CausalReportTest, EmptyTraceIsTriviallyCoordinationFree) {
  const CausalReport report = BuildCausalReport(std::vector<TraceEvent>{});
  EXPECT_EQ(report.deliveries, 0u);
  EXPECT_FALSE(report.has_output);
  EXPECT_TRUE(report.CoordinationFree());
  EXPECT_TRUE(report.critical_path.empty());
}

TEST(CausalReportTest, JsonRoundTrip) {
  std::vector<TraceEvent> events;
  events.push_back(Ev(EventKind::kNetCausalDeliver, 1, 0, PackCausal(1, 0)));
  events.push_back(Ev(EventKind::kNetCausalDeliver, 2, 1, PackCausal(2, 1)));
  events.push_back(Ev(EventKind::kNetOutput, 2, 1 + 1, 2));
  const CausalReport report = BuildCausalReport(events);

  const std::optional<JsonValue> doc =
      JsonValue::Parse(report.ToJson().Dump());
  ASSERT_TRUE(doc.has_value());
  const std::optional<CausalReport> back = CausalReport::FromJson(*doc);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->deliveries, report.deliveries);
  EXPECT_EQ(back->max_depth, report.max_depth);
  EXPECT_EQ(back->has_output, report.has_output);
  EXPECT_EQ(back->coordination_depth, report.coordination_depth);
  EXPECT_EQ(back->outputs, report.outputs);
  ASSERT_EQ(back->critical_path.size(), report.critical_path.size());
  for (std::size_t i = 0; i < report.critical_path.size(); ++i) {
    EXPECT_EQ(back->critical_path[i].transition,
              report.critical_path[i].transition);
    EXPECT_EQ(back->critical_path[i].node, report.critical_path[i].node);
    EXPECT_EQ(back->critical_path[i].depth, report.critical_path[i].depth);
  }

  EXPECT_FALSE(CausalReport::FromJson(JsonValue::Object()).has_value());
}

}  // namespace
}  // namespace lamp::obs::audit
