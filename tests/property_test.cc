// Parameterized property sweeps across the whole stack: every MPC
// strategy must agree with centralized evaluation on every query shape;
// HyperCube policies must be parallel-correct for any share vector and
// hash seed; LP solutions must be feasible optima.

#include <string>
#include <tuple>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "cq/eval.h"
#include "cq/parser.h"
#include "distribution/hypercube.h"
#include "distribution/parallel_correctness.h"
#include "distribution/policies.h"
#include "lp/edge_packing.h"
#include "lp/simplex.h"
#include "mpc/cascade.h"
#include "mpc/gym.h"
#include "mpc/hypercube_run.h"
#include "mpc/yannakakis.h"
#include "net/network.h"
#include "net/programs.h"
#include "relational/generators.h"

namespace lamp {
namespace {

// ---------------------------------------------------------------------------
// Sweep 1: MPC strategies vs centralized evaluation, across query shapes.
// ---------------------------------------------------------------------------

struct QueryCase {
  const char* name;
  const char* text;
  bool acyclic;
  bool self_join_free;
};

class MpcEquivalence : public ::testing::TestWithParam<QueryCase> {
 protected:
  Instance RandomInput(Schema& schema, const ConjunctiveQuery& q,
                       std::uint64_t seed) {
    Rng rng(seed);
    Instance db;
    std::set<RelationId> done;
    for (const Atom& atom : q.body()) {
      if (!done.insert(atom.relation).second) continue;
      AddUniformRelation(schema, atom.relation, 150, 25, rng, db);
    }
    return db;
  }
};

TEST_P(MpcEquivalence, HyperCubeMatchesCentralized) {
  Schema schema;
  const ConjunctiveQuery q = ParseQuery(schema, GetParam().text);
  const Instance db = RandomInput(schema, q, 1);
  const Instance expected = Evaluate(q, db);
  for (std::size_t p : {1u, 8u, 27u}) {
    EXPECT_EQ(RunHyperCubeUniform(q, db, p, 3).output, expected)
        << GetParam().name << " p=" << p;
    EXPECT_EQ(RunHyperCubeLpShares(q, db, p, 3).output, expected)
        << GetParam().name << " lp p=" << p;
  }
}

TEST_P(MpcEquivalence, CascadeMatchesCentralized) {
  Schema schema;
  const ConjunctiveQuery q = ParseQuery(schema, GetParam().text);
  const Instance db = RandomInput(schema, q, 2);
  EXPECT_EQ(CascadeJoin(schema, q, db, 6, 5).output, Evaluate(q, db))
      << GetParam().name;
}

TEST_P(MpcEquivalence, GymMatchesCentralized) {
  Schema schema;
  const ConjunctiveQuery q = ParseQuery(schema, GetParam().text);
  if (q.HasSelfJoin()) GTEST_SKIP() << "GYM phase 2 assumes no self-joins";
  const Instance db = RandomInput(schema, q, 3);
  EXPECT_EQ(GymEvaluate(schema, q, db, 6, 7).output, Evaluate(q, db))
      << GetParam().name;
}

TEST_P(MpcEquivalence, YannakakisMatchesCentralizedWhenAcyclic) {
  if (!GetParam().acyclic || !GetParam().self_join_free) {
    GTEST_SKIP() << "Yannakakis needs an acyclic self-join-free query";
  }
  Schema schema;
  const ConjunctiveQuery q = ParseQuery(schema, GetParam().text);
  const Instance db = RandomInput(schema, q, 4);
  EXPECT_EQ(YannakakisMpc(schema, q, db, 6, 9).output, Evaluate(q, db))
      << GetParam().name;
}

INSTANTIATE_TEST_SUITE_P(
    QueryShapes, MpcEquivalence,
    ::testing::Values(
        QueryCase{"join", "H(x,y,z) <- R(x,y), S(y,z)", true, true},
        QueryCase{"triangle", "H(x,y,z) <- R(x,y), S(y,z), T(z,x)", false,
                  true},
        QueryCase{"path3", "H(x,y,z,w) <- R(x,y), S(y,z), T(z,w)", true,
                  true},
        QueryCase{"star", "H(x,a,b) <- R(x,a), S(x,b)", true, true},
        QueryCase{"selfjoin_path", "H(x,z) <- R(x,y), R(y,z)", true, false},
        QueryCase{"cycle4",
                  "H(x,y,z,w) <- R(x,y), S(y,z), T(z,w), U(w,x)", false,
                  true},
        QueryCase{"tri_ineq",
                  "H(x,y,z) <- R(x,y), S(y,z), T(z,x), x != y", false, true}),
    [](const ::testing::TestParamInfo<QueryCase>& info) {
      return info.param.name;
    });

// ---------------------------------------------------------------------------
// Sweep 2: HyperCube policies saturate their query for any share vector
// and hash seed (Section 4.1's "every Hypercube distribution strongly
// saturates Q").
// ---------------------------------------------------------------------------

class HypercubeSaturation
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(HypercubeSaturation, StronglySaturatesTriangle) {
  const int share_case = std::get<0>(GetParam());
  const int seed = std::get<1>(GetParam());
  Schema schema;
  const ConjunctiveQuery triangle =
      ParseQuery(schema, "H(x,y,z) <- R(x,y), S(y,z), T(z,x)");
  static constexpr std::size_t kShareTable[][3] = {
      {1, 1, 1}, {2, 2, 2}, {1, 4, 2}, {3, 1, 1}};
  const auto& row = kShareTable[share_case];
  const HypercubePolicy policy(triangle, {row[0], row[1], row[2]},
                               MakeUniverse(3),
                               static_cast<std::uint64_t>(seed));
  EXPECT_TRUE(StronglySaturates(policy, triangle));
  EXPECT_TRUE(IsParallelCorrect(triangle, policy));
}

INSTANTIATE_TEST_SUITE_P(SharesAndSeeds, HypercubeSaturation,
                         ::testing::Combine(::testing::Range(0, 4),
                                            ::testing::Values(0, 7, 99)));

// ---------------------------------------------------------------------------
// Sweep 3: simplex solutions are feasible optima on random LPs.
// ---------------------------------------------------------------------------

class SimplexProperty : public ::testing::TestWithParam<int> {};

TEST_P(SimplexProperty, OptimumIsFeasibleAndUndominated) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  LinearProgram lp;
  lp.num_vars = 3;
  lp.objective = {rng.UniformDouble(), rng.UniformDouble(),
                  rng.UniformDouble()};
  // Random <= constraints with positive coefficients: always feasible
  // (origin) and bounded (every variable has positive weight somewhere).
  for (int c = 0; c < 4; ++c) {
    LinearProgram::Constraint row;
    row.coeffs = {0.1 + rng.UniformDouble(), 0.1 + rng.UniformDouble(),
                  0.1 + rng.UniformDouble()};
    row.type = ConstraintType::kLe;
    row.rhs = 1.0 + 4.0 * rng.UniformDouble();
    lp.constraints.push_back(std::move(row));
  }
  const LpSolution sol = SolveLp(lp);
  ASSERT_EQ(sol.status, LpSolution::Status::kOptimal);

  auto feasible = [&lp](const std::vector<double>& x) {
    for (const auto& row : lp.constraints) {
      double lhs = 0.0;
      for (std::size_t i = 0; i < x.size(); ++i) lhs += row.coeffs[i] * x[i];
      if (lhs > row.rhs + 1e-7) return false;
    }
    for (double v : x) {
      if (v < -1e-9) return false;
    }
    return true;
  };
  EXPECT_TRUE(feasible(sol.x));

  // No random feasible point beats the reported optimum.
  for (int t = 0; t < 200; ++t) {
    std::vector<double> x = {5 * rng.UniformDouble(), 5 * rng.UniformDouble(),
                             5 * rng.UniformDouble()};
    if (!feasible(x)) continue;
    double value = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
      value += lp.objective[i] * x[i];
    }
    EXPECT_LE(value, sol.objective_value + 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimplexProperty, ::testing::Range(0, 12));

// ---------------------------------------------------------------------------
// Sweep 4: LP duality tau* vs share exponents across generated star
// queries of increasing width.
// ---------------------------------------------------------------------------

class StarDuality : public ::testing::TestWithParam<int> {};

TEST_P(StarDuality, LoadExponentIsInverseTau) {
  const int arms = GetParam();
  Schema schema;
  std::string text = "H(x";
  for (int i = 0; i < arms; ++i) {
    text += ",a";
    text += std::to_string(i);
  }
  text += ") <- ";
  for (int i = 0; i < arms; ++i) {
    if (i > 0) text += ", ";
    text += "R";
    text += std::to_string(i);
    text += "(x,a";
    text += std::to_string(i);
    text += ")";
  }
  const ConjunctiveQuery q = ParseQuery(schema, text);
  const double tau = FractionalEdgePackingValue(q);
  EXPECT_NEAR(tau, 1.0, 1e-9);  // All arms share the hub variable.
  EXPECT_NEAR(OptimalShareExponents(q).load_exponent, 1.0 / tau, 1e-7);
}

INSTANTIATE_TEST_SUITE_P(Widths, StarDuality, ::testing::Range(1, 6));


// ---------------------------------------------------------------------------
// Sweep 5: scheduler robustness — the monotone broadcast strategy is
// consistent for every (node count, seed) combination (the operational
// content of "every run computes Q").
// ---------------------------------------------------------------------------

class SchedulerSweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(SchedulerSweep, MonotoneBroadcastConsistentOnEverySchedule) {
  const auto nodes = static_cast<std::size_t>(std::get<0>(GetParam()));
  const auto seed = static_cast<std::uint64_t>(std::get<1>(GetParam()));
  Schema schema;
  const ConjunctiveQuery wedge =
      ParseQuery(schema, "H(x,z) <- E(x,y), E(y,z)");
  Rng rng(99);
  Instance graph;
  AddRandomGraph(schema, schema.IdOf("E"), 30, 10, rng, graph);
  const Instance expected = Evaluate(wedge, graph);

  NetQueryFunction q = [&wedge](const Instance& i) {
    return Evaluate(wedge, i);
  };
  MonotoneBroadcastProgram program(q);
  TransducerNetwork network(DistributeRoundRobin(graph, nodes), program,
                            nullptr, /*aware=*/false);
  EXPECT_EQ(network.Run(seed).output, expected);
}

INSTANTIATE_TEST_SUITE_P(NodesAndSeeds, SchedulerSweep,
                         ::testing::Combine(::testing::Values(1, 2, 3, 6),
                                            ::testing::Range(0, 6)));

}  // namespace
}  // namespace lamp
