// Cross-validation of the causal coordination profile (obs/audit/causal.h)
// against the static fragment analyzer (lamp::sa) — the CALM theorem's
// operational signature made executable:
//
//  * a query whose Datalog form the analyzer *certifies* monotone (class
//    M, negation-free fragment), evaluated by the monotone broadcast
//    strategy on a replicated (ideal) distribution, must show a
//    coordination-free causal profile: the first output fact appears at
//    causal depth 0, during a heartbeat, before any message is read;
//  * the coordinated barrier strategy — which the analyzer's world calls
//    non-monotone territory (it counts peers before daring to output) —
//    must show strictly positive coordination depth on the *same* ideal
//    distribution, on every seed.
//
// The gap between those two profiles is Section 5.1's
// coordination-freeness, measured rather than assumed.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "cq/eval.h"
#include "cq/parser.h"
#include "net/network.h"
#include "net/programs.h"
#include "obs/audit/causal.h"
#include "obs/trace.h"
#include "relational/generators.h"
#include "sa/analyzer.h"

namespace lamp {
namespace {

using obs::audit::CausalReport;

struct Profile {
  NetworkRunResult result;
  CausalReport report;
};

/// Runs \p program on \p locals under a tracer and extracts the causal
/// profile alongside the run result.
Profile RunProfiled(TransducerProgram& program, std::vector<Instance> locals,
                    std::uint64_t seed) {
  obs::Tracer tracer;
  Profile p;
  {
    obs::ScopedTracer install(tracer);
    TransducerNetwork net(std::move(locals), program, nullptr,
                          /*aware=*/true);
    p.result = net.Run(seed);
  }
  p.report = obs::audit::BuildCausalReport(tracer.Events());
  return p;
}

/// The shared workload: the 2-step reachability join on a small path
/// graph, monotone by construction.
struct Workload {
  Schema schema;
  ConjunctiveQuery query;
  Instance graph;
  Instance expected;

  Workload() {
    query = ParseQuery(schema, "H(x,z) <- E(x,y), E(y,z)");
    AddPathGraph(schema, schema.IdOf("E"), 8, graph);
    expected = Evaluate(query, graph);
  }
};

// The static side of the cross-validation: the Datalog form of the
// workload query is certified into class M by the negation-free fragment.
TEST(CausalCrossvalTest, AnalyzerCertifiesTheMonotoneWorkload) {
  Schema schema;
  const sa::ProgramAnalysis analysis = sa::AnalyzeProgramText(
      schema,
      "# @edb E/2\n"
      "H(x,z) <- E(x,y), E(y,z)\n");
  ASSERT_TRUE(analysis.parse_ok);
  ASSERT_TRUE(analysis.fragments.strongest.has_value());
  EXPECT_EQ(*analysis.fragments.strongest, sa::Fragment::kNegationFree);
  EXPECT_TRUE(
      analysis.fragments.Verdict(sa::Fragment::kNegationFree).certified);
}

// The dynamic side: on a replicated distribution the monotone broadcast
// strategy computes the certified query with coordination depth 0 — the
// first output appears during a heartbeat, on every seed.
TEST(CausalCrossvalTest, CertifiedMonotoneRunsCoordinationFree) {
  Workload w;
  const auto query = [&w](const Instance& instance) {
    return Evaluate(w.query, instance);
  };
  for (const std::uint64_t seed : {1u, 7u, 23u}) {
    MonotoneBroadcastProgram program(query);
    const Profile p =
        RunProfiled(program, DistributeReplicated(w.graph, 3), seed);
    EXPECT_EQ(p.result.output, w.expected) << "seed " << seed;
    EXPECT_EQ(p.result.coordination_depth(), 0u) << "seed " << seed;
    EXPECT_TRUE(p.report.CoordinationFree()) << "seed " << seed;
    EXPECT_TRUE(p.report.has_output) << "seed " << seed;
  }
}

// The pinned non-monotone contrast: the counting barrier cannot output
// before consuming messages, so its coordination depth is strictly
// greater than the monotone program's 0 — on the same ideal
// distribution, on every seed.
TEST(CausalCrossvalTest, CoordinatedBarrierHasStrictlyGreaterDepth) {
  Workload w;
  const auto query = [&w](const Instance& instance) {
    return Evaluate(w.query, instance);
  };
  for (const std::uint64_t seed : {1u, 7u, 23u}) {
    Schema barrier_schema = w.schema;
    CoordinatedBarrierProgram barrier(query, barrier_schema);
    const Profile p =
        RunProfiled(barrier, DistributeReplicated(w.graph, 3), seed);
    // Still correct — coordination buys safety, not new answers here.
    EXPECT_EQ(p.result.output, w.expected) << "seed " << seed;
    EXPECT_GE(p.result.coordination_depth(), 1u) << "seed " << seed;
    EXPECT_FALSE(p.report.CoordinationFree()) << "seed " << seed;
    EXPECT_TRUE(p.report.has_output) << "seed " << seed;
  }
}

// The gauges the runner exports and the profile reconstructed from the
// trace must agree — they are two views of the same instrumentation.
TEST(CausalCrossvalTest, GaugesMatchTraceReport) {
  Workload w;
  const auto query = [&w](const Instance& instance) {
    return Evaluate(w.query, instance);
  };
  Schema barrier_schema = w.schema;
  CoordinatedBarrierProgram barrier(query, barrier_schema);
  const Profile p =
      RunProfiled(barrier, DistributeReplicated(w.graph, 3), 5);
  EXPECT_EQ(p.result.coordination_depth(), p.report.coordination_depth);
  EXPECT_EQ(p.result.causal_max_depth(), p.report.max_depth);
  EXPECT_GE(p.report.deliveries, 1u);
  EXPECT_FALSE(p.report.critical_path.empty());
  // The critical path is causally ordered: depths strictly increase.
  for (std::size_t i = 1; i < p.report.critical_path.size(); ++i) {
    EXPECT_LT(p.report.critical_path[i - 1].depth,
              p.report.critical_path[i].depth);
  }
}

// Section 5.1's probe, profiled: the heartbeat-only run reads no message
// at all, so its causal profile is coordination-free by construction and
// the monotone program still computes the query on replicated locals.
TEST(CausalCrossvalTest, HeartbeatOnlyRunIsCoordinationFree) {
  Workload w;
  const auto query = [&w](const Instance& instance) {
    return Evaluate(w.query, instance);
  };
  MonotoneBroadcastProgram program(query);
  obs::Tracer tracer;
  NetworkRunResult result;
  {
    obs::ScopedTracer install(tracer);
    TransducerNetwork net(DistributeReplicated(w.graph, 3), program,
                          nullptr, /*aware=*/true);
    result = net.RunWithoutDelivery();
  }
  const CausalReport report =
      obs::audit::BuildCausalReport(tracer.Events());
  EXPECT_EQ(result.output, w.expected);
  EXPECT_EQ(result.coordination_depth(), 0u);
  EXPECT_EQ(report.deliveries, 0u);
  EXPECT_TRUE(report.CoordinationFree());
  EXPECT_TRUE(report.has_output);
}

}  // namespace
}  // namespace lamp
