#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <vector>

#include "common/rng.h"
#include "obs/bench_report.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace lamp::obs {
namespace {

// ---------------------------------------------------------------- JSON --

TEST(JsonTest, DumpPrimitives) {
  EXPECT_EQ(JsonValue().Dump(), "null");
  EXPECT_EQ(JsonValue(true).Dump(), "true");
  EXPECT_EQ(JsonValue(false).Dump(), "false");
  EXPECT_EQ(JsonValue(42).Dump(), "42");
  EXPECT_EQ(JsonValue(-7).Dump(), "-7");
  EXPECT_EQ(JsonValue("hi").Dump(), "\"hi\"");
}

TEST(JsonTest, ObjectPreservesInsertionOrder) {
  JsonValue obj = JsonValue::Object();
  obj.Set("zeta", 1);
  obj.Set("alpha", 2);
  obj.Set("mid", 3);
  EXPECT_EQ(obj.Dump(), "{\"zeta\":1,\"alpha\":2,\"mid\":3}");
  // Replacing keeps the original position.
  obj.Set("zeta", 9);
  EXPECT_EQ(obj.Dump(), "{\"zeta\":9,\"alpha\":2,\"mid\":3}");
}

TEST(JsonTest, EscapingSpecialCharacters) {
  EXPECT_EQ(EscapeJson("a\"b"), "a\\\"b");
  EXPECT_EQ(EscapeJson("a\\b"), "a\\\\b");
  EXPECT_EQ(EscapeJson("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(EscapeJson(std::string_view("\x01", 1)), "\\u0001");
  // A string containing every escape class round-trips through
  // Dump -> Parse.
  const std::string nasty = "quote\" back\\slash \n\r\t ctrl\x02 utf8 \xC3\xA9";
  const JsonValue v(nasty);
  const auto parsed = JsonValue::Parse(v.Dump());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->AsString(), nasty);
}

TEST(JsonTest, ParseUnicodeEscapes) {
  const auto bmp = JsonValue::Parse("\"\\u00e9\"");
  ASSERT_TRUE(bmp.has_value());
  EXPECT_EQ(bmp->AsString(), "\xC3\xA9");  // e-acute as UTF-8.
  // Surrogate pair: U+1F600.
  const auto astral = JsonValue::Parse("\"\\ud83d\\ude00\"");
  ASSERT_TRUE(astral.has_value());
  EXPECT_EQ(astral->AsString(), "\xF0\x9F\x98\x80");
  // Lone high surrogate is rejected.
  EXPECT_FALSE(JsonValue::Parse("\"\\ud83d\"").has_value());
}

TEST(JsonTest, ParseRejectsMalformedInput) {
  EXPECT_FALSE(JsonValue::Parse("").has_value());
  EXPECT_FALSE(JsonValue::Parse("{").has_value());
  EXPECT_FALSE(JsonValue::Parse("[1,]").has_value());
  EXPECT_FALSE(JsonValue::Parse("{\"a\":1,}").has_value());
  EXPECT_FALSE(JsonValue::Parse("1 trailing").has_value());
  EXPECT_FALSE(JsonValue::Parse("'single'").has_value());
  EXPECT_FALSE(JsonValue::Parse("nul").has_value());
}

TEST(JsonTest, ExactIntegersRoundTrip) {
  const std::int64_t big = 9007199254740993;  // 2^53 + 1: not a double.
  JsonValue v(big);
  const auto parsed = JsonValue::Parse(v.Dump());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->AsInt(), big);
}

TEST(JsonTest, NestedRoundTrip) {
  JsonValue obj = JsonValue::Object();
  obj.Set("name", "bench");
  JsonValue arr = JsonValue::Array();
  arr.PushBack(1);
  arr.PushBack(2.5);
  arr.PushBack(JsonValue());
  obj.Set("xs", std::move(arr));
  JsonValue inner = JsonValue::Object();
  inner.Set("flag", true);
  obj.Set("inner", std::move(inner));

  const auto parsed = JsonValue::Parse(obj.Dump(2));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->Dump(), obj.Dump());
  const JsonValue* xs = parsed->Find("xs");
  ASSERT_NE(xs, nullptr);
  ASSERT_EQ(xs->size(), 3u);
  EXPECT_EQ(xs->at(0).AsInt(), 1);
  EXPECT_DOUBLE_EQ(xs->at(1).AsDouble(), 2.5);
  EXPECT_TRUE(xs->at(2).IsNull());
}

// ------------------------------------------------------------- Metrics --

TEST(MetricsTest, CounterAndGauge) {
  MetricsRegistry registry;
  EXPECT_TRUE(registry.Empty());
  EXPECT_EQ(registry.CounterValue("absent"), 0u);

  registry.GetCounter("c").Increment();
  registry.GetCounter("c").Add(4);
  EXPECT_EQ(registry.CounterValue("c"), 5u);

  Gauge& g = registry.GetGauge("g");
  g.Max(3.0);
  g.Max(1.0);  // Not larger: ignored.
  EXPECT_DOUBLE_EQ(g.value(), 3.0);
  g.Set(0.5);
  EXPECT_DOUBLE_EQ(g.value(), 0.5);

  EXPECT_EQ(registry.FindCounter("absent"), nullptr);
  EXPECT_EQ(registry.FindHistogram("c"), nullptr);
  EXPECT_FALSE(registry.Empty());
}

TEST(MetricsTest, EmptyHistogramIsAllZero) {
  // Every accessor is a total function on the empty histogram (the
  // documented contract in metrics.h): all-zero, never a crash or NaN,
  // including the percentile edge values and out-of-range q (clamped).
  Histogram h;
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_DOUBLE_EQ(h.Sum(), 0.0);
  EXPECT_DOUBLE_EQ(h.Mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.Min(), 0.0);
  EXPECT_DOUBLE_EQ(h.Max(), 0.0);
  for (double q : {0.0, 50.0, 100.0, -3.0, 250.0}) {
    EXPECT_DOUBLE_EQ(h.Percentile(q), 0.0) << "q=" << q;
  }
  EXPECT_DOUBLE_EQ(h.P50(), 0.0);
  EXPECT_DOUBLE_EQ(h.P95(), 0.0);
  EXPECT_DOUBLE_EQ(h.P99(), 0.0);
  // Serialisation of the empty histogram is well-formed, not garbage.
  const JsonValue snapshot = h.ToJson();
  ASSERT_TRUE(snapshot.IsObject());
  const JsonValue* count = snapshot.Find("count");
  ASSERT_NE(count, nullptr);
  EXPECT_EQ(count->Dump(), "0");
}

TEST(MetricsTest, PercentileClampsOutOfRangeQ) {
  Histogram h;
  h.Observe(1.0);
  h.Observe(2.0);
  h.Observe(3.0);
  EXPECT_DOUBLE_EQ(h.Percentile(-10.0), h.Percentile(0.0));
  EXPECT_DOUBLE_EQ(h.Percentile(1000.0), 3.0);
}

TEST(MetricsTest, HistogramPercentilesMatchSortedReference) {
  // Compare against the definition directly: nearest rank on the fully
  // sorted sample.
  Rng rng(99);
  Histogram h;
  std::vector<double> reference;
  for (int i = 0; i < 1000; ++i) {
    const double v = static_cast<double>(rng.Uniform(100000));
    h.Observe(v);
    reference.push_back(v);
  }
  std::sort(reference.begin(), reference.end());
  for (double q : {0.0, 1.0, 25.0, 50.0, 90.0, 95.0, 99.0, 99.9, 100.0}) {
    std::size_t rank = static_cast<std::size_t>(
        std::ceil(q / 100.0 * static_cast<double>(reference.size())));
    rank = std::max<std::size_t>(rank, 1);
    EXPECT_DOUBLE_EQ(h.Percentile(q), reference[rank - 1]) << "q=" << q;
  }
  EXPECT_DOUBLE_EQ(h.Min(), reference.front());
  EXPECT_DOUBLE_EQ(h.Max(), reference.back());
  EXPECT_EQ(h.Count(), reference.size());
}

TEST(MetricsTest, HistogramInterleavesObserveAndQuery) {
  // Percentile sorts lazily; observing after a query must invalidate the
  // sorted view.
  Histogram h;
  h.Observe(10.0);
  h.Observe(5.0);
  EXPECT_DOUBLE_EQ(h.P50(), 5.0);
  h.Observe(1.0);
  EXPECT_DOUBLE_EQ(h.Min(), 1.0);
  EXPECT_DOUBLE_EQ(h.Percentile(100.0), 10.0);
}

TEST(MetricsTest, RegistryToJsonIsFlatAndTyped) {
  MetricsRegistry registry;
  registry.GetCounter("net.transitions").Add(12);
  registry.GetGauge("mpc.max_load").Max(847.0);
  registry.GetHistogram("mpc.round.max_load").Observe(847.0);

  const JsonValue snapshot = registry.ToJson();
  ASSERT_TRUE(snapshot.IsObject());
  const JsonValue* transitions = snapshot.Find("net.transitions");
  ASSERT_NE(transitions, nullptr);
  EXPECT_EQ(transitions->AsInt(), 12);
  const JsonValue* hist = snapshot.Find("mpc.round.max_load");
  ASSERT_NE(hist, nullptr);
  ASSERT_TRUE(hist->IsObject());
  EXPECT_EQ(hist->Find("count")->AsInt(), 1);
  EXPECT_DOUBLE_EQ(hist->Find("p50")->AsDouble(), 847.0);
}

// -------------------------------------------------------------- Tracer --

TEST(TracerTest, RingWrapsAndCountsDrops) {
  Tracer tracer(/*capacity=*/4);
  for (std::uint32_t i = 0; i < 10; ++i) {
    tracer.Emit(EventKind::kMpcRoundBegin, i, 0, i * 100);
  }
  EXPECT_EQ(tracer.total_emitted(), 10u);
  EXPECT_EQ(tracer.size(), 4u);
  EXPECT_EQ(tracer.dropped(), 6u);

  const std::vector<TraceEvent> events = tracer.Events();
  ASSERT_EQ(events.size(), 4u);
  // Oldest-to-newest: the last four emits (a = 6, 7, 8, 9).
  for (std::uint32_t i = 0; i < 4; ++i) {
    EXPECT_EQ(events[i].a, 6 + i);
    EXPECT_EQ(events[i].value, (6 + i) * 100u);
  }
}

TEST(TracerTest, EventsBelowCapacityKeepOrder) {
  Tracer tracer(/*capacity=*/8);
  tracer.Emit(EventKind::kNetStart, 3, 0, 0);
  tracer.Emit(EventKind::kNetBroadcast, 3, 0, 5);
  const auto events = tracer.Events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].kind, EventKind::kNetStart);
  EXPECT_EQ(events[1].kind, EventKind::kNetBroadcast);
  EXPECT_EQ(tracer.dropped(), 0u);
  EXPECT_LE(events[0].t_ns, events[1].t_ns);
}

TEST(TracerTest, ClearResets) {
  Tracer tracer(4);
  tracer.Emit(EventKind::kNetStart, 0, 0, 0);
  tracer.Clear();
  EXPECT_EQ(tracer.size(), 0u);
  EXPECT_EQ(tracer.total_emitted(), 0u);
  EXPECT_TRUE(tracer.Events().empty());
}

TEST(TracerTest, InstallationIsScopedAndNested) {
  EXPECT_EQ(InstalledTracer(), nullptr);
  Tracer outer;
  {
    ScopedTracer a(outer);
    EXPECT_EQ(InstalledTracer(), &outer);
    Tracer inner;
    {
      ScopedTracer b(inner);
      EXPECT_EQ(InstalledTracer(), &inner);
      Emit(EventKind::kNetStart, 1);
    }
    EXPECT_EQ(InstalledTracer(), &outer);
    EXPECT_EQ(inner.total_emitted(), 1u);
    EXPECT_EQ(outer.total_emitted(), 0u);
  }
  EXPECT_EQ(InstalledTracer(), nullptr);
}

TEST(TracerTest, NullSinkRecordsNothingAndIsCheap) {
  ASSERT_EQ(InstalledTracer(), nullptr);
  // A TraceSpan without a sink reads no clock and emits nothing; the free
  // Emit is a load + branch. 10M no-op emits finishing quickly (seconds,
  // vs minutes if each did work) is a coarse smoke check that the fast
  // path stays trivial.
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < 10'000'000; ++i) {
    TraceSpan span("noop", 0);
    Emit(EventKind::kMpcServerLoad, 0, 0, 42);
  }
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_LT(elapsed, 5.0);
}

TEST(TracerTest, SpanOutlivingScopedTracerIsDroppedSafely) {
  // The span captures the installed tracer at construction. If the
  // installation changes before the span ends, emitting through the
  // captured pointer could dangle — the destructor must notice and drop
  // the event instead.
  auto tracer = std::make_unique<Tracer>();
  auto install = std::make_unique<ScopedTracer>(*tracer);
  auto span = std::make_unique<TraceSpan>("outlives", 1);
  install.reset();  // Uninstalls; the span's pointer is now stale.
  tracer.reset();   // And now dangling.
  span.reset();     // Must not crash, must not emit.

  // A different tracer installed in between must not receive the span
  // either: the event belongs to the uninstalled recording.
  Tracer replacement;
  Tracer original;
  {
    ScopedTracer outer(original);
    auto inner_span = std::make_unique<TraceSpan>("swapped", 2);
    ScopedTracer swap(replacement);
    inner_span.reset();
  }
  EXPECT_EQ(original.total_emitted(), 0u);
  EXPECT_EQ(replacement.total_emitted(), 0u);

  // The unchanged-installation case still records.
  Tracer stable;
  {
    ScopedTracer install_stable(stable);
    TraceSpan span_ok("ok", 3);
  }
  EXPECT_EQ(stable.total_emitted(), 1u);
}

TEST(TracerTest, TraceToJsonSchema) {
  Tracer tracer(8);
  {
    ScopedTracer install(tracer);
    Emit(EventKind::kMpcRoundBegin, 0, 0, 16);
    Emit(EventKind::kMpcServerLoad, 0, 3, 250);
    { TraceSpan span("mpc.route", 0); }
  }
  const JsonValue json = TraceToJson(tracer);
  EXPECT_EQ(json.Find("schema")->AsString(), "lamp.trace.v1");
  EXPECT_EQ(json.Find("total_emitted")->AsInt(), 3);
  EXPECT_EQ(json.Find("dropped")->AsInt(), 0);
  EXPECT_EQ(json.Find("shards")->AsInt(), 1);
  const JsonValue* events = json.Find("events");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->size(), 3u);
  EXPECT_EQ(events->at(0).Find("kind")->AsString(), "mpc.round_begin");
  EXPECT_EQ(events->at(0).Find("shard")->AsInt(), 0);
  EXPECT_EQ(events->at(1).Find("kind")->AsString(), "mpc.server_load");
  EXPECT_EQ(events->at(1).Find("b")->AsInt(), 3);
  EXPECT_EQ(events->at(2).Find("kind")->AsString(), "span");
  EXPECT_EQ(events->at(2).Find("label")->AsString(), "mpc.route");
  // The serialised trace parses back.
  std::ostringstream os;
  WriteTraceJson(tracer, os);
  EXPECT_TRUE(JsonValue::Parse(os.str()).has_value());
}

// ------------------------------------------------------- BenchReporter --

TEST(BenchReporterTest, RecordsRenderAsUniformJsonLines) {
  BenchReporter reporter("unit_test_bench");
  MetricsRegistry registry;
  registry.GetCounter("mpc.rounds").Add(2);
  reporter.NewRecord()
      .Param("p", 64)
      .Param("query", "triangle")
      .Metrics(registry)
      .Metric("predicted", 123.5)
      .WallMs(4.25);
  reporter.NewRecord().Param("p", 256).WallMs(9.0);
  ASSERT_EQ(reporter.NumRecords(), 2u);

  std::istringstream lines(reporter.RenderJsonLines());
  std::string line;
  std::vector<JsonValue> records;
  while (std::getline(lines, line)) {
    auto parsed = JsonValue::Parse(line);
    ASSERT_TRUE(parsed.has_value()) << line;
    records.push_back(std::move(*parsed));
  }
  ASSERT_EQ(records.size(), 2u);
  for (const JsonValue& rec : records) {
    // The uniform shape: bench, params, metrics, threads, repeat,
    // wall_ms, wall_ns — in order ("meta" only with LAMP_BENCH_META).
    ASSERT_EQ(rec.members().size(), 7u);
    EXPECT_EQ(rec.members()[0].first, "bench");
    EXPECT_EQ(rec.members()[1].first, "params");
    EXPECT_EQ(rec.members()[2].first, "metrics");
    EXPECT_EQ(rec.members()[3].first, "threads");
    EXPECT_EQ(rec.members()[4].first, "repeat");
    EXPECT_EQ(rec.members()[5].first, "wall_ms");
    EXPECT_EQ(rec.members()[6].first, "wall_ns");
    EXPECT_EQ(rec.Find("bench")->AsString(), "unit_test_bench");
    EXPECT_GE(rec.Find("threads")->AsInt(), 1);
    EXPECT_GE(rec.Find("repeat")->AsInt(), 0);
  }
  EXPECT_EQ(records[0].Find("params")->Find("p")->AsInt(), 64);
  EXPECT_EQ(records[0].Find("metrics")->Find("mpc.rounds")->AsInt(), 2);
  EXPECT_DOUBLE_EQ(records[0].Find("metrics")->Find("predicted")->AsDouble(),
                   123.5);
  EXPECT_DOUBLE_EQ(records[0].Find("wall_ms")->AsDouble(), 4.25);
  EXPECT_EQ(records[0].Find("wall_ns")->AsInt(), 4250000);
}

TEST(BenchReporterTest, FlushAppendsToEnvSelectedFile) {
  const std::string path =
      ::testing::TempDir() + "/lamp_bench_report_test.json";
  std::remove(path.c_str());
  ASSERT_EQ(setenv(kBenchJsonEnvVar, path.c_str(), /*overwrite=*/1), 0);
  {
    BenchReporter reporter("env_file_bench");
    reporter.NewRecord().Param("p", 8).WallMs(1.0);
    reporter.Flush();
    EXPECT_EQ(reporter.NumRecords(), 0u);  // Flush clears.
    reporter.NewRecord().Param("p", 16).WallMs(2.0);
    // Second batch flushes via the destructor and appends.
  }
  ASSERT_EQ(unsetenv(kBenchJsonEnvVar), 0);

  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  std::string line;
  std::vector<std::int64_t> ps;
  while (std::getline(in, line)) {
    auto parsed = JsonValue::Parse(line);
    ASSERT_TRUE(parsed.has_value()) << line;
    ps.push_back(parsed->Find("params")->Find("p")->AsInt());
  }
  EXPECT_EQ(ps, (std::vector<std::int64_t>{8, 16}));
  std::remove(path.c_str());
}

TEST(BenchReporterTest, FlushFallsBackToStdoutWhenFileUnopenable) {
  // Records must never be dropped: pointing LAMP_BENCH_JSON into a
  // directory that does not exist sends them down the stdout path.
  ASSERT_EQ(setenv(kBenchJsonEnvVar,
                   "/nonexistent-dir-for-lamp-test/bench.json", 1),
            0);
  ::testing::internal::CaptureStdout();
  {
    BenchReporter reporter("fallback_bench");
    reporter.NewRecord().Param("p", 4).WallMs(1.0);
  }
  const std::string out = ::testing::internal::GetCapturedStdout();
  ASSERT_EQ(unsetenv(kBenchJsonEnvVar), 0);
  EXPECT_NE(out.find("# bench-json:"), std::string::npos) << out;
  EXPECT_NE(out.find("\"bench\":\"fallback_bench\""), std::string::npos)
      << out;
}

TEST(BenchReporterTest, RepeatIndexIsStamped) {
  SetBenchRepeatIndex(2);
  BenchReporter reporter("repeat_bench");
  reporter.NewRecord().Param("p", 1).WallMs(1.0);
  SetBenchRepeatIndex(0);
  const std::string lines = reporter.RenderJsonLines();
  const auto rec = JsonValue::Parse(lines.substr(0, lines.find('\n')));
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->Find("repeat")->AsInt(), 2);
  {
    // Drain without writing to the environment-selected file.
    ::testing::internal::CaptureStdout();
    reporter.Flush();
    ::testing::internal::GetCapturedStdout();
  }
}

}  // namespace
}  // namespace lamp::obs
