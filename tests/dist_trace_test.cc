// Distributed-trace shard merging (obs/dist): clock-offset recovery,
// causal repair, Lamport depths and the golden-pinned merged document.
//
// The synthetic mesh is built on an explicit "true" wall clock: every
// event gets a mesh timestamp, and rank r's shard records it as
// mesh - skew[r] (each process clock starts at its own epoch). The ring
// metadata is derived from the same model, so the merger must recover
// exactly skew[r] - min(skew) — a known answer, asserted to the
// nanosecond. A second scenario corrupts the ring estimate so only the
// difference-constraint repair can restore send < recv.
//
// Regenerate the golden after an intentional format change with:
//   LAMP_REGEN_GOLDEN=1 ./build/tests/dist_trace_test

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/audit/causal.h"
#include "obs/dist/merge.h"
#include "obs/dist/shard.h"
#include "obs/trace.h"

#ifndef LAMP_TESTS_DIR
#error "tests/CMakeLists.txt must define LAMP_TESTS_DIR"
#endif

namespace lamp::obs::dist {
namespace {

std::string GoldenPath() {
  return std::string(LAMP_TESTS_DIR) + "/golden/merged_trace.json";
}

constexpr std::uint64_t kTraceId = 0xabcdef12345678ull;
constexpr std::uint64_t kProcs = 3;
// Per-rank clock skew: rank r's local clock reads mesh_time - kSkew[r].
constexpr std::uint64_t kSkew[kProcs] = {0, 250000, 777000};
// Ring fold lap in mesh time: starts at kT0, one hop per rank.
constexpr std::uint64_t kT0 = 1000000;
constexpr std::uint64_t kHop = 3000;

std::uint64_t Local(std::uint64_t mesh_ns, std::uint64_t rank) {
  return mesh_ns - kSkew[rank];
}

// One cross-process message in mesh time.
struct SyntheticPair {
  std::uint32_t from;
  std::uint32_t to;
  std::uint64_t span;
  std::uint64_t round;
  std::uint64_t send_mesh_ns;
  std::uint64_t recv_mesh_ns;
};

// A causal chain: two round-0 roots from rank 0, then rank 1 forwards
// after consuming pair 0 (depth 2), then rank 2 forwards after consuming
// pairs 1 and 2 (depth 3, parent = the deeper pair 2).
const std::vector<SyntheticPair>& Pairs() {
  static const std::vector<SyntheticPair> pairs = {
      {0, 1, 0, 0, 1010000, 1010500},
      {0, 2, 1, 0, 1010100, 1010700},
      {1, 2, 0, 1, 1011000, 1011400},
      {2, 0, 0, 1, 1012000, 1012900},
  };
  return pairs;
}

std::vector<TraceShard> SyntheticShards() {
  std::vector<TraceShard> shards(kProcs);
  for (std::uint64_t r = 0; r < kProcs; ++r) {
    ShardHeader& h = shards[r].header;
    h.rank = r;
    h.procs = kProcs;
    h.trace_id = kTraceId;
    h.label = "synthetic";
    h.ring_fold_ns = Local(kT0 + r * kHop, r);
    if (r == 0) {
      h.ring_t0_ns = Local(kT0, 0);
      h.ring_t1_ns = Local(kT0 + kProcs * kHop, 0);
    }
  }
  for (const SyntheticPair& p : Pairs()) {
    shards[p.from].events.push_back(
        {Local(p.send_mesh_ns, p.from), "dist.send", p.to,
         static_cast<std::uint32_t>(p.round), p.span, ""});
    shards[p.to].events.push_back(
        {Local(p.recv_mesh_ns, p.to), "dist.recv", p.from,
         static_cast<std::uint32_t>(p.round), p.span, ""});
  }
  for (TraceShard& s : shards) {
    s.header.total_emitted = s.events.size();
  }
  return shards;
}

TEST(DistTraceTest, RecoversKnownSkewExactly) {
  std::string error;
  const auto merged = MergeShards(SyntheticShards(), &error);
  ASSERT_TRUE(merged.has_value()) << error;

  // The ring metadata is generated from the uniform-hop model the
  // estimator assumes, so recovery is exact: offset[r] == skew[r]
  // (rank 0 has the smallest skew, so normalisation is a no-op).
  ASSERT_EQ(merged->offset_ns.size(), kProcs);
  for (std::uint64_t r = 0; r < kProcs; ++r) {
    EXPECT_EQ(merged->offset_ns[r], static_cast<std::int64_t>(kSkew[r]))
        << "rank " << r;
  }

  // Aligned pair timestamps are therefore the original mesh times.
  ASSERT_EQ(merged->pairs.size(), Pairs().size());
  EXPECT_EQ(merged->unmatched_sends, 0u);
  EXPECT_EQ(merged->unmatched_recvs, 0u);
  for (std::size_t i = 0; i < merged->pairs.size(); ++i) {
    const MatchedPair& got = merged->pairs[i];
    const SyntheticPair& want = Pairs()[i];  // Already in send order.
    EXPECT_EQ(got.from, want.from) << i;
    EXPECT_EQ(got.to, want.to) << i;
    EXPECT_EQ(got.span, want.span) << i;
    EXPECT_EQ(got.round, want.round) << i;
    EXPECT_EQ(got.send_ns, want.send_mesh_ns) << i;
    EXPECT_EQ(got.recv_ns, want.recv_mesh_ns) << i;
  }
}

TEST(DistTraceTest, LamportDepthsFollowTheCausalChain) {
  std::string error;
  const auto merged = MergeShards(SyntheticShards(), &error);
  ASSERT_TRUE(merged.has_value()) << error;
  ASSERT_EQ(merged->pairs.size(), 4u);

  EXPECT_EQ(merged->pairs[0].depth, 1u);  // Root.
  EXPECT_EQ(merged->pairs[0].parent, 0u);
  EXPECT_EQ(merged->pairs[1].depth, 1u);  // Root.
  EXPECT_EQ(merged->pairs[1].parent, 0u);
  EXPECT_EQ(merged->pairs[2].depth, 2u);  // Sender consumed pair 0.
  EXPECT_EQ(merged->pairs[2].parent, 1u);
  EXPECT_EQ(merged->pairs[3].depth, 3u);  // Deepest consumed is pair 2.
  EXPECT_EQ(merged->pairs[3].parent, 3u);
  EXPECT_EQ(merged->max_depth, 3u);

  // The cross-process causal report agrees with the hand-computed chain.
  const audit::CausalReport report = audit::BuildCausalReport(*merged);
  EXPECT_EQ(report.deliveries, 4u);
  EXPECT_EQ(report.max_depth, 3u);
}

TEST(DistTraceTest, RepairRestoresCausalityUnderBadEstimates) {
  // Corrupt rank 2's ring probe so the estimator places its clock 50 µs
  // too early — every recv on rank 2 would align before its send. The
  // constraint repair must push rank 2 forward until send < recv again.
  std::vector<TraceShard> shards = SyntheticShards();
  shards[2].header.ring_fold_ns += 50000;
  std::string error;
  const auto merged = MergeShards(std::move(shards), &error);
  ASSERT_TRUE(merged.has_value()) << error;
  ASSERT_EQ(merged->pairs.size(), 4u);
  for (const MatchedPair& pair : merged->pairs) {
    EXPECT_LT(pair.send_ns, pair.recv_ns)
        << pair.from << "->" << pair.to << " span " << pair.span;
  }
  // Repair is minimal: the binding constraint into rank 2 is clamped to
  // exactly the enforced minimum latency, not pushed any further.
  std::uint64_t min_latency_into_2 = ~0ull;
  for (const MatchedPair& pair : merged->pairs) {
    if (pair.to == 2) {
      min_latency_into_2 = std::min(min_latency_into_2, pair.latency_ns());
    }
  }
  EXPECT_EQ(min_latency_into_2, 1u);
}

TEST(DistTraceTest, LatencyStatsPerRoundAndEndToEnd) {
  std::string error;
  const auto merged = MergeShards(SyntheticShards(), &error);
  ASSERT_TRUE(merged.has_value()) << error;

  const LatencyStats all = EndToEndLatency(*merged);
  EXPECT_EQ(all.count, 4u);
  EXPECT_EQ(all.max_ns, 900u);
  EXPECT_LE(all.p50_ns, all.p95_ns);
  EXPECT_LE(all.p95_ns, all.p99_ns);
  EXPECT_LE(all.p99_ns, all.max_ns);

  const std::vector<RoundLatency> rounds = RoundLatencies(*merged);
  ASSERT_EQ(rounds.size(), 2u);
  EXPECT_EQ(rounds[0].round, 0u);
  EXPECT_EQ(rounds[0].stats.count, 2u);  // Latencies 500, 600.
  EXPECT_EQ(rounds[0].stats.max_ns, 600u);
  EXPECT_EQ(rounds[1].round, 1u);
  EXPECT_EQ(rounds[1].stats.count, 2u);  // Latencies 400, 900.
  EXPECT_EQ(rounds[1].stats.max_ns, 900u);
}

TEST(DistTraceTest, DroppedEventsPropagateToTheMerge) {
  std::vector<TraceShard> shards = SyntheticShards();
  shards[1].header.dropped = 3;
  shards[2].header.dropped = 4;
  std::string error;
  const auto merged = MergeShards(std::move(shards), &error);
  ASSERT_TRUE(merged.has_value()) << error;
  EXPECT_EQ(merged->total_dropped, 7u);
}

TEST(DistTraceTest, RejectsInconsistentShardSets) {
  std::string error;
  {
    std::vector<TraceShard> shards = SyntheticShards();
    shards.pop_back();  // Missing rank 2.
    EXPECT_FALSE(MergeShards(std::move(shards), &error).has_value());
    EXPECT_FALSE(error.empty());
  }
  {
    std::vector<TraceShard> shards = SyntheticShards();
    shards[1].header.rank = 0;  // Duplicate rank.
    EXPECT_FALSE(MergeShards(std::move(shards), &error).has_value());
  }
  {
    std::vector<TraceShard> shards = SyntheticShards();
    shards[2].header.trace_id ^= 1;  // Shard from a different run.
    EXPECT_FALSE(MergeShards(std::move(shards), &error).has_value());
  }
  EXPECT_FALSE(MergeShards({}, &error).has_value());
}

TEST(DistTraceTest, ShardIoRoundTrip) {
  // A real Tracer through WriteShard/ParseShard: the on-disk lines must
  // reproduce the header metadata and every event, in order.
  Tracer tracer(16);
  tracer.Emit(EventKind::kDistSend, 1, 0, 7, nullptr);
  tracer.Emit(EventKind::kDistRecv, 2, 0, 9, nullptr);
  tracer.Emit(EventKind::kSpan, 3, 0, 1234, "proc.route");

  ShardHeader header;
  header.rank = 1;
  header.procs = 4;
  header.trace_id = kTraceId;
  header.label = "io_roundtrip";
  header.ring_fold_ns = 4242;

  std::stringstream ss;
  WriteShard(ss, header, tracer);
  std::string error;
  const auto shard = ParseShard(ss, &error);
  ASSERT_TRUE(shard.has_value()) << error;
  EXPECT_EQ(shard->header.rank, 1u);
  EXPECT_EQ(shard->header.procs, 4u);
  EXPECT_EQ(shard->header.trace_id, kTraceId);
  EXPECT_EQ(shard->header.label, "io_roundtrip");
  EXPECT_EQ(shard->header.ring_fold_ns, 4242u);
  EXPECT_EQ(shard->header.dropped, 0u);
  EXPECT_EQ(shard->header.total_emitted, 3u);
  ASSERT_EQ(shard->events.size(), 3u);
  EXPECT_EQ(shard->events[0].kind, "dist.send");
  EXPECT_EQ(shard->events[0].a, 1u);
  EXPECT_EQ(shard->events[0].value, 7u);
  EXPECT_EQ(shard->events[1].kind, "dist.recv");
  EXPECT_EQ(shard->events[2].kind, "span");
  EXPECT_EQ(shard->events[2].label, "proc.route");

  // A truncated tail (crashed worker) still loads: the partial last line
  // is skipped, the prefix survives.
  std::stringstream full;
  WriteShard(full, header, tracer);
  std::string text = full.str();
  text.resize(text.size() - 10);
  std::stringstream truncated(text);
  const auto partial = ParseShard(truncated, &error);
  ASSERT_TRUE(partial.has_value()) << error;
  EXPECT_EQ(partial->events.size(), 2u);
}

TEST(DistTraceTest, ShardPathEncodesLabelProcsAndRank) {
  EXPECT_EQ(ShardPath("/tmp/t", "repartition/tcp", 4, 2),
            "/tmp/t.repartition_tcp.p4.r2.jsonl");
}

TEST(DistTraceTest, MergedTraceMatchesGoldenFile) {
  std::string error;
  const auto merged = MergeShards(SyntheticShards(), &error);
  ASSERT_TRUE(merged.has_value()) << error;
  const std::string got = MergedTraceJson(*merged).Dump(2) + "\n";

  if (std::getenv("LAMP_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(GoldenPath(), std::ios::trunc);
    ASSERT_TRUE(out.is_open()) << GoldenPath();
    out << got;
    GTEST_SKIP() << "golden regenerated at " << GoldenPath();
  }

  std::ifstream in(GoldenPath());
  ASSERT_TRUE(in.is_open())
      << "missing golden " << GoldenPath()
      << " — regenerate with LAMP_REGEN_GOLDEN=1";
  std::stringstream want;
  want << in.rdbuf();
  EXPECT_EQ(got, want.str())
      << "merged-trace JSON drifted from the golden. If the change is "
         "intentional, rerun with LAMP_REGEN_GOLDEN=1.";
}

TEST(DistTraceTest, ChromeExportHasOneLanePerRankAndFlowArrows) {
  std::string error;
  const auto merged = MergeShards(SyntheticShards(), &error);
  ASSERT_TRUE(merged.has_value()) << error;
  const JsonValue doc = MergedChromeTrace(*merged);
  const JsonValue* events = doc.Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->IsArray());
  std::size_t lanes = 0;
  std::size_t flow_starts = 0;
  std::size_t flow_ends = 0;
  for (std::size_t i = 0; i < events->size(); ++i) {
    const JsonValue& e = events->at(i);
    const JsonValue* ph = e.Find("ph");
    ASSERT_NE(ph, nullptr);
    if (ph->AsString() == "M") ++lanes;
    if (ph->AsString() == "s") ++flow_starts;
    if (ph->AsString() == "f") ++flow_ends;
  }
  EXPECT_EQ(lanes, kProcs);
  EXPECT_EQ(flow_starts, Pairs().size());
  EXPECT_EQ(flow_ends, Pairs().size());
}

}  // namespace
}  // namespace lamp::obs::dist
