#include <algorithm>
#include <cstdint>
#include <numeric>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "common/hash.h"
#include "common/interner.h"
#include "common/rng.h"
#include "common/subset.h"

namespace lamp {
namespace {

TEST(Rng, DeterministicForFixedSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, UniformRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(10), 10u);
  }
}

TEST(Rng, UniformCoversRange) {
  Rng rng(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.Uniform(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(3);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t x = rng.UniformInt(-2, 2);
    EXPECT_GE(x, -2);
    EXPECT_LE(x, 2);
    saw_lo |= (x == -2);
    saw_hi |= (x == 2);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformDoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.UniformDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(5);
  EXPECT_FALSE(rng.Bernoulli(0.0));
  EXPECT_TRUE(rng.Bernoulli(1.0));
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(11);
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  std::vector<int> orig = v;
  rng.Shuffle(v);
  EXPECT_TRUE(std::is_permutation(v.begin(), v.end(), orig.begin()));
}

TEST(Zipf, UniformWhenExponentZero) {
  ZipfSampler zipf(4, 0.0);
  for (std::size_t k = 0; k < 4; ++k) {
    EXPECT_NEAR(zipf.Probability(k), 0.25, 1e-12);
  }
}

TEST(Zipf, SkewConcentratesOnHead) {
  ZipfSampler zipf(1000, 1.2);
  EXPECT_GT(zipf.Probability(0), 0.1);
  EXPECT_GT(zipf.Probability(0), 100 * zipf.Probability(999));
}

TEST(Zipf, SampleMatchesProbabilities) {
  ZipfSampler zipf(10, 1.0);
  Rng rng(123);
  std::vector<int> counts(10, 0);
  const int n = 20000;
  for (int i = 0; i < n; ++i) ++counts[zipf.Sample(rng)];
  for (std::size_t k = 0; k < 10; ++k) {
    EXPECT_NEAR(static_cast<double>(counts[k]) / n, zipf.Probability(k), 0.02)
        << "element " << k;
  }
}

TEST(Interner, RoundTrip) {
  Interner interner;
  const auto a = interner.Intern("alpha");
  const auto b = interner.Intern("beta");
  EXPECT_NE(a, b);
  EXPECT_EQ(interner.Intern("alpha"), a);
  EXPECT_EQ(interner.NameOf(a), "alpha");
  EXPECT_EQ(interner.NameOf(b), "beta");
  EXPECT_EQ(interner.Find("alpha"), a);
  EXPECT_EQ(interner.Find("gamma"), Interner::kNotFound);
  EXPECT_EQ(interner.size(), 2u);
}

TEST(Hash, MixSpreadsNearbyInputs) {
  std::set<std::uint64_t> outputs;
  for (std::uint64_t i = 0; i < 1000; ++i) outputs.insert(HashMix(i));
  EXPECT_EQ(outputs.size(), 1000u);
}

TEST(Hash, RangeOrderSensitive) {
  const std::vector<std::uint64_t> ab = {1, 2};
  const std::vector<std::uint64_t> ba = {2, 1};
  EXPECT_NE(HashRange(ab.begin(), ab.end()), HashRange(ba.begin(), ba.end()));
}

TEST(Subset, ForEachTupleCountsBasePowSlots) {
  int count = 0;
  ForEachTuple(3, 4, [&count](const std::vector<std::size_t>&) {
    ++count;
    return true;
  });
  EXPECT_EQ(count, 64);
}

TEST(Subset, ForEachTupleEarlyStop) {
  int count = 0;
  const bool completed = ForEachTuple(2, 5, [&count](const auto&) {
    return ++count < 7;
  });
  EXPECT_FALSE(completed);
  EXPECT_EQ(count, 7);
}

TEST(Subset, ForEachSubsetCountsPowersOfTwo) {
  int count = 0;
  ForEachSubset(5, [&count](const std::vector<bool>&) {
    ++count;
    return true;
  });
  EXPECT_EQ(count, 32);
}

TEST(Subset, ForEachSubsetZeroElements) {
  int count = 0;
  ForEachSubset(0, [&count](const std::vector<bool>& mask) {
    EXPECT_TRUE(mask.empty());
    ++count;
    return true;
  });
  EXPECT_EQ(count, 1);
}

}  // namespace
}  // namespace lamp
