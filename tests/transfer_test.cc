#include <gtest/gtest.h>

#include "cq/containment.h"
#include "common/rng.h"
#include "cq/parser.h"
#include "distribution/parallel_correctness.h"
#include "distribution/policies.h"
#include "distribution/transfer.h"

namespace lamp {
namespace {

// Example 4.11 / Figure 1 of the paper:
//   Q1: H() <- S(x), R(x,x), T(x)
//   Q2: H() <- R(x,x), T(x)
//   Q3: H() <- S(x), R(x,y), T(y)
//   Q4: H() <- R(x,y), T(y)
class Figure1Transfer : public ::testing::Test {
 protected:
  Figure1Transfer() {
    q1_ = ParseQuery(schema_, "H() <- S(x), R(x,x), T(x)");
    q2_ = ParseQuery(schema_, "H() <- R(x,x), T(x)");
    q3_ = ParseQuery(schema_, "H() <- S(x), R(x,y), T(y)");
    q4_ = ParseQuery(schema_, "H() <- R(x,y), T(y)");
  }

  Schema schema_;
  ConjunctiveQuery q1_, q2_, q3_, q4_;
};

TEST_F(Figure1Transfer, TransferIsReflexive) {
  for (const ConjunctiveQuery* q : {&q1_, &q2_, &q3_, &q4_}) {
    EXPECT_TRUE(ParallelCorrectnessTransfersTo(*q, *q));
  }
}

TEST_F(Figure1Transfer, TransferMatrixMatchesFigure1a) {
  // Positive arrows: Q3 -> {Q1, Q2, Q4}, Q4 -> Q2, Q1 -> Q2.
  EXPECT_TRUE(ParallelCorrectnessTransfersTo(q3_, q1_));  // Stated in text.
  EXPECT_TRUE(ParallelCorrectnessTransfersTo(q3_, q2_));
  EXPECT_TRUE(ParallelCorrectnessTransfersTo(q3_, q4_));
  EXPECT_TRUE(ParallelCorrectnessTransfersTo(q4_, q2_));
  EXPECT_TRUE(ParallelCorrectnessTransfersTo(q1_, q2_));

  // All remaining pairs do not transfer.
  EXPECT_FALSE(ParallelCorrectnessTransfersTo(q1_, q3_));
  EXPECT_FALSE(ParallelCorrectnessTransfersTo(q1_, q4_));
  EXPECT_FALSE(ParallelCorrectnessTransfersTo(q2_, q1_));
  EXPECT_FALSE(ParallelCorrectnessTransfersTo(q2_, q3_));
  EXPECT_FALSE(ParallelCorrectnessTransfersTo(q2_, q4_));
  EXPECT_FALSE(ParallelCorrectnessTransfersTo(q4_, q1_));
  EXPECT_FALSE(ParallelCorrectnessTransfersTo(q4_, q3_));
}

TEST_F(Figure1Transfer, TransferOrthogonalToContainment) {
  // The four comparisons called out in the paper's text:
  // (Q3 vs Q4): both containment and transfer hold.
  EXPECT_TRUE(IsContainedIn(q3_, q4_));
  EXPECT_TRUE(ParallelCorrectnessTransfersTo(q3_, q4_));
  // (Q4 vs Q2): they hold in opposite directions.
  EXPECT_TRUE(IsContainedIn(q2_, q4_));
  EXPECT_FALSE(IsContainedIn(q4_, q2_));
  EXPECT_TRUE(ParallelCorrectnessTransfersTo(q4_, q2_));
  EXPECT_FALSE(ParallelCorrectnessTransfersTo(q2_, q4_));
  // (Q3 vs Q2): transfer without containment.
  EXPECT_TRUE(ParallelCorrectnessTransfersTo(q3_, q2_));
  EXPECT_FALSE(IsContainedIn(q3_, q2_));
  EXPECT_FALSE(IsContainedIn(q2_, q3_));
  // (Q1 vs Q4): containment without transfer.
  EXPECT_TRUE(IsContainedIn(q1_, q4_));
  EXPECT_FALSE(ParallelCorrectnessTransfersTo(q1_, q4_));
}

TEST_F(Figure1Transfer, TransferSemanticsOnConcretePolicies) {
  // Definition 4.10 made concrete: build finite policies over a 2-value
  // universe; whenever Q3 is parallel-correct under a policy, so must be
  // Q1 (since Q3 ->pc Q1). Cross-validated by direct PC checks.
  const RelationId r = schema_.IdOf("R");
  const RelationId s = schema_.IdOf("S");
  const RelationId t = schema_.IdOf("T");
  Rng rng(123);
  int q3_correct = 0;
  for (int trial = 0; trial < 60; ++trial) {
    FinitePolicy policy(2, MakeUniverse(2));
    for (std::int64_t a = 0; a < 2; ++a) {
      for (NodeId node = 0; node < 2; ++node) {
        if (rng.Bernoulli(0.6)) policy.Assign(node, Fact(s, {a}));
        if (rng.Bernoulli(0.6)) policy.Assign(node, Fact(t, {a}));
        for (std::int64_t b = 0; b < 2; ++b) {
          if (rng.Bernoulli(0.6)) policy.Assign(node, Fact(r, {a, b}));
        }
      }
    }
    if (IsParallelCorrect(q3_, policy)) {
      ++q3_correct;
      EXPECT_TRUE(IsParallelCorrect(q1_, policy)) << "trial " << trial;
      EXPECT_TRUE(IsParallelCorrect(q2_, policy)) << "trial " << trial;
      EXPECT_TRUE(IsParallelCorrect(q4_, policy)) << "trial " << trial;
    }
  }
  EXPECT_GT(q3_correct, 0);  // The property was exercised.
}

TEST(Transfer, WitnessPolicyForNonTransfer) {
  // Q1 -/-> Q4: exhibit a policy where Q1 is parallel-correct but Q4 is
  // not (the converse of Definition 4.10).
  Schema schema;
  const ConjunctiveQuery q1 =
      ParseQuery(schema, "H() <- S(x), R(x,x), T(x)");
  const ConjunctiveQuery q4 = ParseQuery(schema, "H() <- R(x,y), T(y)");
  const RelationId r = schema.IdOf("R");
  const RelationId t = schema.IdOf("T");

  // Policy: node 0 gets S-facts, T-facts and *diagonal* R-facts; node 1
  // gets off-diagonal R-facts. Q1's minimal valuations only need diagonal
  // R-facts -> correct. Q4 needs R(a,b) with T(b) together -> fails.
  const LambdaPolicy policy(
      2, MakeUniverse(2), [r](NodeId node, const Fact& f) {
        const bool off_diagonal_r =
            f.relation == r && !(f.args[0] == f.args[1]);
        if (node == 0) return !off_diagonal_r;
        return off_diagonal_r;
      });
  EXPECT_TRUE(IsParallelCorrect(q1, policy));
  EXPECT_FALSE(IsParallelCorrect(q4, policy));
  (void)t;
}

TEST(Transfer, FullQueriesTransferByBodyInclusion) {
  // For full CQs every valuation is minimal, so Q covers Q' reduces to:
  // the body facts of any valuation of Q' appear among those of some
  // valuation of Q. Identical bodies -> transfer in both directions.
  Schema schema;
  const ConjunctiveQuery a =
      ParseQuery(schema, "H(x,y,z) <- R(x,y), S(y,z)");
  const ConjunctiveQuery b = ParseQuery(schema, "G(z,x,y) <- R(x,y), S(y,z)");
  EXPECT_TRUE(ParallelCorrectnessTransfersTo(a, b));
  EXPECT_TRUE(ParallelCorrectnessTransfersTo(b, a));
}

TEST(Transfer, SubBodyTransfers) {
  // Q with a larger body covers the query with a sub-body.
  Schema schema;
  const ConjunctiveQuery big =
      ParseQuery(schema, "H(x,y,z) <- R(x,y), S(y,z), T(z,x)");
  const ConjunctiveQuery small =
      ParseQuery(schema, "G(x,y) <- R(x,y)");
  EXPECT_TRUE(ParallelCorrectnessTransfersTo(big, small));
  EXPECT_FALSE(ParallelCorrectnessTransfersTo(small, big));
}

}  // namespace
}  // namespace lamp
