// Cross-runtime checks of the observability layer (obs/): the event
// stream and the metrics registry must agree *exactly* with the legacy
// accounting structs (RunStats, NetworkRunResult accessors, DatalogStats)
// — a trace is a faithful replay of the run, not an approximation.

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "common/rng.h"
#include "cq/eval.h"
#include "cq/parser.h"
#include "datalog/eval.h"
#include "datalog/program.h"
#include "mpc/hypercube_run.h"
#include "mpc/skew.h"
#include "net/network.h"
#include "net/programs.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "relational/generators.h"

namespace lamp {
namespace {

TEST(ObsIntegrationTest, TracerReproducesMpcRoundLoadsExactly) {
  Schema schema;
  const ConjunctiveQuery q =
      ParseQuery(schema, "H(x,y,z) <- R(x,y), S(y,z), T(z,x)");
  Rng rng(13);
  Instance db;
  AddRandomGraph(schema, schema.IdOf("R"), 2000, 300, rng, db);
  AddRandomGraph(schema, schema.IdOf("S"), 2000, 300, rng, db);
  AddRandomGraph(schema, schema.IdOf("T"), 2000, 300, rng, db);

  obs::Tracer tracer;
  MpcRunResult traced;
  {
    obs::ScopedTracer install(tracer);
    traced = RunHyperCubeUniform(q, db, 27);
  }
  // Instrumentation must not change the computation: an uninstrumented
  // run produces identical stats.
  const MpcRunResult plain = RunHyperCubeUniform(q, db, 27);
  ASSERT_EQ(plain.stats.NumRounds(), traced.stats.NumRounds());
  EXPECT_EQ(plain.stats.MaxLoad(), traced.stats.MaxLoad());

  // Reconstruct per-round per-server loads from the event stream.
  std::map<std::uint32_t, std::vector<std::size_t>> loads;
  std::map<std::uint32_t, std::uint64_t> round_totals;
  std::map<std::uint32_t, std::uint64_t> round_servers;
  for (const obs::TraceEvent& e : tracer.Events()) {
    switch (e.kind) {
      case obs::EventKind::kMpcRoundBegin:
        round_servers[e.a] = e.value;
        loads[e.a].assign(static_cast<std::size_t>(e.value), 0);
        break;
      case obs::EventKind::kMpcServerLoad:
        ASSERT_LT(e.b, loads[e.a].size());
        loads[e.a][e.b] = static_cast<std::size_t>(e.value);
        break;
      case obs::EventKind::kMpcRoundEnd:
        round_totals[e.a] = e.value;
        break;
      default:
        break;
    }
  }

  ASSERT_EQ(loads.size(), traced.stats.NumRounds());
  for (std::size_t r = 0; r < traced.stats.NumRounds(); ++r) {
    const RoundStats& expected = traced.stats.rounds[r];
    const auto idx = static_cast<std::uint32_t>(r);
    EXPECT_EQ(round_servers[idx], expected.received.size());
    EXPECT_EQ(loads[idx], expected.received) << "round " << r;
    EXPECT_EQ(round_totals[idx], expected.TotalLoad()) << "round " << r;
  }
}

TEST(ObsIntegrationTest, TracerCoversMultiRoundAlgorithms) {
  // SkewResilientTriangle runs >= 2 rounds; every round must appear in
  // the trace with its own server-load row.
  Schema schema;
  const ConjunctiveQuery q =
      ParseQuery(schema, "H(x,y,z) <- R(x,y), S(y,z), T(z,x)");
  Rng rng(3);
  Instance skewed;
  for (std::size_t i = 0; i < 500; ++i) {
    skewed.Insert(Fact(schema.IdOf("R"), {static_cast<std::int64_t>(i), 0}));
  }
  AddUniformRelation(schema, schema.IdOf("S"), 1000, 4000, rng, skewed);
  AddUniformRelation(schema, schema.IdOf("T"), 1000, 4000, rng, skewed);

  obs::Tracer tracer;
  MpcRunResult run;
  {
    obs::ScopedTracer install(tracer);
    run = SkewResilientTriangle(q, skewed, 8, /*seed=*/0,
                                /*heavy_threshold=*/100);
  }
  ASSERT_GE(run.stats.NumRounds(), 2u);
  std::size_t begins = 0;
  std::size_t ends = 0;
  for (const obs::TraceEvent& e : tracer.Events()) {
    begins += e.kind == obs::EventKind::kMpcRoundBegin;
    ends += e.kind == obs::EventKind::kMpcRoundEnd;
  }
  EXPECT_EQ(begins, run.stats.NumRounds());
  EXPECT_EQ(ends, run.stats.NumRounds());
}

TEST(ObsIntegrationTest, RunStatsToMetricsMatchesAccessors) {
  Schema schema;
  const ConjunctiveQuery q = ParseQuery(schema, "H(x,y,z) <- R(x,y), S(y,z)");
  Rng rng(5);
  Instance db;
  AddUniformRelation(schema, schema.IdOf("R"), 3000, 9000, rng, db);
  AddUniformRelation(schema, schema.IdOf("S"), 3000, 9000, rng, db);
  const MpcRunResult run = RunHyperCubeUniform(q, db, 16);

  obs::MetricsRegistry registry;
  run.stats.ToMetrics(registry);
  EXPECT_EQ(registry.CounterValue(obs::kMpcRounds), run.stats.NumRounds());
  EXPECT_EQ(registry.CounterValue(obs::kMpcTotalCommunication),
            run.stats.TotalCommunication());
  const obs::Gauge* max_load = registry.FindGauge(obs::kMpcMaxLoad);
  ASSERT_NE(max_load, nullptr);
  EXPECT_DOUBLE_EQ(max_load->value(),
                   static_cast<double>(run.stats.MaxLoad()));
  const obs::Histogram* per_round =
      registry.FindHistogram(obs::kMpcRoundMaxLoad);
  ASSERT_NE(per_round, nullptr);
  EXPECT_EQ(per_round->Count(), run.stats.NumRounds());
  EXPECT_DOUBLE_EQ(per_round->Max(),
                   static_cast<double>(run.stats.MaxLoad()));
}

TEST(ObsIntegrationTest, NetEventsMatchRunResultCounters) {
  Schema schema;
  const RelationId e = schema.AddRelation("E", 2);
  const ConjunctiveQuery triangle = ParseQuery(
      schema, "H(x,y,z) <- E(x,y), E(y,z), E(z,x), x != y, y != z, x != z");
  Rng rng(17);
  Instance graph;
  AddRandomGraph(schema, e, 40, 12, rng, graph);
  AddTriangleClusters(schema, e, 2, 100, graph);

  MonotoneBroadcastProgram program([&triangle](const Instance& instance) {
    return Evaluate(triangle, instance);
  });
  TransducerNetwork net(DistributeRoundRobin(graph, 5), program, nullptr,
                        /*aware=*/false);

  obs::Tracer tracer;
  NetworkRunResult result;
  {
    obs::ScopedTracer install(tracer);
    result = net.Run(/*seed=*/11);
  }

  std::size_t starts = 0;
  std::size_t broadcasts = 0;
  std::size_t delivers = 0;
  std::uint64_t facts_delivered = 0;
  std::uint64_t quiescent_transitions = 0;
  for (const obs::TraceEvent& ev : tracer.Events()) {
    switch (ev.kind) {
      case obs::EventKind::kNetStart:
        ++starts;
        break;
      case obs::EventKind::kNetBroadcast:
        ++broadcasts;
        break;
      case obs::EventKind::kNetDeliver:
        ++delivers;
        facts_delivered += ev.value;
        break;
      case obs::EventKind::kNetQuiescent:
        quiescent_transitions = ev.value;
        break;
      default:
        break;
    }
  }

  EXPECT_EQ(starts, 5u);  // One heartbeat per node.
  EXPECT_EQ(broadcasts, result.metrics.CounterValue(obs::kNetBroadcasts));
  // Every point-to-point message is delivered exactly once by quiescence.
  EXPECT_EQ(delivers, result.transitions());
  EXPECT_EQ(delivers, result.messages_sent());
  EXPECT_EQ(facts_delivered, result.facts_transferred());
  EXPECT_EQ(quiescent_transitions, result.transitions());
  // The histogram saw one sample per broadcast.
  const obs::Histogram* sizes =
      result.metrics.FindHistogram(obs::kNetMessageSize);
  ASSERT_NE(sizes, nullptr);
  EXPECT_EQ(sizes->Count(), broadcasts);
}

TEST(ObsIntegrationTest, DatalogMetricsMatchStats) {
  Schema schema;
  const DatalogProgram program = ParseProgram(schema, R"(
    TC(x,y) <- E(x,y)
    TC(x,y) <- TC(x,z), E(z,y)
  )");
  Rng rng(23);
  Instance edb;
  AddPathGraph(schema, schema.IdOf("E"), 30, edb);

  obs::Tracer tracer;
  DatalogStats stats;
  obs::MetricsRegistry metrics;
  {
    obs::ScopedTracer install(tracer);
    (void)EvaluateProgram(schema, program, edb, &stats, &metrics);
  }
  EXPECT_GT(stats.iterations, 1u);
  EXPECT_EQ(metrics.CounterValue(obs::kDatalogIterations), stats.iterations);
  EXPECT_EQ(metrics.CounterValue(obs::kDatalogFactsDerived),
            stats.facts_derived);

  const obs::Histogram* delta = metrics.FindHistogram(obs::kDatalogDeltaSize);
  ASSERT_NE(delta, nullptr);
  EXPECT_GE(delta->Count(), 1u);
  // Every histogram sample has a matching trace event with equal payload.
  std::vector<double> event_deltas;
  for (const obs::TraceEvent& ev : tracer.Events()) {
    if (ev.kind == obs::EventKind::kDatalogIteration) {
      event_deltas.push_back(static_cast<double>(ev.value));
    }
  }
  EXPECT_EQ(event_deltas.size(), delta->Count());
}

}  // namespace
}  // namespace lamp
