#include <vector>

#include <gtest/gtest.h>

#include "cq/minimal.h"
#include "cq/parser.h"

namespace lamp {
namespace {

// Example 4.5 of the paper: Q: H(x,z) <- R(x,y), R(y,z), R(x,x).
class MinimalValuationTest : public ::testing::Test {
 protected:
  MinimalValuationTest()
      : query_(ParseQuery(schema_, "H(x,z) <- R(x,y), R(y,z), R(x,x)")) {}

  Valuation Make(std::int64_t x, std::int64_t y, std::int64_t z) {
    Valuation v(query_.NumVars());
    v.Bind(query_.VarIdOf("x"), Value(x));
    v.Bind(query_.VarIdOf("y"), Value(y));
    v.Bind(query_.VarIdOf("z"), Value(z));
    return v;
  }

  Schema schema_;
  ConjunctiveQuery query_;
};

TEST_F(MinimalValuationTest, PaperExample45NonMinimal) {
  // V1 = {x->a, y->b, z->a} requires {R(a,b), R(b,a), R(a,a)}; V2 = all->a
  // derives the same head H(a,a) from {R(a,a)} alone, so V1 is not minimal.
  EXPECT_FALSE(IsMinimalValuation(query_, Make(1, 2, 1)));
}

TEST_F(MinimalValuationTest, PaperExample45Minimal) {
  // V2 = {x->a, y->a, z->a} requires only R(a,a): minimal.
  EXPECT_TRUE(IsMinimalValuation(query_, Make(1, 1, 1)));
}

TEST_F(MinimalValuationTest, DistinctZRemainsMinimal) {
  // {x->a, y->a, z->b} requires {R(a,a), R(a,b)}; the head H(a,b) cannot be
  // derived from a single fact, so this valuation is minimal.
  EXPECT_TRUE(IsMinimalValuation(query_, Make(1, 1, 2)));
}

TEST_F(MinimalValuationTest, ThreeDistinctValuesMinimal) {
  // {x->a, y->b, z->c} derives H(a,c) with 3 facts; {x->a, y->a, z->c}
  // would derive H(a,c) from {R(a,a), R(a,c)} — but R(a,c) is not among the
  // required facts of V, so the competitor must use a subset of
  // {R(a,b), R(b,c), R(a,a)}. No smaller derivation of H(a,c) exists there.
  EXPECT_TRUE(IsMinimalValuation(query_, Make(1, 2, 3)));
}

TEST(MinimalValuation, SingleAtomQueriesAlwaysMinimal) {
  Schema schema;
  ConjunctiveQuery q = ParseQuery(schema, "H(x,y) <- R(x,y)");
  Valuation v(q.NumVars());
  v.Bind(q.FindVar("x"), Value(1));
  v.Bind(q.FindVar("y"), Value(2));
  EXPECT_TRUE(IsMinimalValuation(q, v));
}

TEST(MinimalValuation, ProjectionAllowsSmallerWitness) {
  // H(x) <- R(x,y): valuation {x->a, y->b} requires R(a,b) only, and any
  // derivation of H(a) needs one R-fact, so every valuation is minimal.
  Schema schema;
  ConjunctiveQuery q = ParseQuery(schema, "H(x) <- R(x,y), R(x,z)");
  // {x->a,y->b,z->c} requires {R(a,b), R(a,c)}; {x->a,y->b,z->b} derives
  // H(a) from {R(a,b)} alone -> non-minimal.
  Valuation v(q.NumVars());
  v.Bind(q.FindVar("x"), Value(1));
  v.Bind(q.FindVar("y"), Value(2));
  v.Bind(q.FindVar("z"), Value(3));
  EXPECT_FALSE(IsMinimalValuation(q, v));
  Valuation w(q.NumVars());
  w.Bind(q.FindVar("x"), Value(1));
  w.Bind(q.FindVar("y"), Value(2));
  w.Bind(q.FindVar("z"), Value(2));
  EXPECT_TRUE(IsMinimalValuation(q, w));
}

TEST(MinimalValuation, EnumerationFindsExactlyTheMinimalOnes) {
  Schema schema;
  const ConjunctiveQuery q =
      ParseQuery(schema, "H(x,z) <- R(x,y), R(y,z), R(x,x)");
  const std::vector<Value> universe = {Value(1), Value(2)};
  int minimal_count = 0;
  ForEachMinimalValuation(q, universe, [&minimal_count](const Valuation&) {
    ++minimal_count;
    return true;
  });
  // Count by checking each of the 8 valuations explicitly.
  int expected = 0;
  ForEachValuationOverUniverse(q, universe, [&](const Valuation& v) {
    if (IsMinimalValuation(q, v)) ++expected;
    return true;
  });
  EXPECT_EQ(minimal_count, expected);
  EXPECT_GT(minimal_count, 0);
}

TEST(MinimalValuation, InequalitiesRestrictCompetitors) {
  // With x != y in the query, the collapsing competitor {all->a} is not a
  // valid valuation, so the 2-element valuation becomes minimal.
  Schema schema;
  const ConjunctiveQuery q =
      ParseQuery(schema, "H(x,z) <- R(x,y), R(y,z), x != y");
  Valuation v(q.NumVars());
  v.Bind(q.FindVar("x"), Value(1));
  v.Bind(q.FindVar("y"), Value(2));
  v.Bind(q.FindVar("z"), Value(1));
  EXPECT_TRUE(IsMinimalValuation(q, v));
}

}  // namespace
}  // namespace lamp
