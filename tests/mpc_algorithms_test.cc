#include <gtest/gtest.h>

#include "common/rng.h"
#include "cq/eval.h"
#include "cq/parser.h"
#include "mpc/cascade.h"
#include "mpc/hypercube_run.h"
#include "mpc/join_strategies.h"
#include "mpc/shares_skew.h"
#include "mpc/skew.h"
#include "mpc/yannakakis.h"
#include "relational/generators.h"

namespace lamp {
namespace {

/// Shared workload builder: R and S random binary relations.
Instance MakeJoinInput(const Schema& schema, RelationId r, RelationId s,
                       std::size_t m, std::size_t domain, Rng& rng) {
  Instance inst;
  AddUniformRelation(schema, r, m, domain, rng, inst);
  AddUniformRelation(schema, s, m, domain, rng, inst);
  return inst;
}

class JoinStrategiesTest : public ::testing::Test {
 protected:
  JoinStrategiesTest()
      : q1_(ParseQuery(schema_, "H(x,y,z) <- R(x,y), S(y,z)")),
        r_(schema_.IdOf("R")),
        s_(schema_.IdOf("S")) {}

  Schema schema_;
  ConjunctiveQuery q1_;
  RelationId r_, s_;
};

TEST_F(JoinStrategiesTest, RepartitionJoinIsCorrect) {
  Rng rng(1);
  const Instance input = MakeJoinInput(schema_, r_, s_, 300, 80, rng);
  const MpcRunResult result = RepartitionJoin(q1_, input, 8, 3);
  EXPECT_EQ(result.output, Evaluate(q1_, input));
  EXPECT_EQ(result.stats.NumRounds(), 1u);
}

TEST_F(JoinStrategiesTest, FragmentReplicateJoinIsCorrect) {
  Rng rng(2);
  const Instance input = MakeJoinInput(schema_, r_, s_, 300, 80, rng);
  const MpcRunResult result = FragmentReplicateJoin(q1_, input, 9, 3);
  EXPECT_EQ(result.output, Evaluate(q1_, input));
}

TEST_F(JoinStrategiesTest, RepartitionDegradesUnderSkewFragmentDoesNot) {
  // Example 3.1: with a heavy join value, the repartition join piles a
  // constant fraction of the data onto one server, while the
  // fragment-replicate load stays ~m/sqrt(p).
  Rng rng(3);
  Instance skewed;
  const std::size_t m = 2000;
  // Half of each relation shares one join value: a maximal heavy hitter.
  for (std::size_t i = 0; i < m / 2; ++i) {
    skewed.Insert(Fact(r_, {static_cast<std::int64_t>(i), 0}));
    skewed.Insert(Fact(s_, {0, static_cast<std::int64_t>(i)}));
  }
  AddUniformRelation(schema_, r_, m / 2, 8 * m, rng, skewed);
  AddUniformRelation(schema_, s_, m / 2, 8 * m, rng, skewed);
  const std::size_t p = 64;
  const MpcRunResult repart = RepartitionJoin(q1_, skewed, p, 7);
  const MpcRunResult fragrep = FragmentReplicateJoin(q1_, skewed, p, 7);
  EXPECT_EQ(repart.output, fragrep.output);
  // Repartition: the heavy value's ~m tuples all land on one server.
  EXPECT_GE(repart.stats.MaxLoad(), m * 9 / 10);
  // Fragment-replicate: every server gets ~2m/sqrt(p) = m/4 tuples,
  // regardless of the skew.
  EXPECT_LT(fragrep.stats.MaxLoad(), m / 2);
  EXPECT_GT(repart.stats.MaxLoad(), 2 * fragrep.stats.MaxLoad());
}

TEST_F(JoinStrategiesTest, SkewFreeRepartitionIsWellBalanced) {
  Rng rng(4);
  Instance matching;
  // Matching databases: every value occurs once per column -> zero skew.
  AddMatchingRelation(schema_, r_, 1024, 0, rng, matching);
  // Overlap S's first column with R's second so the join is nonempty.
  AddMatchingRelation(schema_, s_, 1024, 1024, rng, matching);
  const MpcRunResult result = RepartitionJoin(q1_, matching, 8, 5);
  // Perfectly balanced loads: ~2m/p per server.
  EXPECT_LT(result.stats.MaxLoad(), 2 * 2 * 1024 / 8);
}

class HyperCubeRunTest : public ::testing::Test {
 protected:
  HyperCubeRunTest()
      : triangle_(
            ParseQuery(schema_, "H(x,y,z) <- R(x,y), S(y,z), T(z,x)")) {}

  Instance TriangleInput(std::size_t edges, std::size_t nodes,
                         std::uint64_t seed) {
    Rng rng(seed);
    Instance inst;
    AddRandomGraph(schema_, schema_.IdOf("R"), edges, nodes, rng, inst);
    AddRandomGraph(schema_, schema_.IdOf("S"), edges, nodes, rng, inst);
    AddRandomGraph(schema_, schema_.IdOf("T"), edges, nodes, rng, inst);
    return inst;
  }

  Schema schema_;
  ConjunctiveQuery triangle_;
};

TEST_F(HyperCubeRunTest, OutputMatchesCentralizedEvaluation) {
  const Instance input = TriangleInput(200, 40, 11);
  for (std::size_t p : {1u, 8u, 27u, 64u}) {
    const MpcRunResult result = RunHyperCubeUniform(triangle_, input, p, 2);
    EXPECT_EQ(result.output, Evaluate(triangle_, input)) << "p=" << p;
  }
}

TEST_F(HyperCubeRunTest, LpSharesMatchUniformForTriangle) {
  EXPECT_EQ(LpRoundedShares(triangle_, 27), Shares(3, 3));
}

TEST_F(HyperCubeRunTest, LpSharesConcentrateForJoin) {
  Schema schema;
  const ConjunctiveQuery join =
      ParseQuery(schema, "H(x,y,z) <- R(x,y), S(y,z)");
  const Shares shares = LpRoundedShares(join, 16);
  EXPECT_EQ(shares[join.FindVar("y")], 16u);
  EXPECT_EQ(shares[join.FindVar("x")], 1u);
}

TEST_F(HyperCubeRunTest, LoadScalesAsPredicted) {
  // Skew-free triangle: load ~ 3 * m / p^{2/3}; check p=8 halves p=1's
  // per-relation share within slack.
  const Instance input = TriangleInput(600, 3000, 13);
  const MpcRunResult p8 = RunHyperCubeUniform(triangle_, input, 8, 4);
  // Predicted: each server receives about 3 * m / p^{2/3} = 3*600/4 = 450.
  EXPECT_LT(p8.stats.MaxLoad(), 700u);
  EXPECT_GT(p8.stats.MaxLoad(), 200u);
}

TEST(CascadeTest, TwoRoundTriangleCascadeIsCorrect) {
  Schema schema;
  const ConjunctiveQuery triangle =
      ParseQuery(schema, "H(x,y,z) <- R(x,y), S(y,z), T(z,x)");
  Rng rng(17);
  Instance input;
  AddRandomGraph(schema, schema.IdOf("R"), 150, 30, rng, input);
  AddRandomGraph(schema, schema.IdOf("S"), 150, 30, rng, input);
  AddRandomGraph(schema, schema.IdOf("T"), 150, 30, rng, input);
  const Instance expected = Evaluate(triangle, input);

  const MpcRunResult result = CascadeJoin(schema, triangle, input, 8, 1);
  EXPECT_EQ(result.output, expected);
  EXPECT_EQ(result.stats.NumRounds(), 2u);  // Example 3.1(2): two rounds.
}

TEST(CascadeTest, PathQueryWithSelfJoin) {
  Schema schema;
  const ConjunctiveQuery path =
      ParseQuery(schema, "H(x,y,z) <- R(x,y), R(y,z)");
  Instance input;
  AddPathGraph(schema, schema.IdOf("R"), 30, input);
  const MpcRunResult result = CascadeJoin(schema, path, input, 4, 2);
  EXPECT_EQ(result.output, Evaluate(path, input));
}

TEST(CascadeTest, FourAtomChain) {
  Schema schema;
  const ConjunctiveQuery chain = ParseQuery(
      schema, "H(a,b,c,d,e) <- R1(a,b), R2(b,c), R3(c,d), R4(d,e)");
  Rng rng(23);
  Instance input;
  for (const char* rel : {"R1", "R2", "R3", "R4"}) {
    AddUniformRelation(schema, schema.IdOf(rel), 100, 25, rng, input);
  }
  const MpcRunResult result = CascadeJoin(schema, chain, input, 6, 3);
  EXPECT_EQ(result.output, Evaluate(chain, input));
  EXPECT_EQ(result.stats.NumRounds(), 3u);
}

TEST(CascadeTest, InequalitiesAppliedAtTheEnd) {
  Schema schema;
  const ConjunctiveQuery q =
      ParseQuery(schema, "H(x,y,z) <- R(x,y), S(y,z), x != z");
  Instance input;
  input.Insert(Fact(schema.IdOf("R"), {1, 2}));
  input.Insert(Fact(schema.IdOf("S"), {2, 1}));  // Would give x == z.
  input.Insert(Fact(schema.IdOf("S"), {2, 3}));
  const MpcRunResult result = CascadeJoin(schema, q, input, 4, 4);
  EXPECT_EQ(result.output, Evaluate(q, input));
  EXPECT_EQ(result.output.Size(), 1u);
}

TEST(SkewTest, SkewResilientTriangleIsCorrect) {
  Schema schema;
  const ConjunctiveQuery triangle =
      ParseQuery(schema, "H(x,y,z) <- R(x,y), S(y,z), T(z,x)");
  Rng rng(31);
  Instance input;
  AddZipfRelation(schema, schema.IdOf("R"), 500, 100, 1.2, 1, rng, input);
  AddZipfRelation(schema, schema.IdOf("S"), 500, 100, 1.2, 0, rng, input);
  AddUniformRelation(schema, schema.IdOf("T"), 500, 100, rng, input);
  const Instance expected = Evaluate(triangle, input);

  const MpcRunResult result = SkewResilientTriangle(triangle, input, 27, 5);
  EXPECT_EQ(result.output, expected);
  EXPECT_LE(result.stats.NumRounds(), 2u);
}

TEST(SkewTest, TwoRoundsBeatOneRoundUnderSkew) {
  // The Section 3.2 claim: under join-value skew, the one-round HyperCube
  // load degrades while the two-round algorithm stays near the skew-free
  // load.
  Schema schema;
  const ConjunctiveQuery triangle =
      ParseQuery(schema, "H(x,y,z) <- R(x,y), S(y,z), T(z,x)");
  Rng rng(37);
  Instance input;
  const std::size_t m = 4000;
  // Extreme skew: a single super-heavy join value in half the tuples.
  for (std::size_t i = 0; i < m / 2; ++i) {
    input.Insert(Fact(schema.IdOf("R"), {static_cast<std::int64_t>(i), 0}));
    input.Insert(Fact(schema.IdOf("S"), {0, static_cast<std::int64_t>(i)}));
  }
  AddUniformRelation(schema, schema.IdOf("R"), m / 2, 4 * m, rng, input);
  AddUniformRelation(schema, schema.IdOf("S"), m / 2, 4 * m, rng, input);
  AddUniformRelation(schema, schema.IdOf("T"), m, 4 * m, rng, input);

  const std::size_t p = 64;
  const MpcRunResult one_round = RunHyperCubeUniform(triangle, input, p, 9);
  const MpcRunResult two_rounds = SkewResilientTriangle(triangle, input, p, 9);
  EXPECT_EQ(one_round.output, two_rounds.output);
  // One round: the heavy value's R-tuples concentrate on a p^{1/3} x
  // p^{1/3} slice -> load >= (m/2) / p^{2/3} from the R relation alone,
  // but crucially all S-tuples of the heavy value hit the same slice too.
  // Two rounds spread the heavy residual over a dedicated grid.
  EXPECT_LT(two_rounds.stats.MaxLoad(), one_round.stats.MaxLoad());
}

TEST(YannakakisTest, SemijoinReduceRemovesDanglingTuples) {
  Schema schema;
  const ConjunctiveQuery path =
      ParseQuery(schema, "H(x,y,z) <- R(x,y), S(y,z)");
  Instance input;
  input.Insert(Fact(schema.IdOf("R"), {1, 2}));
  input.Insert(Fact(schema.IdOf("R"), {5, 6}));  // Dangling: no S(6, _).
  input.Insert(Fact(schema.IdOf("S"), {2, 3}));
  input.Insert(Fact(schema.IdOf("S"), {7, 8}));  // Dangling: no R(_, 7).
  const JoinTree tree = BuildJoinTree(path);
  const MpcRunResult reduced = SemijoinReduce(path, tree, input, 4, 0);
  EXPECT_EQ(reduced.output.Size(), 2u);
  EXPECT_TRUE(reduced.output.Contains(Fact(schema.IdOf("R"), {1, 2})));
  EXPECT_TRUE(reduced.output.Contains(Fact(schema.IdOf("S"), {2, 3})));
}

TEST(YannakakisTest, FullAlgorithmMatchesCentralized) {
  Schema schema;
  const ConjunctiveQuery chain = ParseQuery(
      schema, "H(x,y,z,w) <- R1(x,y), R2(y,z), R3(z,w)");
  Rng rng(41);
  Instance input;
  for (const char* rel : {"R1", "R2", "R3"}) {
    AddUniformRelation(schema, schema.IdOf(rel), 200, 40, rng, input);
  }
  const MpcRunResult result = YannakakisMpc(schema, chain, input, 8, 6);
  EXPECT_EQ(result.output, Evaluate(chain, input));
  // 2*(3-1) semijoin rounds + 2 join rounds.
  EXPECT_EQ(result.stats.NumRounds(), 6u);
}

TEST(YannakakisTest, IntermediateBoundedByReducedData) {
  // A chain where the plain cascade explodes but Yannakakis stays small:
  // R2 joins nothing in R3, so the full output is empty and the semijoin
  // phase wipes almost everything before the join phase.
  Schema schema;
  const ConjunctiveQuery chain =
      ParseQuery(schema, "H(x,y,z,w) <- R1(x,y), R2(y,z), R3(z,w)");
  Instance input;
  // R1 x R2 on y=0 is a 50x50 cartesian blow-up...
  for (int i = 0; i < 50; ++i) {
    input.Insert(Fact(schema.IdOf("R1"), {i, 0}));
    input.Insert(Fact(schema.IdOf("R2"), {0, 100 + i}));
  }
  // ...but no R3 tuple continues from any R2 endpoint.
  for (int i = 0; i < 50; ++i) {
    input.Insert(Fact(schema.IdOf("R3"), {500 + i, 600 + i}));
  }
  Schema cascade_schema = schema;
  const MpcRunResult plain =
      CascadeJoin(cascade_schema, chain, input, 4, 7);
  const MpcRunResult yan = YannakakisMpc(schema, chain, input, 4, 7);
  EXPECT_TRUE(plain.output.Empty());
  EXPECT_TRUE(yan.output.Empty());
  // The cascade communicated the 2500-tuple intermediate; Yannakakis did
  // not (its join phase ran on an empty reduced database).
  EXPECT_GT(plain.stats.TotalCommunication(),
            2 * yan.stats.TotalCommunication());
}


TEST(SharesSkewTest, OneRoundSkewAwareJoinIsCorrect) {
  Schema schema;
  const ConjunctiveQuery join =
      ParseQuery(schema, "H(x,y,z) <- R(x,y), S(y,z)");
  Rng rng(51);
  Instance input;
  const std::size_t m = 2000;
  // Heavy value 0 in R, small matching S side (linear output).
  for (std::size_t i = 0; i < m / 2; ++i) {
    input.Insert(Fact(schema.IdOf("R"), {static_cast<std::int64_t>(i), 0}));
  }
  for (std::size_t i = 0; i < 8; ++i) {
    input.Insert(Fact(schema.IdOf("S"), {0, static_cast<std::int64_t>(i)}));
  }
  AddUniformRelation(schema, schema.IdOf("R"), m / 2, 16 * m, rng, input);
  AddUniformRelation(schema, schema.IdOf("S"), m - 8, 16 * m, rng, input);

  const MpcRunResult result = SharesSkewJoin(join, input, 64, 3);
  EXPECT_EQ(result.output, Evaluate(join, input));
  EXPECT_EQ(result.stats.NumRounds(), 1u);  // One round, unlike BKS 2-round.
}

TEST(SharesSkewTest, BeatsRepartitionUnderSkew) {
  Schema schema;
  const ConjunctiveQuery join =
      ParseQuery(schema, "H(x,y,z) <- R(x,y), S(y,z)");
  Rng rng(52);
  Instance input;
  const std::size_t m = 4000;
  for (std::size_t i = 0; i < m / 2; ++i) {
    input.Insert(Fact(schema.IdOf("R"), {static_cast<std::int64_t>(i), 0}));
  }
  for (std::size_t i = 0; i < 8; ++i) {
    input.Insert(Fact(schema.IdOf("S"), {0, static_cast<std::int64_t>(i)}));
  }
  AddUniformRelation(schema, schema.IdOf("R"), m / 2, 16 * m, rng, input);
  AddUniformRelation(schema, schema.IdOf("S"), m - 8, 16 * m, rng, input);

  const std::size_t p = 64;
  const MpcRunResult repart = RepartitionJoin(join, input, p, 3);
  const MpcRunResult skew_aware = SharesSkewJoin(join, input, p, 3);
  EXPECT_EQ(repart.output, skew_aware.output);
  // Repartition pins the heavy value's ~m/2 tuples on one server;
  // SharesSkew spreads them over its sub-grid.
  EXPECT_GT(repart.stats.MaxLoad(), 2 * skew_aware.stats.MaxLoad());
}

TEST(SharesSkewTest, NoHeavyHittersFallsBackToHashing) {
  Schema schema;
  const ConjunctiveQuery join =
      ParseQuery(schema, "H(x,y,z) <- R(x,y), S(y,z)");
  Rng rng(53);
  Instance input;
  AddMatchingRelation(schema, schema.IdOf("R"), 1000, 0, rng, input);
  AddMatchingRelation(schema, schema.IdOf("S"), 1000, 1000, rng, input);
  const MpcRunResult result = SharesSkewJoin(join, input, 16, 3);
  EXPECT_EQ(result.output, Evaluate(join, input));
  // Matching data: balanced like the plain repartition join.
  EXPECT_LT(result.stats.MaxLoad(), 2 * 2 * 1000 / 16 + 64);
}

}  // namespace
}  // namespace lamp
