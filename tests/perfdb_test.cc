// Unit tests for the perf database (src/obs/perfdb.h): summary
// statistics over repeats, tolerant JSON-lines ingestion, summary
// round-tripping, and the noise-aware regression diff. The diff cases
// deliberately include "noisy but not regressed": a median shift that
// clears the relative tolerance yet stays within the observed
// run-to-run noise must NOT be flagged.

#include "obs/perfdb.h"

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <string>
#include <vector>

#include "obs/json.h"

namespace lamp::obs {
namespace {

JsonValue MakeRecord(const std::string& bench, const std::string& params,
                     int threads, std::uint64_t wall_ns) {
  const std::string line = "{\"bench\":\"" + bench + "\",\"params\":" + params +
                           ",\"metrics\":{\"x\":1},\"threads\":" +
                           std::to_string(threads) +
                           ",\"repeat\":0,\"wall_ms\":0.1,\"wall_ns\":" +
                           std::to_string(wall_ns) + "}";
  auto parsed = JsonValue::Parse(line);
  EXPECT_TRUE(parsed.has_value()) << line;
  return *parsed;
}

PerfSummary MakeSummary(double median_ns, double stddev_ns,
                        std::size_t count = 5) {
  PerfSummary s;
  s.count = count;
  s.median_ns = median_ns;
  s.mean_ns = median_ns;
  s.min_ns = static_cast<std::uint64_t>(median_ns / 2);
  s.max_ns = static_cast<std::uint64_t>(median_ns * 2);
  s.stddev_ns = stddev_ns;
  s.cv = median_ns > 0 ? stddev_ns / median_ns : 0.0;
  return s;
}

TEST(SummarizeTest, EvenSampleCount) {
  const PerfSummary s = Summarize({400, 100, 300, 200});
  EXPECT_EQ(s.count, 4u);
  EXPECT_EQ(s.min_ns, 100u);
  EXPECT_EQ(s.max_ns, 400u);
  EXPECT_DOUBLE_EQ(s.mean_ns, 250.0);
  EXPECT_DOUBLE_EQ(s.median_ns, 250.0);  // Mean of the middle two.
  // Sample stddev: sqrt((150^2 + 50^2 + 50^2 + 150^2) / 3).
  EXPECT_NEAR(s.stddev_ns, std::sqrt(50000.0 / 3.0), 1e-9);
  EXPECT_NEAR(s.cv, s.stddev_ns / 250.0, 1e-12);
}

TEST(SummarizeTest, OddSampleCountAndSingletons) {
  const PerfSummary odd = Summarize({30, 10, 20});
  EXPECT_DOUBLE_EQ(odd.median_ns, 20.0);
  EXPECT_DOUBLE_EQ(odd.mean_ns, 20.0);

  const PerfSummary one = Summarize({42});
  EXPECT_EQ(one.count, 1u);
  EXPECT_DOUBLE_EQ(one.median_ns, 42.0);
  EXPECT_DOUBLE_EQ(one.stddev_ns, 0.0);
  EXPECT_DOUBLE_EQ(one.cv, 0.0);

  const PerfSummary none = Summarize({});
  EXPECT_EQ(none.count, 0u);
}

TEST(PerfDbTest, AddRejectsMalformedRecords) {
  PerfDb db;
  std::string error;

  EXPECT_TRUE(db.Add(MakeRecord("b", "{\"n\":1}", 2, 1000)));
  EXPECT_EQ(db.NumRecords(), 1u);

  // Missing bench.
  auto no_bench = JsonValue::Parse("{\"params\":{},\"wall_ns\":1}");
  ASSERT_TRUE(no_bench.has_value());
  EXPECT_FALSE(db.Add(*no_bench, &error));
  EXPECT_FALSE(error.empty());

  // params is not an object.
  auto bad_params =
      JsonValue::Parse("{\"bench\":\"b\",\"params\":[1],\"wall_ns\":1}");
  ASSERT_TRUE(bad_params.has_value());
  EXPECT_FALSE(db.Add(*bad_params, &error));

  // wall_ns missing.
  auto no_wall = JsonValue::Parse("{\"bench\":\"b\",\"params\":{}}");
  ASSERT_TRUE(no_wall.has_value());
  EXPECT_FALSE(db.Add(*no_wall, &error));

  // Rejections must not have touched the store.
  EXPECT_EQ(db.NumRecords(), 1u);
}

TEST(PerfDbTest, IngestJsonLinesToleratesGarbage) {
  PerfDb db;
  const std::string text =
      "# bench-json: comment line, skipped\n"
      "{\"bench\":\"b\",\"params\":{\"n\":1},\"threads\":1,\"wall_ns\":100}\n"
      "\n"
      "not json at all\n"
      "{\"bench\":\"b\",\"params\":{\"n\":1},\"threads\":1,\"wall_ns\":200}\n"
      "{\"bench\":\"b\",\"params\":\"oops\",\"wall_ns\":3}\n";
  const PerfDb::LoadStats stats = db.IngestJsonLines(text);
  EXPECT_EQ(stats.records, 2u);
  EXPECT_EQ(stats.malformed, 2u);
  EXPECT_EQ(stats.errors.size(), 2u);
  EXPECT_EQ(db.NumRecords(), 2u);

  // Both valid records share a key; the summary covers both samples.
  const auto summaries = db.Summaries();
  ASSERT_EQ(summaries.size(), 1u);
  const PerfSummary& s = summaries.begin()->second;
  EXPECT_EQ(s.count, 2u);
  EXPECT_DOUBLE_EQ(s.median_ns, 150.0);
}

TEST(PerfDbTest, KeysSeparateBenchParamsAndThreads) {
  PerfDb db;
  ASSERT_TRUE(db.Add(MakeRecord("a", "{\"n\":1}", 1, 10)));
  ASSERT_TRUE(db.Add(MakeRecord("a", "{\"n\":1}", 4, 10)));
  ASSERT_TRUE(db.Add(MakeRecord("a", "{\"n\":2}", 1, 10)));
  ASSERT_TRUE(db.Add(MakeRecord("b", "{\"n\":1}", 1, 10)));
  EXPECT_EQ(db.Summaries().size(), 4u);

  const PerfKey key{"a", "{\"n\":1}", 4};
  EXPECT_NE(key.Label().find("a"), std::string::npos);
  EXPECT_NE(key.Label().find("4"), std::string::npos);
}

TEST(PerfDbTest, SummariesRoundTripThroughJson) {
  PerfDb db;
  for (std::uint64_t ns : {1000u, 1100u, 1200u}) {
    ASSERT_TRUE(db.Add(MakeRecord("rt", "{\"n\":8,\"mode\":\"x\"}", 2, ns)));
  }
  ASSERT_TRUE(db.Add(MakeRecord("rt", "{\"n\":16}", 1, 500)));

  const JsonValue json = db.SummariesToJson();
  const JsonValue* arr = json.Find("summaries");
  ASSERT_TRUE(arr != nullptr && arr->IsArray());

  const auto direct = db.Summaries();
  const auto parsed = SummariesFromJson(json);
  ASSERT_EQ(parsed.size(), direct.size());
  for (const auto& [key, want] : direct) {
    const auto it = parsed.find(key);
    ASSERT_NE(it, parsed.end()) << key.Label();
    EXPECT_EQ(it->second.count, want.count);
    EXPECT_DOUBLE_EQ(it->second.median_ns, want.median_ns);
    EXPECT_DOUBLE_EQ(it->second.stddev_ns, want.stddev_ns);
  }

  // The serialised text itself must round-trip through the parser.
  const auto reparsed = JsonValue::Parse(json.Dump());
  ASSERT_TRUE(reparsed.has_value());
  EXPECT_EQ(SummariesFromJson(*reparsed).size(), direct.size());
}

TEST(DiffTest, FlagsGenuineRegressionsAndImprovements) {
  std::map<PerfKey, PerfSummary> base, cur;
  const PerfKey slow{"bench", "{\"n\":1}", 1};
  const PerfKey fast{"bench", "{\"n\":2}", 1};
  base[slow] = MakeSummary(1.0e6, 1.0e4);
  cur[slow] = MakeSummary(1.5e6, 1.2e4);  // +50%, far beyond noise.
  base[fast] = MakeSummary(1.0e6, 1.0e4);
  cur[fast] = MakeSummary(6.0e5, 1.0e4);  // -40%.

  const DiffReport report = DiffSummaries(base, cur, DiffThresholds{});
  EXPECT_EQ(report.num_regressed, 1u);
  EXPECT_EQ(report.num_improved, 1u);
  EXPECT_TRUE(report.HasRegressions());
  ASSERT_FALSE(report.entries.empty());
  // Regressions sort first.
  EXPECT_EQ(report.entries.front().status, DiffStatus::kRegressed);
  EXPECT_EQ(report.entries.front().key, slow);
  EXPECT_NEAR(report.entries.front().delta_rel, 0.5, 1e-9);
}

TEST(DiffTest, NoisyButNotRegressed) {
  // The acceptance case: median rose 30% (past the 10% tolerance), but
  // the run-to-run stddev is 200us, so the 300us delta sits inside
  // noise_mult(3) * 200us = 600us. Must be reported unchanged.
  std::map<PerfKey, PerfSummary> base, cur;
  const PerfKey key{"noisy", "{\"n\":1}", 1};
  base[key] = MakeSummary(1.0e6, 2.0e5);
  cur[key] = MakeSummary(1.3e6, 1.5e5);

  const DiffReport report = DiffSummaries(base, cur, DiffThresholds{});
  EXPECT_EQ(report.num_regressed, 0u);
  EXPECT_EQ(report.num_unchanged, 1u);
  EXPECT_FALSE(report.HasRegressions());
  ASSERT_EQ(report.entries.size(), 1u);
  EXPECT_EQ(report.entries[0].status, DiffStatus::kUnchanged);
  EXPECT_DOUBLE_EQ(report.entries[0].noise_ns, 2.0e5);
}

TEST(DiffTest, SmallAbsoluteDeltasAreIgnored) {
  // 3x relative blowup, zero noise — but only 20us absolute, under the
  // 50us floor. Sub-microsecond configs must not flake on jitter.
  std::map<PerfKey, PerfSummary> base, cur;
  const PerfKey key{"tiny", "{\"n\":1}", 1};
  base[key] = MakeSummary(1.0e4, 0.0);
  cur[key] = MakeSummary(3.0e4, 0.0);

  const DiffReport report = DiffSummaries(base, cur, DiffThresholds{});
  EXPECT_EQ(report.num_regressed, 0u);
  EXPECT_EQ(report.num_unchanged, 1u);
}

TEST(DiffTest, NewAndMissingKeys) {
  std::map<PerfKey, PerfSummary> base, cur;
  base[PerfKey{"old", "{}", 1}] = MakeSummary(1.0e6, 1.0e3);
  cur[PerfKey{"new", "{}", 1}] = MakeSummary(1.0e6, 1.0e3);

  const DiffReport report = DiffSummaries(base, cur, DiffThresholds{});
  EXPECT_EQ(report.num_new, 1u);
  EXPECT_EQ(report.num_missing, 1u);
  EXPECT_EQ(report.num_regressed, 0u);
  EXPECT_FALSE(report.HasRegressions());
}

TEST(DiffTest, RendersConsoleAndMarkdown) {
  std::map<PerfKey, PerfSummary> base, cur;
  const PerfKey key{"render_bench", "{\"n\":1}", 2};
  base[key] = MakeSummary(1.0e6, 1.0e3);
  cur[key] = MakeSummary(2.0e6, 1.0e3);

  const DiffReport report = DiffSummaries(base, cur, DiffThresholds{});
  ASSERT_TRUE(report.HasRegressions());
  const std::string console = report.RenderConsole();
  EXPECT_NE(console.find("render_bench"), std::string::npos) << console;
  EXPECT_NE(console.find("REGRESSED"), std::string::npos) << console;
  const std::string md = report.RenderMarkdown();
  EXPECT_NE(md.find("render_bench"), std::string::npos) << md;
  EXPECT_NE(md.find("|"), std::string::npos) << md;
}

}  // namespace
}  // namespace lamp::obs
