#include <gtest/gtest.h>

#include <limits>

#include "cq/eval.h"
#include "cq/parser.h"
#include "datalog/eval.h"
#include "datalog/program.h"
#include "fault/confluence.h"
#include "fault/explorer.h"
#include "fault/plan.h"
#include "fault/scheduler.h"
#include "net/consistency.h"
#include "net/datalog_program.h"
#include "net/network.h"
#include "net/programs.h"
#include "obs/trace.h"
#include "relational/generators.h"

namespace lamp {
namespace {

using fault::FaultClass;
using fault::FaultEvent;
using fault::FaultPlan;
using fault::FaultScheduler;

/// The transitive-closure pipeline used as the monotone workhorse: 8-node
/// path graph sharded round-robin over 3 nodes. Schedule-sensitive (the
/// number of deliveries depends on pipelining order), so it pins the
/// scheduler, not just the fixpoint.
struct TcFixture {
  TcFixture() : prog(ParseProgram(schema,
                                  "TC(x,y) <- E(x,y)\n"
                                  "TC(x,y) <- TC(x,z), E(z,y)")) {
    AddPathGraph(schema, schema.IdOf("E"), 8, edges);
    const Instance everything = EvaluateProgram(schema, prog, edges);
    for (const Fact& f : everything.FactsOf(schema.IdOf("TC"))) {
      expected.Insert(f);
    }
  }

  Schema schema;
  DatalogProgram prog;
  Instance edges;
  Instance expected;
};

std::uint64_t TraceHash(const obs::Tracer& tracer) {
  // FNV-1a over the (kind, a, b, value) event sequence: any change in
  // delivery order, actor choice or payload changes the hash. Restricted
  // to the event kinds the pre-refactor runner emitted, so the golden
  // keeps pinning scheduler behaviour rather than instrumentation
  // density (the causal-audit events added later are derived from the
  // same deliveries and add no scheduling information).
  std::uint64_t h = 1469598103934665603ull;
  auto mix = [&h](std::uint64_t x) {
    h ^= x;
    h *= 1099511628211ull;
  };
  for (const obs::TraceEvent& e : tracer.Events()) {
    if (e.kind == obs::EventKind::kNetCausalDeliver ||
        e.kind == obs::EventKind::kNetOutput ||
        e.kind == obs::EventKind::kTransportConnect ||
        e.kind == obs::EventKind::kTransportSend ||
        e.kind == obs::EventKind::kTransportRecv) {
      continue;
    }
    mix(static_cast<std::uint64_t>(e.kind));
    mix(e.a);
    mix(e.b);
    mix(e.value);
  }
  return h;
}

TEST(SchedulerRefactorTest, RunIsByteIdenticalToHistoricalSeeds) {
  // The Scheduler extraction must not perturb Run(seed): same Rng call
  // sequence, same deliveries, same counters, same trace — pinned here
  // against values captured from the pre-refactor runner.
  struct Golden {
    std::size_t msgs, facts, trans;
    std::uint64_t hash;
  };
  const Golden golden[5] = {
      {26, 130, 26, 10312317238477287435ull},
      {22, 90, 22, 6654866248234487841ull},
      {20, 92, 20, 4952100391297443909ull},
      {28, 142, 28, 13953769489905625384ull},
      {24, 134, 24, 18365143386655690863ull},
  };

  TcFixture tc;
  DistributedDatalogProgram program(tc.schema, tc.prog);
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    TransducerNetwork net(DistributeRoundRobin(tc.edges, 3), program,
                          nullptr, /*aware=*/false);
    obs::Tracer tracer;
    NetworkRunResult r;
    {
      obs::ScopedTracer install(tracer);
      r = net.Run(seed);
    }
    EXPECT_EQ(r.output, tc.expected) << "seed " << seed;
    EXPECT_EQ(r.messages_sent(), golden[seed].msgs) << "seed " << seed;
    EXPECT_EQ(r.facts_transferred(), golden[seed].facts) << "seed " << seed;
    EXPECT_EQ(r.transitions(), golden[seed].trans) << "seed " << seed;
    EXPECT_EQ(TraceHash(tracer), golden[seed].hash) << "seed " << seed;
  }
}

TEST(SchedulerRefactorTest, RunDelegatesToRandomScheduler) {
  // Run(seed) and RunWith(RandomScheduler(seed)) are the same run.
  TcFixture tc;
  DistributedDatalogProgram program(tc.schema, tc.prog);
  for (std::uint64_t seed : {0u, 7u, 42u}) {
    TransducerNetwork a(DistributeRoundRobin(tc.edges, 3), program, nullptr,
                        false);
    TransducerNetwork b(DistributeRoundRobin(tc.edges, 3), program, nullptr,
                        false);
    RandomScheduler scheduler(seed);
    const NetworkRunResult ra = a.Run(seed);
    const NetworkRunResult rb = b.RunWith(scheduler);
    EXPECT_EQ(ra.output, rb.output);
    EXPECT_EQ(ra.messages_sent(), rb.messages_sent());
    EXPECT_EQ(ra.facts_transferred(), rb.facts_transferred());
    EXPECT_EQ(ra.transitions(), rb.transitions());
  }
}

TEST(FaultSchedulerTest, DeterministicInPlanAndSeed) {
  TcFixture tc;
  DistributedDatalogProgram program(tc.schema, tc.prog);
  Rng plan_rng(99);
  const FaultPlan plan = fault::RandomFaultPlan(3, plan_rng);
  for (int rep = 0; rep < 2; ++rep) {
    FaultScheduler s1(plan, 5);
    FaultScheduler s2(plan, 5);
    TransducerNetwork n1(DistributeRoundRobin(tc.edges, 3), program, nullptr,
                         false);
    TransducerNetwork n2(DistributeRoundRobin(tc.edges, 3), program, nullptr,
                         false);
    const NetworkRunResult r1 = n1.RunWith(s1);
    const NetworkRunResult r2 = n2.RunWith(s2);
    EXPECT_EQ(r1.output, r2.output);
    EXPECT_EQ(r1.transitions(), r2.transitions());
    EXPECT_EQ(r1.facts_transferred(), r2.facts_transferred());
  }
}

TEST(FaultSchedulerTest, DropStormRetransmitsAndConverges) {
  // Drops postpone delivery but never lose it: the monotone program still
  // computes TC, with the failed attempts visible in the counters.
  TcFixture tc;
  DistributedDatalogProgram program(tc.schema, tc.prog);
  FaultScheduler scheduler(fault::DropStormPlan(0, 10), 1);
  TransducerNetwork net(DistributeRoundRobin(tc.edges, 3), program, nullptr,
                        false);
  const NetworkRunResult r = net.RunWith(scheduler);
  EXPECT_EQ(r.output, tc.expected);
  EXPECT_EQ(r.metrics.CounterValue(obs::kNetFaultDrops), 10u);
}

TEST(FaultSchedulerTest, DuplicateStormConvergesForMonotone) {
  TcFixture tc;
  DistributedDatalogProgram program(tc.schema, tc.prog);
  FaultScheduler scheduler(fault::DuplicateStormPlan(0, 8), 2);
  TransducerNetwork net(DistributeRoundRobin(tc.edges, 3), program, nullptr,
                        false);
  const NetworkRunResult r = net.RunWith(scheduler);
  EXPECT_EQ(r.output, tc.expected);
  EXPECT_EQ(r.metrics.CounterValue(obs::kNetFaultDuplicates), 8u);
}

TEST(FaultSchedulerTest, VolatileCrashLosesStateButChannelRedelivers) {
  // A volatile crash wipes node state; the consumed-message log is
  // requeued on restart, so the monotone fixpoint is still reached.
  TcFixture tc;
  DistributedDatalogProgram program(tc.schema, tc.prog);
  FaultScheduler scheduler(
      fault::CrashRestartPlan(1, 3, 9, /*durable=*/false), 0);
  EXPECT_TRUE(scheduler.WantsRedeliveryLog());
  TransducerNetwork net(DistributeRoundRobin(tc.edges, 3), program, nullptr,
                        false);
  const NetworkRunResult r = net.RunWith(scheduler);
  EXPECT_EQ(r.output, tc.expected);
  EXPECT_EQ(r.metrics.CounterValue(obs::kNetFaultCrashes), 1u);
  EXPECT_EQ(r.metrics.CounterValue(obs::kNetFaultRestarts), 1u);
}

TEST(FaultSchedulerTest, DurableCrashKeepsState) {
  TcFixture tc;
  DistributedDatalogProgram program(tc.schema, tc.prog);
  FaultScheduler scheduler(
      fault::CrashRestartPlan(0, 2, 12, /*durable=*/true), 3);
  EXPECT_FALSE(scheduler.WantsRedeliveryLog());
  TransducerNetwork net(DistributeRoundRobin(tc.edges, 3), program, nullptr,
                        false);
  const NetworkRunResult r = net.RunWith(scheduler);
  EXPECT_EQ(r.output, tc.expected);
  EXPECT_EQ(r.metrics.CounterValue(obs::kNetFaultRetransmits), 0u);
}

TEST(FaultSchedulerTest, PartitionHeldUntilQuiescenceIsForcedToHeal) {
  // heal@quiescence never fires on its own; the scheduler must force the
  // heal once both sides are internally quiescent, and the run still
  // converges to Q(I).
  TcFixture tc;
  DistributedDatalogProgram program(tc.schema, tc.prog);
  FaultScheduler scheduler(fault::PartitionHealPlan(
      {0}, 0, std::numeric_limits<std::size_t>::max()), 4);
  TransducerNetwork net(DistributeRoundRobin(tc.edges, 3), program, nullptr,
                        false);
  const NetworkRunResult r = net.RunWith(scheduler);
  EXPECT_EQ(r.output, tc.expected);
  EXPECT_GE(scheduler.forced_recoveries(), 1u);
}

TEST(FaultSchedulerTest, StallAndStarveStillConverge) {
  TcFixture tc;
  DistributedDatalogProgram program(tc.schema, tc.prog);
  {
    FaultScheduler scheduler(fault::StallPlan(2, 0, 20), 5);
    TransducerNetwork net(DistributeRoundRobin(tc.edges, 3), program,
                          nullptr, false);
    EXPECT_EQ(net.RunWith(scheduler).output, tc.expected);
  }
  {
    FaultScheduler scheduler(fault::StarvePlan(0), 5);
    TransducerNetwork net(DistributeRoundRobin(tc.edges, 3), program,
                          nullptr, false);
    EXPECT_EQ(net.RunWith(scheduler).output, tc.expected);
  }
}

TEST(FaultPlanTest, ToStringRendersEventsAndQuiescence) {
  FaultPlan plan = fault::CrashRestartPlan(2, 5, 9, /*durable=*/false);
  FaultEvent dup;
  dup.kind = FaultEvent::Kind::kDuplicateNext;
  dup.step = 3;
  plan.events.push_back(dup);
  FaultEvent heal;
  heal.kind = FaultEvent::Kind::kHeal;
  heal.step = std::numeric_limits<std::size_t>::max();
  plan.events.push_back(heal);
  plan.Normalize();
  EXPECT_EQ(plan.ToString(),
            "discipline=uniform events=[dup@3 crash(n2,volatile)@5 "
            "restart(n2)@9 heal@quiescence]");
  EXPECT_TRUE(plan.HasVolatileCrash());

  const FaultPlan starve = fault::StarvePlan(1);
  EXPECT_EQ(starve.ToString(), "discipline=starve(n1) events=[]");
  EXPECT_FALSE(starve.Empty());  // A non-uniform discipline is a fault.
  EXPECT_TRUE(FaultPlan{}.Empty());
}

TEST(FaultPlanTest, ToJsonRoundTripsThroughParser) {
  FaultPlan plan = fault::PartitionHealPlan({0, 2}, 1, 7);
  const std::string dumped = plan.ToJson().Dump();
  const auto parsed = obs::JsonValue::Parse(dumped);
  ASSERT_TRUE(parsed.has_value());
  const obs::JsonValue* events = parsed->Find("events");
  ASSERT_NE(events, nullptr);
  EXPECT_EQ(events->size(), 2u);
  EXPECT_EQ(events->at(0).Find("kind")->AsString(), "partition");
  EXPECT_EQ(events->at(0).Find("group")->size(), 2u);
  EXPECT_EQ(events->at(1).Find("kind")->AsString(), "heal");
}

TEST(DiffInstancesTest, CountsAndSummarizesBothDirections) {
  Schema schema;
  const RelationId e = schema.AddRelation("E", 2);
  Instance actual, expected;
  actual.Insert(Fact(e, {1, 2}));   // Unexpected.
  actual.Insert(Fact(e, {3, 4}));   // Shared.
  expected.Insert(Fact(e, {3, 4}));
  expected.Insert(Fact(e, {5, 6}));  // Missing.

  const InstanceDiff diff = DiffInstances(actual, expected, &schema);
  EXPECT_EQ(diff.unexpected, 1u);
  EXPECT_EQ(diff.missing, 1u);
  EXPECT_FALSE(diff.Empty());
  EXPECT_EQ(diff.summary, "+E(1,2) -E(5,6)");

  const InstanceDiff none = DiffInstances(expected, expected, &schema);
  EXPECT_TRUE(none.Empty());
  EXPECT_EQ(none.summary, "");
}

TEST(DiffInstancesTest, ElidesBeyondMaxListed) {
  Schema schema;
  const RelationId e = schema.AddRelation("E", 1);
  Instance actual, expected;
  for (int i = 0; i < 6; ++i) expected.Insert(Fact(e, {i}));
  const InstanceDiff diff = DiffInstances(actual, expected, &schema, 2);
  EXPECT_EQ(diff.missing, 6u);
  EXPECT_NE(diff.summary.find("(+4 more)"), std::string::npos);
}

TEST(SweepFailureTest, FirstFailureCarriesContext) {
  // Satellite (a): a failing sweep reports which seed and distribution
  // broke first, and what the output diff looked like.
  Schema schema;
  schema.AddRelation("E", 2);
  const ConjunctiveQuery open_triangle =
      ParseQuery(schema, "H(x,y,z) <- E(x,y), E(y,z), !E(z,x)");
  Rng rng(3);
  Instance graph;
  AddRandomGraph(schema, schema.IdOf("E"), 40, 12, rng, graph);
  const Instance expected = Evaluate(open_triangle, graph);

  MonotoneBroadcastProgram program([&open_triangle](const Instance& i) {
    return Evaluate(open_triangle, i);
  });
  std::vector<std::vector<Instance>> distributions = {
      DistributeRoundRobin(graph, 4)};
  const ConsistencySweep sweep =
      CheckEventualConsistency(program, distributions, expected, 5, nullptr,
                               /*aware=*/false, &schema);
  ASSERT_FALSE(sweep.all_runs_correct);
  ASSERT_TRUE(sweep.first_failure.has_value());
  EXPECT_EQ(sweep.first_failure->distribution_index, 0u);
  EXPECT_LT(sweep.first_failure->seed, 5u);
  EXPECT_FALSE(sweep.first_failure->diff.Empty());
  EXPECT_FALSE(sweep.first_failure->diff.summary.empty());
  // Schema-aware rendering: facts print by relation name.
  EXPECT_NE(sweep.first_failure->diff.summary.find("H("), std::string::npos);
}

TEST(FragileBarrierTest, CorrectOnEveryFaultFreeSchedule) {
  // The fragile barrier counts messages instead of distinct markers; on
  // an exactly-once network the two coincide, so clean runs are correct.
  Schema schema;
  schema.AddRelation("E", 2);
  const ConjunctiveQuery open_triangle =
      ParseQuery(schema, "H(x,y,z) <- E(x,y), E(y,z), !E(z,x)");
  Rng rng(4);
  Instance graph;
  AddRandomGraph(schema, schema.IdOf("E"), 30, 10, rng, graph);
  const Instance expected = Evaluate(open_triangle, graph);
  ASSERT_FALSE(expected.Empty());

  Schema scratch = schema;
  FragileCountingBarrierProgram program(
      [&open_triangle](const Instance& i) {
        return Evaluate(open_triangle, i);
      },
      scratch);
  std::vector<std::vector<Instance>> distributions = {
      DistributeRoundRobin(graph, 3), DistributeRoundRobin(graph, 4)};
  const ConsistencySweep sweep = CheckEventualConsistency(
      program, distributions, expected, 8, nullptr, /*aware=*/true);
  EXPECT_TRUE(sweep.all_runs_correct);
  EXPECT_EQ(sweep.runs, 16u);
}

TEST(FaultSweepTest, MonotoneSurvivesEveryClassSmoke) {
  // One-seed smoke over all classes; the thorough sweep lives in
  // fault_property_test.cc.
  TcFixture tc;
  DistributedDatalogProgram program(tc.schema, tc.prog);
  std::vector<std::vector<Instance>> distributions = {
      DistributeRoundRobin(tc.edges, 3)};
  for (FaultClass fault_class : fault::kAllFaultClasses) {
    const fault::FaultSweep sweep = fault::CheckConsistencyUnderFaults(
        program, distributions, tc.expected, fault_class, 2, nullptr,
        /*aware=*/false);
    EXPECT_TRUE(sweep.all_runs_correct)
        << fault::FaultClassName(fault_class) << ": "
        << (sweep.first_failure.has_value()
                ? sweep.first_failure->plan.ToString()
                : "");
    EXPECT_EQ(sweep.runs, 2u);
  }
}

}  // namespace
}  // namespace lamp
