// Golden-file test for the Chrome Trace Event export
// (src/obs/chrome_trace.h). A synthetic lamp.trace.v1 document with
// fixed timestamps exercises every mapping rule — span → "X" complete
// event, instants, per-kind counter tracks, shard → tid, dropped-count
// passthrough — and the exported JSON must match
// tests/golden/chrome_trace_golden.json byte for byte.
//
// Regenerate the golden after an intentional format change with:
//   LAMP_REGEN_GOLDEN=1 ./build/tests/chrome_trace_test

#include "obs/chrome_trace.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "obs/json.h"
#include "obs/trace.h"

#ifndef LAMP_TESTS_DIR
#error "tests/CMakeLists.txt must define LAMP_TESTS_DIR"
#endif

namespace lamp::obs {
namespace {

// Fixed timestamps, two shards, one span, every counter-mapped kind,
// and a non-zero dropped count.
constexpr const char kSyntheticTrace[] = R"({
  "schema": "lamp.trace.v1",
  "capacity": 65536,
  "total_emitted": 8,
  "dropped": 2,
  "shards": 2,
  "events": [
    {"t_ns": 1000, "kind": "mpc.round_begin", "a": 1, "b": 0, "value": 0, "shard": 0},
    {"t_ns": 5000, "kind": "mpc.round_end", "a": 1, "b": 0, "value": 120, "shard": 0},
    {"t_ns": 6000, "kind": "net.broadcast", "a": 3, "b": 7, "value": 42, "shard": 1},
    {"t_ns": 7000, "kind": "net.deliver", "a": 7, "b": 3, "value": 42, "shard": 1},
    {"t_ns": 8000, "kind": "datalog.iteration", "a": 2, "b": 0, "value": 9, "shard": 0},
    {"t_ns": 9000, "kind": "span", "a": 4, "b": 0, "value": 4000, "shard": 1, "label": "eval"},
    {"t_ns": 9500, "kind": "mpc.server_load", "a": 5, "b": 0, "value": 77, "shard": 1}
  ]
})";

std::string GoldenPath() {
  return std::string(LAMP_TESTS_DIR) + "/golden/chrome_trace_golden.json";
}

std::string Export() {
  const auto trace = JsonValue::Parse(kSyntheticTrace);
  EXPECT_TRUE(trace.has_value());
  return ChromeTraceFromTraceJson(*trace).Dump(1) + "\n";
}

TEST(ChromeTraceTest, MatchesGoldenFile) {
  const std::string got = Export();

  if (std::getenv("LAMP_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(GoldenPath(), std::ios::trunc);
    ASSERT_TRUE(out.is_open()) << GoldenPath();
    out << got;
    GTEST_SKIP() << "golden regenerated at " << GoldenPath();
  }

  std::ifstream in(GoldenPath());
  ASSERT_TRUE(in.is_open())
      << "missing golden " << GoldenPath()
      << " — regenerate with LAMP_REGEN_GOLDEN=1";
  std::stringstream want;
  want << in.rdbuf();
  EXPECT_EQ(got, want.str())
      << "Chrome export drifted from the golden. If the change is "
         "intentional, rerun with LAMP_REGEN_GOLDEN=1.";
}

TEST(ChromeTraceTest, StructuralInvariants) {
  const auto parsed = JsonValue::Parse(Export());
  ASSERT_TRUE(parsed.has_value());

  const JsonValue* events = parsed->Find("traceEvents");
  ASSERT_TRUE(events != nullptr && events->IsArray());

  std::map<std::string, int> by_ph;
  for (std::size_t i = 0; i < events->size(); ++i) {
    const JsonValue& e = events->at(i);
    const JsonValue* ph = e.Find("ph");
    ASSERT_TRUE(ph != nullptr && ph->IsString()) << i;
    ++by_ph[ph->AsString()];
    const JsonValue* pid = e.Find("pid");
    ASSERT_TRUE(pid != nullptr && pid->IsNumber());
    EXPECT_EQ(pid->AsInt(), 1);
    ASSERT_TRUE(e.Find("tid") != nullptr);
  }
  // 1 process_name + 2 thread_name metadata records.
  EXPECT_EQ(by_ph["M"], 3);
  // One span.
  EXPECT_EQ(by_ph["X"], 1);
  // Six non-span input events become instants.
  EXPECT_EQ(by_ph["i"], 6);
  // round_end, broadcast, deliver, iteration, server_load feed counters.
  EXPECT_EQ(by_ph["C"], 5);

  // The span: starts at (9000 - 4000) ns = 5 us, lasts 4 us, on tid 1.
  for (std::size_t i = 0; i < events->size(); ++i) {
    const JsonValue& e = events->at(i);
    if (e.Find("ph")->AsString() != "X") continue;
    EXPECT_EQ(e.Find("name")->AsString(), "eval");
    EXPECT_DOUBLE_EQ(e.Find("ts")->AsDouble(), 5.0);
    EXPECT_DOUBLE_EQ(e.Find("dur")->AsDouble(), 4.0);
    EXPECT_EQ(e.Find("tid")->AsInt(), 1);
  }

  const JsonValue* other = parsed->Find("otherData");
  ASSERT_TRUE(other != nullptr && other->IsObject());
  EXPECT_EQ(other->Find("dropped")->AsInt(), 2);
}

TEST(ChromeTraceTest, ExportsLiveTracer) {
  Tracer tracer(1024);
  {
    ScopedTracer scope(tracer);
    Emit(EventKind::kMpcRoundBegin, 1);
    {
      TraceSpan span("live_span", 9);
      Emit(EventKind::kMpcRoundEnd, 1, 0, 50);
    }
  }
  const JsonValue chrome = ChromeTraceFromTracer(tracer);
  const JsonValue* events = chrome.Find("traceEvents");
  ASSERT_TRUE(events != nullptr && events->IsArray());

  bool saw_span = false;
  bool saw_counter = false;
  for (std::size_t i = 0; i < events->size(); ++i) {
    const JsonValue& e = events->at(i);
    const std::string ph = e.Find("ph")->AsString();
    if (ph == "X" && e.Find("name")->AsString() == "live_span") {
      saw_span = true;
    }
    if (ph == "C" && e.Find("name")->AsString() == "mpc.round_load") {
      saw_counter = true;
    }
  }
  EXPECT_TRUE(saw_span);
  EXPECT_TRUE(saw_counter);

  // The whole document must survive a dump/parse round trip.
  EXPECT_TRUE(JsonValue::Parse(chrome.Dump(1)).has_value());
}

}  // namespace
}  // namespace lamp::obs
