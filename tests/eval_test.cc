#include <set>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "cq/eval.h"
#include "cq/parser.h"
#include "relational/generators.h"

namespace lamp {
namespace {

TEST(Eval, BinaryJoin) {
  Schema schema;
  const ConjunctiveQuery q =
      ParseQuery(schema, "H(x,y,z) <- R(x,y), S(y,z)");
  const RelationId r = schema.IdOf("R");
  const RelationId s = schema.IdOf("S");
  Instance inst;
  inst.Insert(Fact(r, {1, 2}));
  inst.Insert(Fact(r, {3, 4}));
  inst.Insert(Fact(s, {2, 5}));
  inst.Insert(Fact(s, {2, 6}));
  const Instance result = Evaluate(q, inst);
  EXPECT_EQ(result.Size(), 2u);
  EXPECT_TRUE(result.Contains(Fact(schema.IdOf("H"), {1, 2, 5})));
  EXPECT_TRUE(result.Contains(Fact(schema.IdOf("H"), {1, 2, 6})));
}

TEST(Eval, TriangleOnCycleGraphs) {
  Schema schema;
  const ConjunctiveQuery q =
      ParseQuery(schema, "H(x,y,z) <- E(x,y), E(y,z), E(z,x)");
  const RelationId e = schema.IdOf("E");
  Instance tri;
  AddCycleGraph(schema, e, 3, tri);
  // A directed 3-cycle matches in 3 rotations.
  EXPECT_EQ(Evaluate(q, tri).Size(), 3u);
  Instance square;
  AddCycleGraph(schema, e, 4, square);
  EXPECT_TRUE(Evaluate(q, square).Empty());
}

TEST(Eval, SelfJoinRequiresSameRelation) {
  Schema schema;
  const ConjunctiveQuery q = ParseQuery(schema, "H(x,z) <- R(x,y), R(y,z)");
  const RelationId r = schema.IdOf("R");
  Instance inst;
  inst.Insert(Fact(r, {1, 2}));
  inst.Insert(Fact(r, {2, 3}));
  const Instance result = Evaluate(q, inst);
  EXPECT_EQ(result.Size(), 1u);
  EXPECT_TRUE(result.Contains(Fact(schema.IdOf("H"), {1, 3})));
}

TEST(Eval, RepeatedVariableInsideAtom) {
  Schema schema;
  const ConjunctiveQuery q = ParseQuery(schema, "H(x) <- R(x,x)");
  const RelationId r = schema.IdOf("R");
  Instance inst;
  inst.Insert(Fact(r, {1, 2}));
  inst.Insert(Fact(r, {3, 3}));
  const Instance result = Evaluate(q, inst);
  EXPECT_EQ(result.Size(), 1u);
  EXPECT_TRUE(result.Contains(Fact(schema.IdOf("H"), {3})));
}

TEST(Eval, ConstantsInBody) {
  Schema schema;
  const ConjunctiveQuery q = ParseQuery(schema, "H(x) <- R(x, 7)");
  const RelationId r = schema.IdOf("R");
  Instance inst;
  inst.Insert(Fact(r, {1, 7}));
  inst.Insert(Fact(r, {2, 8}));
  const Instance result = Evaluate(q, inst);
  EXPECT_EQ(result.Size(), 1u);
  EXPECT_TRUE(result.Contains(Fact(schema.IdOf("H"), {1})));
}

TEST(Eval, InequalitiesPruneDerivations) {
  Schema schema;
  const ConjunctiveQuery q =
      ParseQuery(schema, "H(x,y) <- E(x,y), x != y");
  const RelationId e = schema.IdOf("E");
  Instance inst;
  inst.Insert(Fact(e, {1, 1}));
  inst.Insert(Fact(e, {1, 2}));
  const Instance result = Evaluate(q, inst);
  EXPECT_EQ(result.Size(), 1u);
  EXPECT_TRUE(result.Contains(Fact(schema.IdOf("H"), {1, 2})));
}

TEST(Eval, OpenTriangleUsesNegation) {
  Schema schema;
  // Example 5.1(2) of the paper.
  const ConjunctiveQuery q =
      ParseQuery(schema, "H(x,y,z) <- E(x,y), E(y,z), !E(z,x)");
  const RelationId e = schema.IdOf("E");
  Instance inst;
  inst.Insert(Fact(e, {1, 2}));
  inst.Insert(Fact(e, {2, 3}));
  const Instance result = Evaluate(q, inst);
  // (1,2,3) is open (E(3,1) missing); also wedges using a fact twice.
  EXPECT_TRUE(result.Contains(Fact(schema.IdOf("H"), {1, 2, 3})));
  // Closing the triangle removes it.
  inst.Insert(Fact(e, {3, 1}));
  EXPECT_FALSE(
      Evaluate(q, inst).Contains(Fact(schema.IdOf("H"), {1, 2, 3})));
}

TEST(Eval, EmptyInstanceYieldsEmptyResult) {
  Schema schema;
  const ConjunctiveQuery q = ParseQuery(schema, "H(x) <- R(x,y)");
  EXPECT_TRUE(Evaluate(q, Instance()).Empty());
}

TEST(Eval, BooleanQueryDerivesNullaryFact) {
  Schema schema;
  const ConjunctiveQuery q = ParseQuery(schema, "H() <- R(x,x)");
  const RelationId r = schema.IdOf("R");
  Instance inst;
  inst.Insert(Fact(r, {5, 5}));
  const Instance result = Evaluate(q, inst);
  EXPECT_EQ(result.Size(), 1u);
  EXPECT_TRUE(result.Contains(Fact(schema.IdOf("H"), {})));
}

TEST(Eval, EnumerationVisitsEverySatisfyingValuation) {
  Schema schema;
  const ConjunctiveQuery q = ParseQuery(schema, "H(x,y) <- E(x,y)");
  const RelationId e = schema.IdOf("E");
  Instance inst;
  for (int i = 0; i < 5; ++i) inst.Insert(Fact(e, {i, i + 1}));
  int count = 0;
  ForEachSatisfyingValuation(q, inst, [&count](const Valuation&) {
    ++count;
    return true;
  });
  EXPECT_EQ(count, 5);
}

TEST(Eval, EnumerationEarlyStop) {
  Schema schema;
  const ConjunctiveQuery q = ParseQuery(schema, "H(x,y) <- E(x,y)");
  const RelationId e = schema.IdOf("E");
  Instance inst;
  for (int i = 0; i < 5; ++i) inst.Insert(Fact(e, {i, i + 1}));
  int count = 0;
  const bool finished =
      ForEachSatisfyingValuation(q, inst, [&count](const Valuation&) {
        return ++count < 2;
      });
  EXPECT_FALSE(finished);
  EXPECT_EQ(count, 2);
}

TEST(Eval, UnionOfQueries) {
  Schema schema;
  std::vector<ConjunctiveQuery> ucq;
  ucq.push_back(ParseQuery(schema, "H(x) <- R(x,y)"));
  ucq.push_back(ParseQuery(schema, "H(y) <- R(x,y)"));
  const RelationId r = schema.IdOf("R");
  Instance inst;
  inst.Insert(Fact(r, {1, 2}));
  const Instance result = EvaluateUnion(ucq, inst);
  EXPECT_EQ(result.Size(), 2u);
}

TEST(Eval, UniverseEnumerationCountsAssignments) {
  Schema schema;
  const ConjunctiveQuery q = ParseQuery(schema, "H(x,y) <- R(x,y)");
  const std::vector<Value> universe = {Value(1), Value(2), Value(3)};
  int count = 0;
  ForEachValuationOverUniverse(q, universe, [&count](const Valuation& v) {
    EXPECT_TRUE(v.IsTotal());
    ++count;
    return true;
  });
  EXPECT_EQ(count, 9);
}

TEST(Eval, AgreesWithNaiveEnumerationOnRandomGraphs) {
  // Property test: the indexed backtracking evaluator must agree with a
  // naive evaluator that enumerates all valuations over the active domain.
  Schema schema;
  const ConjunctiveQuery q =
      ParseQuery(schema, "H(x,z) <- E(x,y), E(y,z), E(z,x)");
  const RelationId e = schema.IdOf("E");
  Rng rng(77);
  for (int trial = 0; trial < 20; ++trial) {
    Instance inst;
    AddRandomGraph(schema, e, 30, 10, rng, inst);
    const Instance fast = Evaluate(q, inst);

    Instance naive;
    const std::vector<Value> universe = inst.ActiveDomain();
    ForEachValuationOverUniverse(
        q, universe, [&q, &inst, &naive](const Valuation& v) {
          if (v.Satisfies(q, inst)) naive.Insert(v.ApplyToAtom(q.head()));
          return true;
        });
    EXPECT_EQ(fast, naive) << "trial " << trial;
  }
}

}  // namespace
}  // namespace lamp
