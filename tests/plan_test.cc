// The static planner (src/sa/plan): certificate correctness, the
// bounds.h-parity contract, the skew crossover verdicts, and the
// planner-agreement gate machinery.
//
// The load-bearing property: whenever no rewrite fires, the certificate's
// hypercube base_bound is *bit-identical* to the closed form the audit
// layer recomputes at run time (obs/audit/bounds.h HyperCubeBound at the
// same shares). The planner and the auditor must never argue about what
// the bound is — only about whether the measured run met it.
//
// The certificate golden pins the full "lamp.plan.v1" document; after an
// intentional format change regenerate with:
//   LAMP_REGEN_GOLDEN=1 ./build/tests/plan_test

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <numeric>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "cq/parser.h"
#include "distribution/hypercube.h"
#include "mpc/hypercube_run.h"
#include "obs/audit/bounds.h"
#include "obs/audit/catalog.h"
#include "obs/json.h"
#include "relational/generators.h"
#include "relational/instance.h"
#include "sa/plan/agreement.h"
#include "sa/plan/plan.h"

#ifndef LAMP_TESTS_DIR
#error "tests/CMakeLists.txt must define LAMP_TESTS_DIR"
#endif

namespace lamp::sa::plan {
namespace {

using obs::audit::BuildCatalog;
using obs::audit::Catalog;
using obs::audit::Strategy;

// The lamp_plan --demo workloads, reproduced bit for bit (fixed seeds):
// 20000 facts per relation; the skewed variant routes half of R and ten
// S facts through join value y=0.
struct Demo {
  Schema schema;
  ConjunctiveQuery query;
  Catalog catalog;
};

Demo MakeDemo(bool skewed) {
  Demo demo;
  demo.query = ParseQuery(demo.schema, "H(x,z) <- R(x,y), S(y,z)");
  const RelationId r = demo.schema.IdOf("R");
  const RelationId s = demo.schema.IdOf("S");
  constexpr std::size_t kFacts = 20000;
  const auto range = static_cast<std::int64_t>(16 * kFacts);
  Rng rng(skewed ? 7 : 3);
  Instance instance;
  for (std::size_t i = 0; i < kFacts; ++i) {
    const bool heavy = skewed && i < kFacts / 2;
    const Value y = heavy ? Value{0} : Value{rng.UniformInt(1, range)};
    instance.Insert(Fact{r, {Value{rng.UniformInt(0, range)}, y}});
  }
  for (std::size_t i = 0; i < kFacts; ++i) {
    const bool heavy = skewed && i < 10;
    const Value y = heavy ? Value{0} : Value{rng.UniformInt(1, range)};
    instance.Insert(Fact{s, {y, Value{rng.UniformInt(0, range)}}});
  }
  demo.catalog = BuildCatalog(demo.schema, instance);
  return demo;
}

// --- bounds.h parity ----------------------------------------------------

TEST(PlanBoundsParityTest, HyperCubeBaseBoundIsTheExactClosedForm) {
  // Randomized shares over two query shapes: whatever grid the planner
  // settles on, its base_bound must equal HyperCubeBound at that grid —
  // no drift between the cost model and the audit layer. Equal-size
  // uniform relations keep every rewrite quiet, which is the precondition
  // for exact parity (a fired rewrite would shrink the shadow catalog).
  Rng rng(99);
  for (const char* text :
       {"H(x,y,z) <- R0(x,y), R1(y,z)",
        "H(x,y,z) <- R0(x,y), R1(y,z), R2(z,x)"}) {
    for (int trial = 0; trial < 10; ++trial) {
      Schema schema;
      const ConjunctiveQuery query = ParseQuery(schema, text);
      Instance db;
      for (const Atom& atom : query.body()) {
        AddUniformRelation(schema, atom.relation, 2000, 50000, rng, db);
      }
      const Catalog catalog = BuildCatalog(schema, db);

      Shares shares = LpRoundedShares(query, 16);
      for (std::size_t& share : shares) {
        share = static_cast<std::size_t>(rng.UniformInt(1, 3));
      }
      PlanOptions options;
      options.p = std::accumulate(shares.begin(), shares.end(),
                                  std::size_t{1},
                                  std::multiplies<std::size_t>());
      options.share_candidates = {shares};

      const PlanCertificate cert =
          PlanQuery(query, schema, catalog, options);
      ASSERT_TRUE(cert.rewrites.empty()) << text;
      const StrategyPrediction* hc = cert.Find(Strategy::kHyperCube);
      ASSERT_NE(hc, nullptr) << text;
      ASSERT_TRUE(hc->feasible) << hc->note;
      const obs::audit::LoadBound bound =
          obs::audit::HyperCubeBound(query, schema, catalog, hc->shares);
      ASSERT_TRUE(bound.has_bound);
      EXPECT_EQ(hc->base_bound, bound.tuples)
          << text << " trial " << trial << " shares product " << options.p;
    }
  }
}

// --- crossover verdicts -------------------------------------------------

TEST(PlanVerdictTest, SkewFreePicksRepartition) {
  const Demo demo = MakeDemo(/*skewed=*/false);
  PlanOptions options;
  options.p = 4;
  const PlanCertificate cert =
      PlanQuery(demo.query, demo.schema, demo.catalog, options);
  const StrategyPrediction* winner = cert.Winner();
  ASSERT_NE(winner, nullptr);
  EXPECT_EQ(winner->strategy, Strategy::kRepartition);
  // m/p scaled by the shipped fraction (p-1)/p: 40000/4 * 3/4.
  EXPECT_DOUBLE_EQ(winner->predicted_max_load, 7500.0);
  // Hypercube at shares (1,1,p) *is* repartition up to hashing: the
  // model must predict them indistinguishable.
  const std::vector<Strategy> ties = cert.WinnerSet();
  EXPECT_GE(ties.size(), 2u);
  EXPECT_NE(std::find(ties.begin(), ties.end(), Strategy::kHyperCube),
            ties.end());
}

TEST(PlanVerdictTest, SkewedLargePPicksSharesSkew) {
  const Demo demo = MakeDemo(/*skewed=*/true);
  PlanOptions options;
  options.p = 64;
  const PlanCertificate cert =
      PlanQuery(demo.query, demo.schema, demo.catalog, options);
  const StrategyPrediction* winner = cert.Winner();
  ASSERT_NE(winner, nullptr);
  EXPECT_EQ(winner->strategy, Strategy::kSharesSkew);
  // The heavy value must be called out somewhere: either a skew hazard
  // or a pinned-server note on the hash strategies.
  const StrategyPrediction* repart = cert.Find(Strategy::kRepartition);
  ASSERT_NE(repart, nullptr);
  EXPECT_GT(repart->predicted_max_load, repart->base_bound)
      << "the heavy join value must push repartition past its skew-free "
         "bound";
}

TEST(PlanVerdictTest, UniformColumnsRaiseNoPhantomSkewNotes) {
  // Space-Saving counts on a uniform column are pure sketch noise
  // (count ~ error ~ m/capacity). The estimator must not promote them to
  // skew candidates: skew-free repartition predicts exactly the shipped
  // base bound, with no pinned-server note.
  const Demo demo = MakeDemo(/*skewed=*/false);
  PlanOptions options;
  options.p = 4;
  const PlanCertificate cert =
      PlanQuery(demo.query, demo.schema, demo.catalog, options);
  const StrategyPrediction* repart = cert.Find(Strategy::kRepartition);
  ASSERT_NE(repart, nullptr);
  EXPECT_DOUBLE_EQ(repart->predicted_max_load, 7500.0);
  EXPECT_EQ(repart->note.find("heavy"), std::string::npos) << repart->note;
}

TEST(PlanVerdictTest, InfeasibleStrategiesRankLastWithReasons) {
  Schema schema;
  const ConjunctiveQuery triangle =
      ParseQuery(schema, "H(x,y,z) <- R0(x,y), R1(y,z), R2(z,x)");
  Rng rng(5);
  Instance db;
  for (const Atom& atom : triangle.body()) {
    AddUniformRelation(schema, atom.relation, 1000, 20000, rng, db);
  }
  const Catalog catalog = BuildCatalog(schema, db);
  PlanOptions options;
  options.p = 27;
  const PlanCertificate cert = PlanQuery(triangle, schema, catalog, options);
  const StrategyPrediction* winner = cert.Winner();
  ASSERT_NE(winner, nullptr);
  EXPECT_EQ(winner->strategy, Strategy::kHyperCube)
      << "only hypercube handles a 3-atom body in one round";
  for (const StrategyPrediction& s : cert.strategies) {
    if (s.strategy == Strategy::kHyperCube) continue;
    EXPECT_FALSE(s.feasible);
    EXPECT_FALSE(s.note.empty()) << "infeasibility must carry a reason";
  }
}

// --- certificate golden -------------------------------------------------

TEST(PlanCertificateTest, GoldenDocument) {
  const Demo demo = MakeDemo(/*skewed=*/true);
  PlanOptions options;
  options.p = 4;
  const PlanCertificate cert =
      PlanQuery(demo.query, demo.schema, demo.catalog, options);
  const std::string got = cert.ToJson().Dump(2) + "\n";
  const std::string golden_path =
      std::string(LAMP_TESTS_DIR) + "/golden/plan_certificate.json";

  if (std::getenv("LAMP_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(golden_path, std::ios::trunc);
    ASSERT_TRUE(out.is_open()) << golden_path;
    out << got;
    GTEST_SKIP() << "golden regenerated at " << golden_path;
  }

  std::ifstream in(golden_path);
  ASSERT_TRUE(in.is_open()) << "missing golden " << golden_path
                            << " — regenerate with LAMP_REGEN_GOLDEN=1";
  std::stringstream want;
  want << in.rdbuf();
  EXPECT_EQ(got, want.str())
      << "lamp.plan.v1 output drifted from the golden. If the change is "
         "intentional, rerun with LAMP_REGEN_GOLDEN=1.";
  EXPECT_TRUE(obs::JsonValue::Parse(got).has_value());
}

// --- agreement records --------------------------------------------------

AgreementRecord TwoWayRace(double predicted_best, double predicted_runner,
                           double measured_best, double measured_runner) {
  AgreementRecord record;
  record.bench = "test";
  record.label = "race";
  record.p = 4;
  record.tie_margin = 0.02;
  record.predicted = Strategy::kRepartition;
  record.outcomes = {{Strategy::kRepartition, measured_best},
                     {Strategy::kFragmentReplicate, measured_runner}};
  record.predicted_loads = {predicted_best, predicted_runner};
  record.measured = measured_best <= measured_runner
                        ? Strategy::kRepartition
                        : Strategy::kFragmentReplicate;
  return record;
}

TEST(AgreementRecordTest, AgreeOnExactMatchAndWithinTieMargin) {
  // Predicted and measured winner coincide.
  EXPECT_TRUE(TwoWayRace(100.0, 400.0, 90.0, 380.0).Agree());
  // Measured winner differs but was predicted within 2% of the best.
  EXPECT_TRUE(TwoWayRace(100.0, 101.0, 95.0, 90.0).Agree());
  // Measured winner was predicted 4x worse: a genuine disagreement.
  EXPECT_FALSE(TwoWayRace(100.0, 400.0, 95.0, 90.0).Agree());
}

TEST(AgreementRecordTest, PartialRaceJudgesOnlyItsParticipants) {
  // The certificate's overall winner (repartition) sat out; the race ran
  // hypercube alone, predicted best of the field that ran.
  AgreementRecord record;
  record.predicted = Strategy::kRepartition;
  record.measured = Strategy::kHyperCube;
  record.tie_margin = 0.02;
  record.outcomes = {{Strategy::kHyperCube, 250.0}};
  record.predicted_loads = {240.0};
  EXPECT_TRUE(record.Agree());
  // A strategy the race never measured cannot agree by default.
  record.outcomes.clear();
  record.predicted_loads.clear();
  EXPECT_FALSE(record.Agree());
}

TEST(AgreementRecordTest, JsonRoundTrip) {
  const AgreementRecord record = TwoWayRace(100.0, 400.0, 95.0, 90.0);
  const std::optional<AgreementRecord> parsed =
      AgreementRecord::FromJson(record.ToJson());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->bench, record.bench);
  EXPECT_EQ(parsed->label, record.label);
  EXPECT_EQ(parsed->p, record.p);
  EXPECT_EQ(parsed->predicted, record.predicted);
  EXPECT_EQ(parsed->measured, record.measured);
  ASSERT_EQ(parsed->outcomes.size(), record.outcomes.size());
  EXPECT_EQ(parsed->outcomes[1].strategy, Strategy::kFragmentReplicate);
  EXPECT_EQ(parsed->predicted_loads, record.predicted_loads);
  EXPECT_EQ(parsed->Agree(), record.Agree());
}

TEST(AgreementRecordTest, MakeDerivesMeasuredWinnerTiesKeepEarlier) {
  const Demo demo = MakeDemo(/*skewed=*/false);
  PlanOptions options;
  options.p = 4;
  const PlanCertificate cert =
      PlanQuery(demo.query, demo.schema, demo.catalog, options);
  const AgreementRecord record = MakeAgreementRecord(
      "test", "tie", cert,
      {{Strategy::kRepartition, 500.0}, {Strategy::kHyperCube, 500.0}});
  EXPECT_EQ(record.measured, Strategy::kRepartition);
  EXPECT_EQ(record.predicted, cert.Winner()->strategy);
  ASSERT_EQ(record.predicted_loads.size(), 2u);
  EXPECT_GT(record.predicted_loads[0], 0.0);
}

// --- the gate -----------------------------------------------------------

TEST(AgreementGateTest, UnpinnedDisagreementFailsPinnedPasses) {
  const AgreementRecord bad = TwoWayRace(100.0, 400.0, 95.0, 90.0);
  ASSERT_FALSE(bad.Agree());

  AgreementCheck unpinned = CheckAgreement({bad}, {});
  EXPECT_FALSE(unpinned.Ok());
  ASSERT_EQ(unpinned.failures.size(), 1u);
  EXPECT_TRUE(unpinned.dangling_pins.empty());

  AgreementPin pin;
  pin.bench = "test";
  pin.label = "race";
  pin.predicted = "repartition";
  pin.measured = "fragment_replicate";
  pin.reason = "synthetic disagreement for the test";
  const AgreementCheck pinned = CheckAgreement({bad}, {pin});
  EXPECT_TRUE(pinned.Ok()) << (pinned.failures.empty()
                                   ? "dangling pin"
                                   : pinned.failures.front());
}

TEST(AgreementGateTest, DanglingPinsFail) {
  const AgreementRecord good = TwoWayRace(100.0, 400.0, 90.0, 380.0);
  AgreementPin stale;
  stale.bench = "test";
  stale.label = "no_such_race";
  stale.reason = "excuse that matches nothing";
  const AgreementCheck check = CheckAgreement({good}, {stale});
  EXPECT_FALSE(check.Ok());
  EXPECT_TRUE(check.failures.empty());
  ASSERT_EQ(check.dangling_pins.size(), 1u);
}

TEST(AgreementGateTest, PinsJsonRejectsMissingReasonAndWrongSchema) {
  AgreementPin pin;
  pin.bench = "join_strategies";
  pin.reason = "documented model gap";
  const obs::JsonValue doc = PinsToJson({pin});
  const auto parsed = PinsFromJson(doc);
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->size(), 1u);
  EXPECT_EQ(parsed->front().bench, "join_strategies");
  EXPECT_EQ(parsed->front().reason, "documented model gap");

  // A pin without a reason is not an excuse — reject the whole file.
  obs::JsonValue no_reason = obs::JsonValue::Parse(
      R"({"schema":"lamp.plan_pins.v1","pins":[{"bench":"x"}]})").value();
  EXPECT_FALSE(PinsFromJson(no_reason).has_value());

  obs::JsonValue wrong_schema = obs::JsonValue::Parse(
      R"({"schema":"lamp.plan.v1","pins":[]})").value();
  EXPECT_FALSE(PinsFromJson(wrong_schema).has_value());
}

}  // namespace
}  // namespace lamp::sa::plan
