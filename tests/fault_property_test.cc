#include <gtest/gtest.h>

#include "cq/eval.h"
#include "cq/parser.h"
#include "datalog/eval.h"
#include "datalog/program.h"
#include "fault/confluence.h"
#include "fault/explorer.h"
#include "fault/plan.h"
#include "fault/scheduler.h"
#include "net/consistency.h"
#include "net/datalog_program.h"
#include "net/network.h"
#include "net/programs.h"
#include "relational/generators.h"

/// \file
/// Property tests for the CALM dividing line under faults: monotone
/// programs must be invariant under duplication, reordering, partitions
/// and crashes (F0 = A0 = M quantifies over all such runs), while the
/// explorer must find — and minimize — divergence witnesses for the
/// non-monotone strategies.

namespace lamp {
namespace {

using fault::FaultClass;
using fault::FaultPlan;
using fault::FaultScheduler;

NetQueryFunction WrapCq(const ConjunctiveQuery& q) {
  return [&q](const Instance& instance) { return Evaluate(q, instance); };
}

TEST(FaultPropertyTest, MonotoneTcInvariantUnderRandomFaultPlans) {
  // Property: for every random FaultPlan and every scheduler seed, the
  // monotone TC pipeline computes exactly Q(I).
  Schema schema;
  DatalogProgram prog = ParseProgram(schema,
                                     "TC(x,y) <- E(x,y)\n"
                                     "TC(x,y) <- TC(x,z), E(z,y)");
  Instance edges;
  AddPathGraph(schema, schema.IdOf("E"), 7, edges);
  AddCycleGraph(schema, schema.IdOf("E"), 4, edges);
  const Instance everything = EvaluateProgram(schema, prog, edges);
  Instance expected;
  for (const Fact& f : everything.FactsOf(schema.IdOf("TC"))) {
    expected.Insert(f);
  }

  DistributedDatalogProgram program(schema, prog);
  const std::vector<Instance> locals = DistributeRoundRobin(edges, 4);
  Rng plan_rng(2026);
  for (int trial = 0; trial < 30; ++trial) {
    const FaultPlan plan = fault::RandomFaultPlan(locals.size(), plan_rng);
    const std::uint64_t seed = plan_rng.Next();
    FaultScheduler scheduler(plan, seed);
    TransducerNetwork net(locals, program, nullptr, /*aware=*/false);
    const NetworkRunResult r = net.RunWith(scheduler);
    EXPECT_EQ(r.output, expected)
        << "trial " << trial << " seed " << seed << " " << plan.ToString();
  }
}

TEST(FaultPropertyTest, MonotoneBroadcastInvariantUnderDuplicationStorms) {
  // Set semantics make the naive broadcast idempotent: hammering every
  // early delivery with duplicates changes nothing.
  Schema schema;
  schema.AddRelation("E", 2);
  const ConjunctiveQuery triangle = ParseQuery(
      schema, "H(x,y,z) <- E(x,y), E(y,z), E(z,x), x != y, y != z, x != z");
  Rng rng(7);
  Instance graph;
  AddRandomGraph(schema, schema.IdOf("E"), 30, 10, rng, graph);
  AddTriangleClusters(schema, schema.IdOf("E"), 2, 100, graph);
  const Instance expected = Evaluate(triangle, graph);
  ASSERT_FALSE(expected.Empty());

  MonotoneBroadcastProgram program(WrapCq(triangle));
  const std::vector<Instance> locals = DistributeRoundRobin(graph, 3);
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    FaultScheduler scheduler(fault::DuplicateStormPlan(0, 16), seed);
    TransducerNetwork net(locals, program, nullptr, /*aware=*/false);
    const NetworkRunResult r = net.RunWith(scheduler);
    EXPECT_EQ(r.output, expected) << "seed " << seed;
    EXPECT_EQ(r.metrics.CounterValue(obs::kNetFaultDuplicates), 16u);
  }
}

TEST(FaultPropertyTest, ClassifierReportsMonotoneProgramsConfluent) {
  // The classifier's headline: a monotone (F0) program is correct under
  // every fault class the runtime can inject.
  Schema schema;
  DatalogProgram prog = ParseProgram(schema,
                                     "TC(x,y) <- E(x,y)\n"
                                     "TC(x,y) <- TC(x,z), E(z,y)");
  Instance edges;
  AddPathGraph(schema, schema.IdOf("E"), 8, edges);
  const Instance everything = EvaluateProgram(schema, prog, edges);
  Instance expected;
  for (const Fact& f : everything.FactsOf(schema.IdOf("TC"))) {
    expected.Insert(f);
  }

  DistributedDatalogProgram program(schema, prog);
  std::vector<std::vector<Instance>> distributions = {
      DistributeRoundRobin(edges, 3)};
  const fault::ConfluenceReport report = fault::ClassifyConfluence(
      program, distributions, expected, 4, nullptr, /*aware=*/false);
  EXPECT_TRUE(report.confluent);
  EXPECT_EQ(report.by_class.size(), fault::kAllFaultClasses.size());
  for (const fault::FaultSweep& sweep : report.by_class) {
    EXPECT_TRUE(sweep.all_runs_correct)
        << fault::FaultClassName(sweep.fault_class);
    EXPECT_EQ(sweep.runs, 4u);
  }
  // The faulty classes actually injected something.
  const fault::FaultSweep* dup =
      report.FindClass(FaultClass::kDuplicate);
  ASSERT_NE(dup, nullptr);
  EXPECT_GT(dup->total_duplicates, 0u);
  const fault::FaultSweep* crash =
      report.FindClass(FaultClass::kCrashVolatile);
  ASSERT_NE(crash, nullptr);
  EXPECT_GT(crash->total_crashes, 0u);
}

TEST(FaultPropertyTest, ClassifierPinpointsNonMonotoneDivergence) {
  // The naive broadcast running a non-monotone query is the other side of
  // the line: some class must break it, and the failing sweep carries the
  // (seed, plan, diff) needed to replay the divergence.
  Schema schema;
  schema.AddRelation("E", 2);
  const ConjunctiveQuery open_triangle =
      ParseQuery(schema, "H(x,y,z) <- E(x,y), E(y,z), !E(z,x)");
  Rng rng(3);
  Instance graph;
  AddRandomGraph(schema, schema.IdOf("E"), 40, 12, rng, graph);
  const Instance expected = Evaluate(open_triangle, graph);

  MonotoneBroadcastProgram program(WrapCq(open_triangle));
  std::vector<std::vector<Instance>> distributions = {
      DistributeRoundRobin(graph, 4)};
  const fault::ConfluenceReport report = fault::ClassifyConfluence(
      program, distributions, expected, 4, nullptr, /*aware=*/false,
      &schema);
  EXPECT_FALSE(report.confluent);

  bool replayed = false;
  for (const fault::FaultSweep& sweep : report.by_class) {
    if (sweep.all_runs_correct) continue;
    ASSERT_TRUE(sweep.first_failure.has_value());
    const fault::FaultSweepFailure& failure = *sweep.first_failure;
    EXPECT_FALSE(failure.diff.Empty());
    if (!replayed) {
      // The recorded (plan, seed) replays to the same wrong output.
      EXPECT_TRUE(fault::PlanDiverges(
          program, distributions[failure.distribution_index], expected,
          failure.plan, failure.seed, nullptr, /*aware=*/false));
      replayed = true;
    }
  }
  EXPECT_TRUE(replayed);
}

TEST(FaultPropertyTest, ExplorerMinimizesFragileBarrierToOneDuplication) {
  // Regression: the fragile counting barrier is correct on every
  // fault-free schedule (fault_test.cc pins that), so the explorer must
  // reach a fault storm to break it — and delta-debugging must shrink
  // the witness to a single duplication event: the canonical
  // at-least-once-delivery bug, minimal by construction.
  Schema schema;
  schema.AddRelation("E", 2);
  const ConjunctiveQuery open_triangle =
      ParseQuery(schema, "H(x,y,z) <- E(x,y), E(y,z), !E(z,x)");
  Rng rng(4);
  Instance graph;
  AddRandomGraph(schema, schema.IdOf("E"), 30, 10, rng, graph);
  const Instance expected = Evaluate(open_triangle, graph);
  ASSERT_FALSE(expected.Empty());

  Schema scratch = schema;
  FragileCountingBarrierProgram program(WrapCq(open_triangle), scratch);
  std::vector<std::vector<Instance>> distributions = {
      DistributeRoundRobin(graph, 3)};

  const fault::ExplorerResult result = fault::ExploreSchedules(
      program, distributions, expected, {}, nullptr, /*aware=*/true,
      &schema);
  ASSERT_TRUE(result.divergence_found);
  const fault::DivergenceWitness& witness = result.witness;
  EXPECT_EQ(witness.strategy, "duplicate-storm");
  ASSERT_EQ(witness.plan.events.size(), 1u);
  EXPECT_EQ(witness.plan.events[0].kind,
            fault::FaultEvent::Kind::kDuplicateNext);
  EXPECT_EQ(witness.plan.discipline, fault::DeliveryDiscipline::kUniform);
  EXPECT_FALSE(witness.diff.Empty());

  // 1-minimality, checked directly: the empty plan does not diverge,
  // the one-event plan does, and both replay deterministically.
  EXPECT_FALSE(fault::PlanDiverges(program, distributions[0], expected,
                                   FaultPlan{}, witness.seed, nullptr,
                                   /*aware=*/true));
  EXPECT_TRUE(fault::PlanDiverges(program, distributions[0], expected,
                                  witness.plan, witness.seed, nullptr,
                                  /*aware=*/true));

  // The trace pair for trace_dump --diff: a divergent recording plus a
  // fault-free reference that computed Q(I).
  EXPECT_TRUE(witness.has_reference);
  ASSERT_TRUE(witness.divergent_trace.IsObject());
  ASSERT_TRUE(witness.reference_trace.IsObject());
  const obs::JsonValue* d_events = witness.divergent_trace.Find("events");
  const obs::JsonValue* r_events = witness.reference_trace.Find("events");
  ASSERT_NE(d_events, nullptr);
  ASSERT_NE(r_events, nullptr);
  EXPECT_GT(d_events->size(), 0u);
  EXPECT_GT(r_events->size(), 0u);
}

TEST(FaultPropertyTest, ExplorerFindsPureScheduleWitnessForNaiveBroadcast) {
  // The naive broadcast on a non-monotone query diverges on a plain
  // schedule — no injected faults needed. The minimized plan is then
  // empty or discipline-only, and the strategy is an early battery entry.
  Schema schema;
  schema.AddRelation("E", 2);
  const ConjunctiveQuery open_triangle =
      ParseQuery(schema, "H(x,y,z) <- E(x,y), E(y,z), !E(z,x)");
  Rng rng(3);
  Instance graph;
  AddRandomGraph(schema, schema.IdOf("E"), 40, 12, rng, graph);
  const Instance expected = Evaluate(open_triangle, graph);

  MonotoneBroadcastProgram program(WrapCq(open_triangle));
  std::vector<std::vector<Instance>> distributions = {
      DistributeRoundRobin(graph, 4)};
  fault::ExplorerOptions options;
  options.capture_traces = false;
  const fault::ExplorerResult result = fault::ExploreSchedules(
      program, distributions, expected, options, nullptr, /*aware=*/false,
      &schema);
  ASSERT_TRUE(result.divergence_found);
  EXPECT_TRUE(result.witness.plan.events.empty());
  EXPECT_TRUE(fault::PlanDiverges(program, distributions[0], expected,
                                  result.witness.plan, result.witness.seed,
                                  nullptr, /*aware=*/false));
}

TEST(FaultPropertyTest, CoordinatedBarrierSurvivesReorderButNotEveryClass) {
  // The *set*-based barrier tolerates duplication and reordering (marker
  // sets are idempotent), the fragile counting one does not: the pair
  // brackets exactly where at-least-once delivery starts to hurt.
  Schema schema;
  schema.AddRelation("E", 2);
  const ConjunctiveQuery open_triangle =
      ParseQuery(schema, "H(x,y,z) <- E(x,y), E(y,z), !E(z,x)");
  Rng rng(4);
  Instance graph;
  AddRandomGraph(schema, schema.IdOf("E"), 30, 10, rng, graph);
  const Instance expected = Evaluate(open_triangle, graph);

  Schema scratch_set = schema;
  CoordinatedBarrierProgram set_based(WrapCq(open_triangle), scratch_set);
  std::vector<std::vector<Instance>> distributions = {
      DistributeRoundRobin(graph, 3)};
  for (FaultClass fault_class :
       {FaultClass::kDuplicate, FaultClass::kReorder}) {
    const fault::FaultSweep sweep = fault::CheckConsistencyUnderFaults(
        set_based, distributions, expected, fault_class, 4, nullptr,
        /*aware=*/true);
    EXPECT_TRUE(sweep.all_runs_correct)
        << fault::FaultClassName(fault_class);
  }

  Schema scratch_count = schema;
  FragileCountingBarrierProgram counting(WrapCq(open_triangle),
                                         scratch_count);
  const fault::FaultSweep broken = fault::CheckConsistencyUnderFaults(
      counting, distributions, expected, FaultClass::kDuplicate, 6, nullptr,
      /*aware=*/true, &schema);
  EXPECT_FALSE(broken.all_runs_correct);
  ASSERT_TRUE(broken.first_failure.has_value());
  EXPECT_FALSE(broken.first_failure->diff.summary.empty());
}

}  // namespace
}  // namespace lamp
