#include <gtest/gtest.h>

#include "cq/eval.h"
#include "cq/parser.h"
#include "datalog/eval.h"
#include "datalog/monotone.h"
#include "datalog/program.h"

namespace lamp {
namespace {

/// Wraps a CQ (possibly with negation) as a black-box QueryFunction.
QueryFunction WrapQuery(const ConjunctiveQuery& q) {
  return [&q](const Instance& instance) { return Evaluate(q, instance); };
}

class HierarchyTest : public ::testing::Test {
 protected:
  HierarchyTest() {
    e_ = schema_.AddRelation("E", 2);
    triangle_ = ParseQuery(schema_, "H(x,y,z) <- E(x,y), E(y,z), E(z,x)");
    open_triangle_ =
        ParseQuery(schema_, "H(x,y,z) <- E(x,y), E(y,z), !E(z,x)");
  }

  Schema schema_;
  RelationId e_ = 0;
  ConjunctiveQuery triangle_;
  ConjunctiveQuery open_triangle_;
};

TEST_F(HierarchyTest, TriangleIsMonotone) {
  // Plain CQs are monotone: no violation even in the exhaustive search.
  EXPECT_FALSE(FindMonotonicityViolation(schema_, {e_}, WrapQuery(triangle_),
                                         MonotonicityKind::kPlain, 2, 1, 3)
                   .has_value());
}

TEST_F(HierarchyTest, OpenTriangleIsNotMonotone) {
  // Example 5.1(2): adding the closing edge retracts the open triangle.
  const auto violation = FindMonotonicityViolation(
      schema_, {e_}, WrapQuery(open_triangle_), MonotonicityKind::kPlain, 2,
      1, 3);
  ASSERT_TRUE(violation.has_value());
  // The witness must be a genuine violation.
  const Instance& base = violation->first;
  Instance merged = base;
  merged.InsertAll(violation->second);
  const Instance before = Evaluate(open_triangle_, base);
  const Instance after = Evaluate(open_triangle_, merged);
  bool retracted = false;
  for (const Fact& f : before.AllFacts()) {
    if (!after.Contains(f)) retracted = true;
  }
  EXPECT_TRUE(retracted);
}

TEST_F(HierarchyTest, OpenTriangleIsDomainDistinctMonotone) {
  // Example 5.6: the open-triangle query is in Mdistinct — the closing
  // edge E(c,a) uses only values already in adom(I), so no domain-distinct
  // J can retract an answer.
  EXPECT_FALSE(FindMonotonicityViolation(schema_, {e_},
                                         WrapQuery(open_triangle_),
                                         MonotonicityKind::kDomainDistinct,
                                         2, 2, 3)
                   .has_value());
}

TEST_F(HierarchyTest, ComplementTcIsNotDomainDistinctMonotone) {
  // Example 5.6: Q_notTC((a,b)) holds on I = {E(a,a), E(b,b)} (no a->b
  // path) but adding the domain-distinct path {E(a,c), E(c,b)} retracts
  // it.
  Schema schema;
  DatalogProgram prog = ParseProgram(schema,
                                     "TC(x,y) <- E(x,y)\n"
                                     "TC(x,y) <- TC(x,z), TC(z,y)\n"
                                     "OUT(x,y) <- ADom(x), ADom(y), !TC(x,y)");
  const RelationId out = schema.IdOf("OUT");
  QueryFunction not_tc = [&schema, &prog, out](const Instance& edb) {
    const Instance everything = EvaluateProgram(schema, prog, edb);
    Instance result;
    for (const Fact& f : everything.FactsOf(out)) result.Insert(f);
    return result;
  };
  // The paper's witness, found automatically by the exhaustive search.
  const auto violation = FindMonotonicityViolation(
      schema, {schema.IdOf("E")}, not_tc, MonotonicityKind::kDomainDistinct,
      2, 1, 2);
  EXPECT_TRUE(violation.has_value());
}

TEST_F(HierarchyTest, ComplementTcIsDomainDisjointMonotone) {
  // Example 5.10: domain-disjoint additions cannot create new paths
  // between old values.
  Schema schema;
  DatalogProgram prog = ParseProgram(schema,
                                     "TC(x,y) <- E(x,y)\n"
                                     "TC(x,y) <- TC(x,z), TC(z,y)\n"
                                     "OUT(x,y) <- ADom(x), ADom(y), !TC(x,y)");
  const RelationId out = schema.IdOf("OUT");
  QueryFunction not_tc = [&schema, &prog, out](const Instance& edb) {
    const Instance everything = EvaluateProgram(schema, prog, edb);
    Instance result;
    for (const Fact& f : everything.FactsOf(out)) result.Insert(f);
    return result;
  };
  EXPECT_FALSE(FindMonotonicityViolation(schema, {schema.IdOf("E")}, not_tc,
                                         MonotonicityKind::kDomainDisjoint,
                                         2, 2, 2)
                   .has_value());
}

TEST_F(HierarchyTest, NoTriangleQueryIsNotDomainDisjointMonotone) {
  // Example 5.10: Q_NT returns E if the graph has no (3-node) triangle.
  // I = {E(a,a)}: output E(a,a); adding a disjoint triangle empties it.
  const ConjunctiveQuery strict_triangle = ParseQuery(
      schema_, "H(x,y,z) <- E(x,y), E(y,z), E(z,x), x != y, y != z, z != x");
  QueryFunction q_nt = [this, &strict_triangle](const Instance& edb) {
    Instance out;
    if (Evaluate(strict_triangle, edb).Empty()) {
      for (const Fact& f : edb.FactsOf(e_)) out.Insert(f);
    }
    return out;
  };
  const auto violation = FindMonotonicityViolation(
      schema_, {e_}, q_nt, MonotonicityKind::kDomainDisjoint, 1, 3, 3);
  EXPECT_TRUE(violation.has_value());
}

TEST(MonotoneConstraints, AdditionConstraintSemantics) {
  Schema schema;
  const RelationId e = schema.AddRelation("E", 2);
  Instance base;
  base.Insert(Fact(e, {1, 2}));

  Instance mixed;  // One old value, one new.
  mixed.Insert(Fact(e, {2, 9}));
  EXPECT_TRUE(SatisfiesAdditionConstraint(base, mixed,
                                          MonotonicityKind::kPlain));
  EXPECT_TRUE(SatisfiesAdditionConstraint(base, mixed,
                                          MonotonicityKind::kDomainDistinct));
  EXPECT_FALSE(SatisfiesAdditionConstraint(
      base, mixed, MonotonicityKind::kDomainDisjoint));

  Instance old_only;
  old_only.Insert(Fact(e, {2, 1}));
  EXPECT_FALSE(SatisfiesAdditionConstraint(
      base, old_only, MonotonicityKind::kDomainDistinct));

  Instance fresh;
  fresh.Insert(Fact(e, {8, 9}));
  EXPECT_TRUE(SatisfiesAdditionConstraint(base, fresh,
                                          MonotonicityKind::kDomainDisjoint));
}

TEST(MonotoneRandom, RandomFalsifierFindsOpenTriangleViolation) {
  Schema schema;
  const ConjunctiveQuery open_triangle =
      ParseQuery(schema, "H(x,y,z) <- E(x,y), E(y,z), !E(z,x)");
  Rng rng(13);
  const auto violation = RandomMonotonicityViolation(
      schema, {schema.IdOf("E")}, WrapQuery(open_triangle),
      MonotonicityKind::kPlain, 6, 8, 500, rng);
  EXPECT_TRUE(violation.has_value());
}

TEST(MonotoneRandom, RandomFalsifierRespectsDistinctConstraint) {
  Schema schema;
  const ConjunctiveQuery open_triangle =
      ParseQuery(schema, "H(x,y,z) <- E(x,y), E(y,z), !E(z,x)");
  Rng rng(17);
  // In Mdistinct: the falsifier must come up empty.
  EXPECT_FALSE(RandomMonotonicityViolation(
                   schema, {schema.IdOf("E")}, WrapQuery(open_triangle),
                   MonotonicityKind::kDomainDistinct, 6, 8, 300, rng)
                   .has_value());
}

}  // namespace
}  // namespace lamp
