// lamp.wire.v1 unit + property + golden tests.
//
// Three layers of pinning: (1) primitive and payload round-trips over
// seeded random inputs — every encode must decode back to itself through
// arbitrary chunk boundaries; (2) malformed-input rejection (future
// version, oversized body, unknown type, truncation) without misparses;
// (3) a committed golden frame dump (tests/golden/wire_frames.bin) that
// freezes the byte layout itself, so an accidental encoding change breaks
// the build even if encoder and decoder drift together.
//
// Regenerate the golden after an intentional format change (bump
// kWireVersion!) with:
//   LAMP_REGEN_GOLDEN=1 ./build/tests/transport_wire_test

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iterator>
#include <limits>
#include <string>
#include <vector>

#include "common/rng.h"
#include "transport/wire.h"

#ifndef LAMP_TESTS_DIR
#error "tests/CMakeLists.txt must define LAMP_TESTS_DIR"
#endif

namespace lamp::transport {
namespace {

std::string GoldenPath() {
  return std::string(LAMP_TESTS_DIR) + "/golden/wire_frames.bin";
}

Fact RandomFact(Rng& rng) {
  const auto relation = static_cast<RelationId>(rng.Uniform(64));
  const std::size_t arity = rng.Uniform(5);
  std::vector<Value> args;
  for (std::size_t i = 0; i < arity; ++i) {
    // Mix magnitudes: tiny values, negatives and full-range 64-bit ones
    // all have distinct varint/zigzag paths.
    switch (rng.Uniform(3)) {
      case 0:
        args.push_back(Value(rng.UniformInt(-10, 10)));
        break;
      case 1:
        args.push_back(Value(rng.UniformInt(-100000, 100000)));
        break;
      default:
        args.push_back(Value(static_cast<std::int64_t>(rng.Next())));
        break;
    }
  }
  return Fact(relation, std::move(args));
}

TEST(WireTest, VarintRoundTripAndSize) {
  Rng rng(5);
  std::vector<std::uint64_t> values = {0,       1,
                                       127,     128,
                                       16383,   16384,
                                       ~0ull,   0x8000000000000000ull};
  for (int i = 0; i < 200; ++i) values.push_back(rng.Next() >> rng.Uniform(64));
  for (std::uint64_t v : values) {
    std::vector<std::uint8_t> buf;
    PutVarint(buf, v);
    EXPECT_EQ(buf.size(), VarintSize(v)) << v;
    WireReader reader(buf);
    const auto back = reader.ReadVarint();
    ASSERT_TRUE(back.has_value()) << v;
    EXPECT_EQ(*back, v);
    EXPECT_TRUE(reader.AtEnd());
  }
}

TEST(WireTest, ZigzagRoundTripAndSize) {
  Rng rng(6);
  std::vector<std::int64_t> values = {0, -1, 1, -64, 63, -65, 64,
                                      std::numeric_limits<std::int64_t>::min(),
                                      std::numeric_limits<std::int64_t>::max()};
  for (int i = 0; i < 200; ++i) {
    values.push_back(static_cast<std::int64_t>(rng.Next()) >> rng.Uniform(63));
  }
  for (std::int64_t v : values) {
    std::vector<std::uint8_t> buf;
    PutZigzag(buf, v);
    EXPECT_EQ(buf.size(), ZigzagSize(v)) << v;
    WireReader reader(buf);
    const auto back = reader.ReadZigzag();
    ASSERT_TRUE(back.has_value()) << v;
    EXPECT_EQ(*back, v);
  }
}

TEST(WireTest, FactRoundTripProperty) {
  Rng rng(7);
  for (int i = 0; i < 500; ++i) {
    const Fact fact = RandomFact(rng);
    std::vector<std::uint8_t> buf;
    PutFact(buf, fact);
    EXPECT_EQ(buf.size(), EncodedFactSize(fact));
    WireReader reader(buf);
    const auto back = ReadFact(reader);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, fact);
    EXPECT_TRUE(reader.AtEnd());
  }
}

TEST(WireTest, PayloadRoundTrips) {
  Rng rng(8);
  std::vector<Fact> owned;
  for (int i = 0; i < 20; ++i) owned.push_back(RandomFact(rng));
  std::vector<const Fact*> batch;
  for (const Fact& f : owned) batch.push_back(&f);

  const auto hello = DecodeHelloPayload(EncodeHelloPayload(3, 0xdeadbeef));
  ASSERT_TRUE(hello.has_value());
  EXPECT_EQ(hello->rank, 3u);
  EXPECT_EQ(hello->seed, 0xdeadbeefull);
  EXPECT_EQ(hello->features, 0u);

  // Featureless encoding is byte-identical to features=0 (the optional
  // trailing varint is omitted), and nonzero features round-trip.
  EXPECT_EQ(EncodeHelloPayload(3, 0xdeadbeef),
            EncodeHelloPayload(3, 0xdeadbeef, 0));
  const auto featured = DecodeHelloPayload(
      EncodeHelloPayload(3, 0xdeadbeef, kHelloFeatureTraceCtx));
  ASSERT_TRUE(featured.has_value());
  EXPECT_EQ(featured->rank, 3u);
  EXPECT_EQ(featured->seed, 0xdeadbeefull);
  EXPECT_EQ(featured->features, kHelloFeatureTraceCtx);

  const auto ctx = DecodeTraceCtxPayload(
      EncodeTraceCtxPayload(0x1122334455667788ull, 4242, 9));
  ASSERT_TRUE(ctx.has_value());
  EXPECT_EQ(ctx->trace_id, 0x1122334455667788ull);
  EXPECT_EQ(ctx->span, 4242u);
  EXPECT_EQ(ctx->round, 9u);

  const auto facts = DecodeFactBatchPayload(EncodeFactBatchPayload(9, batch));
  ASSERT_TRUE(facts.has_value());
  EXPECT_EQ(facts->round, 9u);
  ASSERT_EQ(facts->facts.size(), owned.size());
  for (std::size_t i = 0; i < owned.size(); ++i) {
    EXPECT_EQ(facts->facts[i], owned[i]);
  }

  const auto msg =
      DecodeMessagePayload(EncodeMessagePayload(42, 7, 12345, owned));
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->seq, 42u);
  EXPECT_EQ(msg->depth, 7u);
  EXPECT_EQ(msg->parent, 12345u);
  EXPECT_EQ(msg->facts.size(), owned.size());

  const auto stats = DecodeStatsPayload(EncodeStatsPayload(1, 999, 80000));
  ASSERT_TRUE(stats.has_value());
  EXPECT_EQ(stats->received, 999u);
  EXPECT_EQ(stats->wire_bytes, 80000u);
}

TEST(WireTest, FrameRoundTripThroughArbitraryChunks) {
  Rng rng(9);
  // A frame stream with mixed types and payload sizes.
  std::vector<WireFrame> frames;
  for (int i = 0; i < 40; ++i) {
    WireFrame frame;
    frame.from = static_cast<std::uint32_t>(rng.Uniform(300));
    frame.to = static_cast<std::uint32_t>(rng.Uniform(300));
    std::vector<Fact> owned;
    for (std::size_t k = rng.Uniform(8); k > 0; --k) {
      owned.push_back(RandomFact(rng));
    }
    std::vector<const Fact*> batch;
    for (const Fact& f : owned) batch.push_back(&f);
    switch (rng.Uniform(3)) {
      case 0:
        frame.type = FrameType::kFactBatch;
        frame.payload = EncodeFactBatchPayload(rng.Uniform(5), batch);
        break;
      case 1:
        frame.type = FrameType::kMessage;
        frame.payload =
            EncodeMessagePayload(rng.Next(), rng.Uniform(50),
                                 static_cast<std::uint32_t>(rng.Uniform(99)),
                                 owned);
        break;
      default:
        frame.type = FrameType::kShutdown;
        break;
    }
    frames.push_back(std::move(frame));
  }

  std::vector<std::uint8_t> stream;
  std::size_t expected_bytes = 0;
  for (const WireFrame& frame : frames) {
    AppendFrame(stream, frame);
    expected_bytes += FrameWireSize(frame);
  }
  EXPECT_EQ(stream.size(), expected_bytes);

  // Feed in random chunks (including empty ones); every frame must come
  // back intact and in order.
  FrameDecoder decoder;
  std::size_t fed = 0;
  std::vector<WireFrame> decoded;
  while (fed < stream.size()) {
    const std::size_t chunk =
        std::min<std::size_t>(rng.Uniform(97), stream.size() - fed);
    decoder.Feed(stream.data() + fed, chunk);
    fed += chunk;
    while (auto frame = decoder.Next()) decoded.push_back(std::move(*frame));
  }
  ASSERT_FALSE(decoder.error());
  ASSERT_EQ(decoded.size(), frames.size());
  for (std::size_t i = 0; i < frames.size(); ++i) {
    EXPECT_EQ(decoded[i].type, frames[i].type) << i;
    EXPECT_EQ(decoded[i].from, frames[i].from) << i;
    EXPECT_EQ(decoded[i].to, frames[i].to) << i;
    EXPECT_EQ(decoded[i].payload, frames[i].payload) << i;
  }
}

TEST(WireTest, DecoderRejectsMalformedStreams) {
  // Future version byte.
  {
    WireFrame frame;
    frame.type = FrameType::kShutdown;
    std::vector<std::uint8_t> bytes;
    AppendFrame(bytes, frame);
    bytes[4] = kWireVersion + 1;  // Version byte sits after the u32 length.
    FrameDecoder decoder;
    decoder.Feed(bytes.data(), bytes.size());
    EXPECT_FALSE(decoder.Next().has_value());
    EXPECT_TRUE(decoder.error());
  }
  // Frame type zero is not a skip candidate — it can only come from
  // zeroed/corrupt bytes, so it stays a hard error.
  {
    WireFrame frame;
    frame.type = FrameType::kShutdown;
    std::vector<std::uint8_t> bytes;
    AppendFrame(bytes, frame);
    bytes[5] = 0;
    FrameDecoder decoder;
    decoder.Feed(bytes.data(), bytes.size());
    EXPECT_FALSE(decoder.Next().has_value());
    EXPECT_TRUE(decoder.error());
  }
  // Oversized length prefix.
  {
    const std::uint32_t body = kMaxFrameBody + 1;
    std::uint8_t bytes[4] = {
        static_cast<std::uint8_t>(body),
        static_cast<std::uint8_t>(body >> 8),
        static_cast<std::uint8_t>(body >> 16),
        static_cast<std::uint8_t>(body >> 24),
    };
    FrameDecoder decoder;
    decoder.Feed(bytes, sizeof bytes);
    EXPECT_FALSE(decoder.Next().has_value());
    EXPECT_TRUE(decoder.error());
  }
  // Truncation is not an error — just "need more bytes".
  {
    WireFrame frame;
    frame.type = FrameType::kHello;
    frame.payload = EncodeHelloPayload(1, 2);
    std::vector<std::uint8_t> bytes;
    AppendFrame(bytes, frame);
    FrameDecoder decoder;
    decoder.Feed(bytes.data(), bytes.size() - 1);
    EXPECT_FALSE(decoder.Next().has_value());
    EXPECT_FALSE(decoder.error());
    decoder.Feed(bytes.data() + bytes.size() - 1, 1);
    EXPECT_TRUE(decoder.Next().has_value());
  }
  // Malformed payloads are rejected by the payload decoders.
  EXPECT_FALSE(DecodeFactBatchPayload({0x01}).has_value());
  EXPECT_FALSE(DecodeHelloPayload({}).has_value());
  // A truncated features varint (continuation bit with no next byte) and
  // bytes *after* the features varint are both rejected; a single whole
  // extra varint is the legal optional features field.
  std::vector<std::uint8_t> truncated = EncodeHelloPayload(1, 2);
  truncated.push_back(0x80);
  EXPECT_FALSE(DecodeHelloPayload(truncated).has_value());
  std::vector<std::uint8_t> trailing = EncodeHelloPayload(1, 2, 5);
  trailing.push_back(0);
  EXPECT_FALSE(DecodeHelloPayload(trailing).has_value());
  EXPECT_FALSE(DecodeTraceCtxPayload({}).has_value());
  std::vector<std::uint8_t> ctx_trailing = EncodeTraceCtxPayload(1, 2, 3);
  ctx_trailing.push_back(0);
  EXPECT_FALSE(DecodeTraceCtxPayload(ctx_trailing).has_value());
}

TEST(WireTest, DecoderSkipsUnknownFrameTypes) {
  // A current-version peer talking to an older decoder: frames of a type
  // the decoder does not know are skipped (counted, not fatal), and the
  // known frames around them still come through in order. This is the
  // forward-compatibility contract optional frames like kTraceCtx rely
  // on — see the FrameDecoder doc comment in transport/wire.h.
  std::vector<std::uint8_t> stream;
  AppendFrame(stream, {kWireVersion, FrameType::kHello, 1, 0,
                       EncodeHelloPayload(1, 7)});
  // Hand-build a frame whose type byte is from the future.
  {
    WireFrame unknown;
    unknown.type = FrameType::kShutdown;
    unknown.from = 1;
    unknown.to = 0;
    unknown.payload = {0xaa, 0xbb, 0xcc};
    const std::size_t at = stream.size();
    AppendFrame(stream, unknown);
    stream[at + 5] = 0x7f;  // Type byte sits after u32 length + version.
  }
  AppendFrame(stream, {kWireVersion, FrameType::kShutdown, 1, 0, {}});

  FrameDecoder decoder;
  decoder.Feed(stream.data(), stream.size());
  std::vector<WireFrame> decoded;
  while (auto frame = decoder.Next()) decoded.push_back(std::move(*frame));
  EXPECT_FALSE(decoder.error());
  EXPECT_EQ(decoder.unknown_skipped(), 1u);
  EXPECT_EQ(decoder.last_unknown_type(), 0x7f);
  ASSERT_EQ(decoded.size(), 2u);
  EXPECT_EQ(decoded[0].type, FrameType::kHello);
  EXPECT_EQ(decoded[1].type, FrameType::kShutdown);

  // Skipping respects chunk boundaries: an unknown frame split across
  // feeds is still consumed exactly once.
  FrameDecoder chunked;
  std::vector<WireFrame> chunk_decoded;
  for (std::size_t i = 0; i < stream.size(); ++i) {
    chunked.Feed(stream.data() + i, 1);
    while (auto frame = chunked.Next()) {
      chunk_decoded.push_back(std::move(*frame));
    }
  }
  EXPECT_FALSE(chunked.error());
  EXPECT_EQ(chunked.unknown_skipped(), 1u);
  EXPECT_EQ(chunk_decoded.size(), 2u);
}

// Deterministic frame stream covering every type and the interesting
// value shapes (empty batch, negative args, multi-byte varints).
std::vector<std::uint8_t> GoldenStream() {
  std::vector<std::uint8_t> stream;
  AppendFrame(stream, {kWireVersion, FrameType::kHello, 0, 1,
                       EncodeHelloPayload(0, 0x1234567890abcdefull)});
  AppendFrame(stream, {kWireVersion, FrameType::kHello, 1, 0,
                       EncodeHelloPayload(1, 0x1234567890abcdefull,
                                          kHelloFeatureTraceCtx)});
  AppendFrame(stream, {kWireVersion, FrameType::kTraceCtx, 2, 3,
                       EncodeTraceCtxPayload(0x0123456789abcdefull, 17, 4)});

  const Fact small(0, {Value(1), Value(-1)});
  const Fact wide(3, {Value(1000000), Value(-1000000), Value(0)});
  const Fact nullary(7, {});
  AppendFrame(stream, {kWireVersion, FrameType::kFactBatch, 2, 3,
                       EncodeFactBatchPayload(4, {&small, &wide, &nullary})});
  AppendFrame(stream, {kWireVersion, FrameType::kFactBatch, 3, 2,
                       EncodeFactBatchPayload(
                           0, std::vector<const Fact*>{})});
  AppendFrame(stream, {kWireVersion, FrameType::kMessage, 200, 300,
                       EncodeMessagePayload(77, 5, 42, {small, wide})});
  AppendFrame(stream, {kWireVersion, FrameType::kStats, 1, 0,
                       EncodeStatsPayload(2, 12345, 9876543)});
  AppendFrame(stream, {kWireVersion, FrameType::kShutdown, 0, 0, {}});
  return stream;
}

TEST(WireTest, GoldenFrameDumpIsStable) {
  const std::vector<std::uint8_t> stream = GoldenStream();
  if (std::getenv("LAMP_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(GoldenPath(), std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(stream.data()),
              static_cast<std::streamsize>(stream.size()));
    GTEST_SKIP() << "golden regenerated at " << GoldenPath();
  }
  std::ifstream in(GoldenPath(), std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing golden " << GoldenPath()
                         << " — regenerate with LAMP_REGEN_GOLDEN=1";
  const std::vector<std::uint8_t> golden(
      (std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  ASSERT_EQ(stream, golden)
      << "wire layout drifted from the golden. If the change is intentional,"
         " bump kWireVersion and rerun with LAMP_REGEN_GOLDEN=1.";

  // And the committed bytes must decode — the dump doubles as a decoder
  // fixture for foreign implementations.
  FrameDecoder decoder;
  decoder.Feed(golden.data(), golden.size());
  std::size_t frames = 0;
  while (auto frame = decoder.Next()) {
    ++frames;
    if (frame->type == FrameType::kFactBatch && frame->from == 2) {
      const auto batch = DecodeFactBatchPayload(frame->payload);
      ASSERT_TRUE(batch.has_value());
      EXPECT_EQ(batch->round, 4u);
      EXPECT_EQ(batch->facts.size(), 3u);
    }
  }
  EXPECT_FALSE(decoder.error());
  EXPECT_EQ(frames, 8u);
  EXPECT_EQ(decoder.unknown_skipped(), 0u);
}

}  // namespace
}  // namespace lamp::transport
