// Unit tests for lamp::par (src/par/thread_pool.h): static chunking,
// full-range coverage at every thread count, deterministic exception
// selection (lowest failing chunk wins), inline nested ParallelFor (no
// deadlock on the fixed-size pool), and the DefaultThreads /
// ConfigureFromCommandLine configuration surface.

#include "par/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

namespace lamp::par {
namespace {

TEST(ThreadPoolTest, ParallelForCoversExactlyTheRange) {
  for (std::size_t threads : {1u, 2u, 3u, 8u}) {
    ThreadPool pool(threads);
    const std::size_t n = 97;  // Deliberately not a multiple of any count.
    std::vector<std::atomic<int>> hits(n);
    pool.ParallelFor(0, n, [&](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "i=" << i << " threads=" << threads;
    }
  }
}

TEST(ThreadPoolTest, EmptyAndSingletonRanges) {
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  pool.ParallelFor(5, 5, [&](std::size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
  pool.ParallelFor(7, 8, [&](std::size_t i) {
    EXPECT_EQ(i, 7u);
    calls.fetch_add(1);
  });
  EXPECT_EQ(calls.load(), 1);
}

TEST(ThreadPoolTest, ChunksAreContiguousAscendingAndStatic) {
  ThreadPool pool(4);
  const std::size_t n = 10;
  // Record (chunk, lo, hi) triples; chunk identity makes order checkable
  // regardless of execution interleaving.
  std::vector<std::pair<std::size_t, std::size_t>> bounds(pool.NumChunks(n));
  pool.ParallelChunks(0, n, [&](std::size_t chunk, std::size_t lo,
                                std::size_t hi) {
    bounds[chunk] = {lo, hi};
  });
  std::size_t expect_lo = 0;
  for (const auto& [lo, hi] : bounds) {
    EXPECT_EQ(lo, expect_lo);
    EXPECT_LT(lo, hi);
    expect_lo = hi;
  }
  EXPECT_EQ(expect_lo, n);

  // Boundaries are a pure function of (range, thread count): a second run
  // over the same range reproduces them exactly.
  std::vector<std::pair<std::size_t, std::size_t>> again(pool.NumChunks(n));
  pool.ParallelChunks(0, n, [&](std::size_t chunk, std::size_t lo,
                                std::size_t hi) {
    again[chunk] = {lo, hi};
  });
  EXPECT_EQ(bounds, again);
}

TEST(ThreadPoolTest, NumChunksNeverExceedsRangeOrThreads) {
  ThreadPool pool(8);
  EXPECT_EQ(pool.NumChunks(0), 0u);
  EXPECT_EQ(pool.NumChunks(3), 3u);
  EXPECT_EQ(pool.NumChunks(8), 8u);
  EXPECT_EQ(pool.NumChunks(1000), 8u);
}

TEST(ThreadPoolTest, LowestChunkExceptionWins) {
  for (std::size_t threads : {1u, 4u}) {
    ThreadPool pool(threads);
    // Several failing indices: the one in the lowest chunk (index 3) must
    // be the one observed, at every thread count.
    try {
      pool.ParallelFor(0, 64, [](std::size_t i) {
        if (i == 3 || i == 40 || i == 63) {
          throw std::runtime_error("boom at " + std::to_string(i));
        }
      });
      FAIL() << "expected an exception (threads=" << threads << ")";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "boom at 3") << "threads=" << threads;
    }
  }
}

TEST(ThreadPoolTest, PoolSurvivesAnException) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.ParallelFor(0, 8, [](std::size_t) { throw std::logic_error("x"); }),
      std::logic_error);
  // The pool must still execute work afterwards.
  std::atomic<int> sum{0};
  pool.ParallelFor(0, 8, [&](std::size_t i) {
    sum.fetch_add(static_cast<int>(i));
  });
  EXPECT_EQ(sum.load(), 28);
}

TEST(ThreadPoolTest, NestedParallelForRunsInlineWithoutDeadlock) {
  ThreadPool pool(2);
  const std::size_t outer = 8, inner = 16;
  std::vector<std::atomic<int>> hits(outer * inner);
  pool.ParallelFor(0, outer, [&](std::size_t i) {
    // Nested call from (potentially) a worker thread: must complete inline
    // rather than enqueue onto the already-busy fixed-size pool.
    pool.ParallelFor(0, inner, [&](std::size_t j) {
      hits[i * inner + j].fetch_add(1);
    });
  });
  for (std::size_t k = 0; k < outer * inner; ++k) {
    EXPECT_EQ(hits[k].load(), 1) << "k=" << k;
  }
}

TEST(ThreadPoolTest, SingleThreadPoolRunsEverythingInline) {
  ThreadPool pool(1);
  const auto caller = std::this_thread::get_id();
  pool.ParallelFor(0, 5, [&](std::size_t) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
  });
  EXPECT_FALSE(ThreadPool::OnWorkerThread());
}

TEST(ParConfigTest, SetDefaultThreadsClampsAndRebuildsGlobalPool) {
  SetDefaultThreads(3);
  EXPECT_EQ(DefaultThreads(), 3u);
  EXPECT_EQ(GlobalPool().num_threads(), 3u);
  SetDefaultThreads(0);  // Clamped to serial.
  EXPECT_EQ(DefaultThreads(), 1u);
  EXPECT_EQ(GlobalPool().num_threads(), 1u);
  SetDefaultThreads(1);
}

TEST(ParConfigTest, ConfigureFromCommandLineStripsThreadsFlag) {
  char arg0[] = "bench";
  char arg1[] = "--threads=5";
  char arg2[] = "--benchmark_filter=x";
  char* argv[] = {arg0, arg1, arg2, nullptr};
  int argc = 3;
  ConfigureFromCommandLine(&argc, argv);
  EXPECT_EQ(DefaultThreads(), 5u);
  ASSERT_EQ(argc, 2);
  EXPECT_STREQ(argv[0], "bench");
  EXPECT_STREQ(argv[1], "--benchmark_filter=x");

  char barg0[] = "bench";
  char barg1[] = "--threads";
  char barg2[] = "2";
  char* bargv[] = {barg0, barg1, barg2, nullptr};
  int bargc = 3;
  ConfigureFromCommandLine(&bargc, bargv);
  EXPECT_EQ(DefaultThreads(), 2u);
  EXPECT_EQ(bargc, 1);
  SetDefaultThreads(1);
}

}  // namespace
}  // namespace lamp::par
