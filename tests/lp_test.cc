#include <cmath>

#include <gtest/gtest.h>

#include "cq/parser.h"
#include "lp/edge_packing.h"
#include "lp/simplex.h"

namespace lamp {
namespace {

TEST(Simplex, SimpleMaximization) {
  // max 3x + 2y s.t. x + y <= 4, x + 3y <= 6 -> optimum at (4, 0) = 12.
  LinearProgram lp;
  lp.num_vars = 2;
  lp.objective = {3.0, 2.0};
  lp.constraints.push_back({{1.0, 1.0}, ConstraintType::kLe, 4.0});
  lp.constraints.push_back({{1.0, 3.0}, ConstraintType::kLe, 6.0});
  const LpSolution sol = SolveLp(lp);
  ASSERT_EQ(sol.status, LpSolution::Status::kOptimal);
  EXPECT_NEAR(sol.objective_value, 12.0, 1e-9);
  EXPECT_NEAR(sol.x[0], 4.0, 1e-9);
  EXPECT_NEAR(sol.x[1], 0.0, 1e-9);
}

TEST(Simplex, EqualityConstraint) {
  // max x + y s.t. x + y = 3, x <= 1 -> 3 with x in [0,1].
  LinearProgram lp;
  lp.num_vars = 2;
  lp.objective = {1.0, 1.0};
  lp.constraints.push_back({{1.0, 1.0}, ConstraintType::kEq, 3.0});
  lp.constraints.push_back({{1.0, 0.0}, ConstraintType::kLe, 1.0});
  const LpSolution sol = SolveLp(lp);
  ASSERT_EQ(sol.status, LpSolution::Status::kOptimal);
  EXPECT_NEAR(sol.objective_value, 3.0, 1e-9);
}

TEST(Simplex, GeConstraint) {
  // min x (== max -x) s.t. x >= 2.5 -> 2.5.
  LinearProgram lp;
  lp.num_vars = 1;
  lp.objective = {-1.0};
  lp.constraints.push_back({{1.0}, ConstraintType::kGe, 2.5});
  const LpSolution sol = SolveLp(lp);
  ASSERT_EQ(sol.status, LpSolution::Status::kOptimal);
  EXPECT_NEAR(-sol.objective_value, 2.5, 1e-9);
}

TEST(Simplex, DetectsInfeasibility) {
  // x <= 1 and x >= 2.
  LinearProgram lp;
  lp.num_vars = 1;
  lp.objective = {1.0};
  lp.constraints.push_back({{1.0}, ConstraintType::kLe, 1.0});
  lp.constraints.push_back({{1.0}, ConstraintType::kGe, 2.0});
  EXPECT_EQ(SolveLp(lp).status, LpSolution::Status::kInfeasible);
}

TEST(Simplex, DetectsUnboundedness) {
  LinearProgram lp;
  lp.num_vars = 2;
  lp.objective = {1.0, 0.0};
  lp.constraints.push_back({{0.0, 1.0}, ConstraintType::kLe, 1.0});
  EXPECT_EQ(SolveLp(lp).status, LpSolution::Status::kUnbounded);
}

TEST(Simplex, NegativeRhsNormalization) {
  // -x <= -2 is x >= 2; max -x -> -2.
  LinearProgram lp;
  lp.num_vars = 1;
  lp.objective = {-1.0};
  lp.constraints.push_back({{-1.0}, ConstraintType::kLe, -2.0});
  const LpSolution sol = SolveLp(lp);
  ASSERT_EQ(sol.status, LpSolution::Status::kOptimal);
  EXPECT_NEAR(sol.objective_value, -2.0, 1e-9);
}

// --- Edge packing values from the paper and the BKS line of work ---------

TEST(EdgePacking, BinaryJoinHasTauOne) {
  // Q1: H(x,y,z) <- R(x,y), S(y,z): tau* = 1 (y is shared), load m/p.
  Schema schema;
  const ConjunctiveQuery q = ParseQuery(schema, "H(x,y,z) <- R(x,y), S(y,z)");
  EXPECT_NEAR(FractionalEdgePackingValue(q), 1.0, 1e-9);
}

TEST(EdgePacking, TriangleHasTauThreeHalves) {
  // Section 3.1: tau*(triangle) = 3/2, load m/p^{2/3}.
  Schema schema;
  const ConjunctiveQuery q =
      ParseQuery(schema, "H(x,y,z) <- R(x,y), S(y,z), T(z,x)");
  EXPECT_NEAR(FractionalEdgePackingValue(q), 1.5, 1e-9);
}

TEST(EdgePacking, CartesianProductTauTwo) {
  Schema schema;
  const ConjunctiveQuery q = ParseQuery(schema, "H(x,y) <- R(x), S(y)");
  EXPECT_NEAR(FractionalEdgePackingValue(q), 2.0, 1e-9);
}

TEST(EdgePacking, StarQueryTauOne) {
  // All atoms share the center variable: at most total weight 1.
  Schema schema;
  const ConjunctiveQuery q =
      ParseQuery(schema, "H(x,a,b,c) <- R(x,a), S(x,b), T(x,c)");
  EXPECT_NEAR(FractionalEdgePackingValue(q), 1.0, 1e-9);
}

TEST(EdgePacking, PathOfLengthThreeIsTwo) {
  // R and T are disjoint edges: pack both with weight 1.
  Schema schema;
  const ConjunctiveQuery q =
      ParseQuery(schema, "H(x,y,z,w) <- R(x,y), S(y,z), T(z,w)");
  EXPECT_NEAR(FractionalEdgePackingValue(q), 2.0, 1e-9);
}

TEST(EdgePacking, FourCycleTauTwo) {
  Schema schema;
  const ConjunctiveQuery q =
      ParseQuery(schema, "H(x,y,z,w) <- R(x,y), S(y,z), T(z,w), U(w,x)");
  EXPECT_NEAR(FractionalEdgePackingValue(q), 2.0, 1e-9);
}

TEST(EdgeCover, TriangleCoverIsAlsoThreeHalves) {
  // For the triangle the fractional cover and packing coincide (3/2).
  Schema schema;
  const ConjunctiveQuery q =
      ParseQuery(schema, "H(x,y,z) <- R(x,y), S(y,z), T(z,x)");
  EXPECT_NEAR(FractionalEdgeCoverValue(q), 1.5, 1e-9);
}

TEST(EdgeCover, BinaryJoinCoverIsTwo)  {
  // Covering x and z needs both atoms fully.
  Schema schema;
  const ConjunctiveQuery q = ParseQuery(schema, "H(x,y,z) <- R(x,y), S(y,z)");
  EXPECT_NEAR(FractionalEdgeCoverValue(q), 2.0, 1e-9);
}

TEST(Shares, TriangleExponentsAreUniform) {
  Schema schema;
  const ConjunctiveQuery q =
      ParseQuery(schema, "H(x,y,z) <- R(x,y), S(y,z), T(z,x)");
  const ShareExponents shares = OptimalShareExponents(q);
  EXPECT_NEAR(shares.load_exponent, 2.0 / 3.0, 1e-9);
  for (double e : shares.exponent) EXPECT_NEAR(e, 1.0 / 3.0, 1e-9);
}

TEST(Shares, LoadExponentIsInverseTauStar) {
  // LP duality: min-max share exponent == 1/tau*, checked on a family of
  // queries with different structure.
  const char* queries[] = {
      "H(x,y,z) <- R(x,y), S(y,z)",
      "H(x,y,z) <- R(x,y), S(y,z), T(z,x)",
      "H(x,y,z,w) <- R(x,y), S(y,z), T(z,w), U(w,x)",
      "H(x,a,b,c) <- R(x,a), S(x,b), T(x,c)",
      "H(x,y) <- R(x), S(y)",
      "H(x,y,z,w) <- R(x,y), S(y,z), T(z,w)",
  };
  for (const char* text : queries) {
    Schema schema;  // Fresh schema: H has a different arity per query.
    const ConjunctiveQuery q = ParseQuery(schema, text);
    const double tau = FractionalEdgePackingValue(q);
    const ShareExponents shares = OptimalShareExponents(q);
    EXPECT_NEAR(shares.load_exponent, 1.0 / tau, 1e-7) << text;
  }
}

TEST(Shares, JoinPutsAllShareOnJoinVariable) {
  // For R(x,y) |x| S(y,z) the optimal grid hashes only y: x_y = 1.
  Schema schema;
  const ConjunctiveQuery q = ParseQuery(schema, "H(x,y,z) <- R(x,y), S(y,z)");
  const ShareExponents shares = OptimalShareExponents(q);
  EXPECT_NEAR(shares.exponent[q.FindVar("y")], 1.0, 1e-9);
  EXPECT_NEAR(shares.exponent[q.FindVar("x")], 0.0, 1e-9);
  EXPECT_NEAR(shares.exponent[q.FindVar("z")], 0.0, 1e-9);
}

}  // namespace
}  // namespace lamp
