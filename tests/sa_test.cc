// Unit tests for the static analyzer (src/sa): dependency graph and SCC
// condensation, stratification with negation-cycle witnesses, fragment
// classification against the Figure 2 hierarchy, and the lint passes.

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "cq/parser.h"
#include "datalog/program.h"
#include "sa/analyzer.h"
#include "sa/catalog.h"
#include "sa/depgraph.h"
#include "sa/fragment.h"
#include "sa/lint.h"

namespace lamp::sa {
namespace {

DatalogProgram Parse(Schema& schema, std::string_view text) {
  return ParseProgram(schema, text);
}

// --- Dependency graph ----------------------------------------------------

TEST(DepGraphTest, EdgesCarryRuleAndPolarity) {
  Schema schema;
  DatalogProgram prog =
      Parse(schema, "OUT(x,y) <- E(x,y), !F(x,y)");
  const DependencyGraph graph(prog);
  ASSERT_EQ(graph.edges().size(), 2u);
  EXPECT_FALSE(graph.edges()[0].negative);
  EXPECT_EQ(graph.edges()[0].body, schema.IdOf("E"));
  EXPECT_TRUE(graph.edges()[1].negative);
  EXPECT_EQ(graph.edges()[1].body, schema.IdOf("F"));
  EXPECT_EQ(graph.edges()[1].rule_index, 0u);
}

TEST(DepGraphTest, SccCondensationIsReverseTopological) {
  Schema schema;
  DatalogProgram prog = Parse(schema,
                              "TC(x,y) <- E(x,y)\n"
                              "TC(x,y) <- TC(x,z), E(z,y)\n"
                              "OUT(x,y) <- TC(x,y), TC(y,x)");
  const DependencyGraph graph(prog);
  // TC is its own (recursive) component; E and OUT are singletons.
  EXPECT_EQ(graph.Components().size(), 3u);
  // Reverse topological: every component precedes its dependents.
  EXPECT_LT(graph.ComponentOf(schema.IdOf("E")),
            graph.ComponentOf(schema.IdOf("TC")));
  EXPECT_LT(graph.ComponentOf(schema.IdOf("TC")),
            graph.ComponentOf(schema.IdOf("OUT")));
}

TEST(DepGraphTest, StratifyMatchesDatalogProgramStratify) {
  const std::string_view programs[] = {
      "TC(x,y) <- E(x,y)\nTC(x,y) <- TC(x,z), E(z,y)",
      "TC(x,y) <- E(x,y)\n"
      "TC(x,y) <- TC(x,z), TC(z,y)\n"
      "OUT(x,y) <- ADom(x), ADom(y), !TC(x,y)",
      "A(x) <- E(x,y)\nB(x) <- A(x), !C(x)\nC(x) <- E(x,x)\n"
      "D(x) <- B(x), !A(x)",
      "H(x,y,z) <- E(x,y), E(y,z), !E(z,x)",
  };
  for (std::string_view text : programs) {
    Schema schema;
    DatalogProgram prog = Parse(schema, text);
    const DependencyGraph graph(prog);
    const auto via_graph = graph.Stratify();
    const auto via_program = prog.Stratify();
    ASSERT_TRUE(via_graph.has_value()) << text;
    ASSERT_TRUE(via_program.has_value()) << text;
    // Both compute the least fixpoint of the same constraints, so the
    // rule groupings must be identical.
    EXPECT_EQ(via_graph->rule_strata, *via_program) << text;
  }
}

TEST(DepGraphTest, WinMoveDoesNotStratifyAndNamesItsCycle) {
  Schema schema;
  DatalogProgram prog = Parse(schema, "Win(x) <- Move(x,y), !Win(y)");
  const DependencyGraph graph(prog);
  EXPECT_FALSE(graph.IsStratifiable());
  EXPECT_FALSE(graph.Stratify().has_value());
  EXPECT_FALSE(prog.Stratify().has_value());  // Agreement on "no".
  const auto cycle = graph.FindNegationCycle();
  ASSERT_TRUE(cycle.has_value());
  EXPECT_EQ(cycle->rule_index, 0u);
  EXPECT_EQ(cycle->relations,
            std::vector<RelationId>{schema.IdOf("Win")});
  const std::string description = DescribeNegationCycle(schema, *cycle);
  EXPECT_NE(description.find("Win -!-> Win"), std::string::npos)
      << description;
}

TEST(DepGraphTest, MutualNegationCycleListsBothRelations) {
  Schema schema;
  DatalogProgram prog = Parse(schema,
                              "Win(x) <- Move(x,y), !Lose(y)\n"
                              "Lose(x) <- Move(x,y), !Win(y)");
  const DependencyGraph graph(prog);
  const auto cycle = graph.FindNegationCycle();
  ASSERT_TRUE(cycle.has_value());
  EXPECT_EQ(cycle->relations.size(), 2u);
  const std::set<RelationId> on_cycle(cycle->relations.begin(),
                                      cycle->relations.end());
  EXPECT_TRUE(on_cycle.count(schema.IdOf("Win")) > 0);
  EXPECT_TRUE(on_cycle.count(schema.IdOf("Lose")) > 0);
}

TEST(DepGraphTest, EdbNegationDoesNotBumpStratum) {
  Schema schema;
  DatalogProgram prog = Parse(schema, "H(x,y) <- E(x,y), !F(x,y)");
  const DependencyGraph graph(prog);
  const auto strata = graph.Stratify();
  ASSERT_TRUE(strata.has_value());
  EXPECT_EQ(strata->num_strata, 1u);  // F is extensional: known upfront.
  EXPECT_EQ(strata->relation_stratum.at(schema.IdOf("F")), 0u);
  EXPECT_EQ(strata->relation_stratum.at(schema.IdOf("H")), 0u);
}

TEST(DepGraphTest, UnreachableRulesFindsDeadDerivations) {
  Schema schema;
  DatalogProgram prog = Parse(schema,
                              "A(x) <- E(x,y)\n"
                              "B(x) <- A(x)\n"
                              "C(x) <- E(x,x)");
  const DependencyGraph graph(prog);
  const auto dead = graph.UnreachableRules({schema.IdOf("B")});
  EXPECT_EQ(dead, std::vector<std::size_t>{2u});  // Only C is dead.
  EXPECT_TRUE(graph.UnreachableRules({schema.IdOf("B"), schema.IdOf("C")})
                  .empty());
}

// --- Fragment classification ---------------------------------------------

TEST(FragmentTest, RefutationsNameRuleAndAtom) {
  Schema schema;
  DatalogProgram prog = Parse(schema,
                              "TC(x,y) <- E(x,y)\n"
                              "OUT(x,y) <- E(x,y), !TC(x,y)");
  const FragmentReport report = ClassifyFragments(schema, prog);
  EXPECT_TRUE(report.stratified);

  const FragmentVerdict& nf = report.Verdict(Fragment::kNegationFree);
  ASSERT_EQ(nf.refutations.size(), 1u);
  EXPECT_EQ(nf.refutations[0].rule_index, 1u);
  EXPECT_EQ(nf.refutations[0].atom_index, 0);
  EXPECT_TRUE(nf.refutations[0].in_negated);

  const FragmentVerdict& sp = report.Verdict(Fragment::kSemiPositive);
  ASSERT_EQ(sp.refutations.size(), 1u);
  EXPECT_NE(sp.refutations[0].reason.find("TC"), std::string::npos);

  ASSERT_TRUE(report.strongest.has_value());
  EXPECT_EQ(*report.strongest, Fragment::kSemiConnected);
  EXPECT_EQ(report.guarantee, MonotonicityKind::kDomainDisjoint);
}

TEST(FragmentTest, DisconnectedRuleInNonFinalStratumRefutesSemiConnected) {
  Schema schema;
  DatalogProgram prog = Parse(schema,
                              "P(x,w) <- E(x,y), F(w)\n"
                              "OUT(x,w) <- P(x,w), !Q(x)\n"
                              "Q(x) <- P(x,x)");
  // P and Q are below OUT's stratum; the P rule is disconnected.
  const FragmentReport report = ClassifyFragments(schema, prog);
  ASSERT_TRUE(report.stratified);
  const FragmentVerdict& sc = report.Verdict(Fragment::kSemiConnected);
  EXPECT_FALSE(sc.certified);
  ASSERT_FALSE(sc.refutations.empty());
  EXPECT_EQ(sc.refutations[0].rule_index, 0u);
  EXPECT_NE(sc.refutations[0].reason.find("disconnected"),
            std::string::npos);
}

TEST(FragmentTest, ClassifierAgreesWithDatalogProgramPredicates) {
  for (const CatalogEntry& entry : ExampleCatalog()) {
    Schema schema;
    ProgramAnalysis analysis = AnalyzeProgramText(schema, entry.text);
    const DatalogProgram& prog = analysis.program;
    const FragmentReport& report = analysis.fragments;
    EXPECT_EQ(report.Verdict(Fragment::kNegationFree).certified,
              !prog.HasNegation())
        << entry.id;
    EXPECT_EQ(report.Verdict(Fragment::kSemiPositive).certified,
              prog.IsSemiPositive())
        << entry.id;
    EXPECT_EQ(report.Verdict(Fragment::kSemiConnected).certified,
              prog.IsSemiConnected())
        << entry.id;
  }
}

TEST(FragmentTest, BodyAtomComponentsSplitsOnSharedVariables) {
  Schema schema;
  const ConjunctiveQuery rule =
      ParseQuery(schema, "H(x,w) <- E(x,y), E(y,z), F(w)");
  const std::vector<std::size_t> roots = BodyAtomComponents(rule);
  ASSERT_EQ(roots.size(), 3u);
  EXPECT_EQ(roots[0], roots[1]);  // Chained through y.
  EXPECT_NE(roots[0], roots[2]);  // F(w) is an island.
}

// --- Lint ----------------------------------------------------------------

std::size_t CountPass(const std::vector<LintDiagnostic>& diagnostics,
                      std::string_view pass) {
  std::size_t n = 0;
  for (const LintDiagnostic& d : diagnostics) {
    if (d.pass == pass) ++n;
  }
  return n;
}

TEST(LintTest, CleanProgramHasNoDiagnostics) {
  Schema schema;
  DatalogProgram prog = Parse(schema,
                              "TC(x,y) <- E(x,y)\n"
                              "TC(x,y) <- TC(x,z), E(z,y)");
  EXPECT_TRUE(LintProgram(schema, prog).empty());
}

TEST(LintTest, UnsatisfiableRuleFlagged) {
  Schema schema;
  DatalogProgram contradiction =
      Parse(schema, "H(x) <- E(x,x), !E(x,x)");
  const auto d1 = LintProgram(schema, contradiction);
  EXPECT_EQ(CountPass(d1, "unsatisfiable-rule"), 1u);

  Schema schema2;
  DatalogProgram never = Parse(schema2, "H(x) <- E(x,x), x != x");
  const auto d2 = LintProgram(schema2, never);
  EXPECT_EQ(CountPass(d2, "unsatisfiable-rule"), 1u);
}

TEST(LintTest, DuplicateAtomFlagged) {
  Schema schema;
  DatalogProgram prog = Parse(schema, "H(x,y) <- E(x,y), E(x,y)");
  const auto diagnostics = LintProgram(schema, prog);
  ASSERT_EQ(CountPass(diagnostics, "duplicate-atom"), 1u);
}

TEST(LintTest, SubsumedRuleFlagged) {
  Schema schema;
  DatalogProgram prog = Parse(schema,
                              "H(x,y) <- E(x,y)\n"
                              "H(x,y) <- E(x,y), E(y,x)");
  const auto diagnostics = LintProgram(schema, prog);
  ASSERT_EQ(CountPass(diagnostics, "subsumed-rule"), 1u);
  for (const LintDiagnostic& d : diagnostics) {
    if (d.pass == "subsumed-rule") {
      EXPECT_EQ(d.rule_index, 1);
    }
  }
}

TEST(LintTest, EquivalentRulePairFlagsExactlyOne) {
  Schema schema;
  DatalogProgram prog = Parse(schema,
                              "H(x,y) <- E(x,y)\n"
                              "H(a,b) <- E(a,b)");
  const auto diagnostics = LintProgram(schema, prog);
  EXPECT_EQ(CountPass(diagnostics, "subsumed-rule"), 1u);
}

TEST(LintTest, SubsumptionPassCanBeDisabled) {
  Schema schema;
  DatalogProgram prog = Parse(schema,
                              "H(x,y) <- E(x,y)\n"
                              "H(x,y) <- E(x,y), E(y,x)");
  LintOptions options;
  options.subsumption = false;
  EXPECT_EQ(CountPass(LintProgram(schema, prog, options), "subsumed-rule"),
            0u);
}

TEST(LintTest, UnusedRelationFlagged) {
  Schema schema;
  const RelationId unused = schema.AddRelation("Ghost", 1);
  DatalogProgram prog = Parse(schema, "H(x,y) <- E(x,y)");
  LintOptions options;
  options.declared_relations = {unused, schema.IdOf("E")};
  const auto diagnostics = LintProgram(schema, prog, options);
  ASSERT_EQ(CountPass(diagnostics, "unused-relation"), 1u);
  for (const LintDiagnostic& d : diagnostics) {
    if (d.pass == "unused-relation") {
      EXPECT_NE(d.message.find("Ghost"), std::string::npos);
    }
  }
}

TEST(LintTest, SafetyPassNamesTheVariable) {
  Schema schema;
  DatalogProgram prog;
  Schema scratch;
  CqParseResult parsed = TryParseQuery(scratch, "H(x,z) <- E(x,y)");
  ASSERT_TRUE(parsed.ok());
  prog.AddRule(std::move(*parsed.query));
  const auto diagnostics = LintProgram(scratch, prog);
  ASSERT_EQ(CountPass(diagnostics, "safety"), 1u);
  EXPECT_EQ(diagnostics[0].severity, LintSeverity::kError);
  EXPECT_NE(diagnostics[0].message.find("'z'"), std::string::npos)
      << diagnostics[0].message;
}

// --- Analyzer front end --------------------------------------------------

TEST(AnalyzerTest, PragmasDeclareEdbAndOutputs) {
  Schema schema;
  const ProgramAnalysis analysis = AnalyzeProgramText(
      schema,
      "# @edb E/2\n"
      "# @edb Ghost/1\n"
      "# @output B\n"
      "A(x) <- E(x,y)\n"
      "B(x) <- A(x)\n"
      "C(x) <- E(x,x)\n");
  std::size_t unused = 0;
  std::size_t dead = 0;
  for (const LintDiagnostic& d : analysis.diagnostics) {
    if (d.pass == "unused-relation") ++unused;
    if (d.pass == "dead-rule") ++dead;
  }
  EXPECT_EQ(unused, 1u);  // Ghost.
  EXPECT_EQ(dead, 1u);    // C cannot reach B.
}

TEST(AnalyzerTest, MalformedPragmaIsAnError) {
  Schema schema;
  const ProgramAnalysis analysis =
      AnalyzeProgramText(schema, "# @edb Broken\nH(x) <- E(x,x)\n");
  EXPECT_FALSE(analysis.parse_ok);
  bool found = false;
  for (const LintDiagnostic& d : analysis.diagnostics) {
    found = found || (d.pass == "pragma" &&
                      d.severity == LintSeverity::kError);
  }
  EXPECT_TRUE(found);
}

TEST(AnalyzerTest, JsonDocumentHasStableShape) {
  Schema schema;
  ProgramAnalysis analysis =
      AnalyzeProgramText(schema, "TC(x,y) <- E(x,y)\n");
  analysis.name = "probe";
  const obs::JsonValue doc = AnalysisToJson(schema, analysis);
  ASSERT_TRUE(doc.IsObject());
  ASSERT_NE(doc.Find("schema"), nullptr);
  EXPECT_EQ(doc.Find("schema")->AsString(), "lamp.sa.v1");
  EXPECT_EQ(doc.Find("program")->AsString(), "probe");
  EXPECT_EQ(doc.Find("num_rules")->AsInt(), 1);
  EXPECT_EQ(doc.Find("strongest_fragment")->AsString(), "negation_free");
  EXPECT_EQ(doc.Find("monotonicity_class")->AsString(), "M");
  EXPECT_TRUE(doc.Find("stratification")->Find("stratified")->AsBool());
  EXPECT_EQ(doc.Find("errors")->AsInt(), 0);
  // Round-trips through the strict parser.
  EXPECT_TRUE(obs::JsonValue::Parse(doc.Dump(2)).has_value());
}

TEST(AnalyzerTest, RuleRenderingRoundTrips) {
  Schema schema;
  ProgramAnalysis analysis = AnalyzeProgramText(
      schema, "H(x,y) <- E(x,y), !F(x,y), x != y\n");
  const obs::JsonValue doc = AnalysisToJson(schema, analysis);
  ASSERT_EQ(doc.Find("rules")->size(), 1u);
  const std::string rendered = doc.Find("rules")->at(0).AsString();
  // The rendered rule must parse back to an equivalent rule.
  Schema schema2;
  CqParseResult reparsed = TryParseQuery(schema2, rendered);
  EXPECT_TRUE(reparsed.ok()) << rendered;
}

}  // namespace
}  // namespace lamp::sa
