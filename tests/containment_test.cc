#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "cq/containment.h"
#include "cq/parser.h"
#include "par/thread_pool.h"

namespace lamp {
namespace {

// Figure 1(b) of the paper: containment relationships between
//   Q1: H() <- S(x), R(x,x), T(x)
//   Q2: H() <- R(x,x), T(x)
//   Q3: H() <- S(x), R(x,y), T(y)
//   Q4: H() <- R(x,y), T(y)
class Figure1Queries : public ::testing::Test {
 protected:
  Figure1Queries() {
    q1_ = ParseQuery(schema_, "H() <- S(x), R(x,x), T(x)");
    q2_ = ParseQuery(schema_, "H() <- R(x,x), T(x)");
    q3_ = ParseQuery(schema_, "H() <- S(x), R(x,y), T(y)");
    q4_ = ParseQuery(schema_, "H() <- R(x,y), T(y)");
  }

  Schema schema_;
  ConjunctiveQuery q1_, q2_, q3_, q4_;
};

TEST_F(Figure1Queries, ContainmentMatchesFigure1b) {
  // Q1 is the most specific: contained in all others.
  EXPECT_TRUE(IsContainedIn(q1_, q2_));
  EXPECT_TRUE(IsContainedIn(q1_, q3_));
  EXPECT_TRUE(IsContainedIn(q1_, q4_));
  // Q2 subseteq Q4, Q3 subseteq Q4.
  EXPECT_TRUE(IsContainedIn(q2_, q4_));
  EXPECT_TRUE(IsContainedIn(q3_, q4_));
  // And the non-containments.
  EXPECT_FALSE(IsContainedIn(q2_, q1_));
  EXPECT_FALSE(IsContainedIn(q2_, q3_));
  EXPECT_FALSE(IsContainedIn(q3_, q2_));
  EXPECT_FALSE(IsContainedIn(q3_, q1_));
  EXPECT_FALSE(IsContainedIn(q4_, q1_));
  EXPECT_FALSE(IsContainedIn(q4_, q2_));
  EXPECT_FALSE(IsContainedIn(q4_, q3_));
  EXPECT_FALSE(IsContainedIn(q1_, q1_) == false);  // Reflexivity.
}

TEST_F(Figure1Queries, ContainmentMatrixAgreesWithPairwiseDecider) {
  // The parallel sweep is just the n*n pairwise cells, fanned across the
  // pool — identical to calling IsContainedIn per cell, at every thread
  // count.
  const std::vector<ConjunctiveQuery> family = {q1_, q2_, q3_, q4_};
  for (std::size_t threads : {1, 4}) {
    par::SetDefaultThreads(threads);
    const std::vector<std::uint8_t> matrix = ContainmentMatrix(family);
    ASSERT_EQ(matrix.size(), family.size() * family.size());
    for (std::size_t i = 0; i < family.size(); ++i) {
      for (std::size_t j = 0; j < family.size(); ++j) {
        EXPECT_EQ(matrix[i * family.size() + j] != 0,
                  IsContainedIn(family[i], family[j]))
            << "i=" << i << " j=" << j << " threads=" << threads;
      }
    }
  }
  par::SetDefaultThreads(1);
}

TEST(Containment, PathInLongerPath) {
  Schema schema;
  const ConjunctiveQuery p2 = ParseQuery(schema, "H(x,z) <- E(x,y), E(y,z)");
  const ConjunctiveQuery p1 = ParseQuery(schema, "H(x,y) <- E(x,y)");
  // A 2-path does not imply an edge between its endpoints and vice versa.
  EXPECT_FALSE(IsContainedIn(p2, p1));
  EXPECT_FALSE(IsContainedIn(p1, p2));
}

TEST(Containment, SelfLoopContainedInTriangle) {
  Schema schema;
  const ConjunctiveQuery loop = ParseQuery(schema, "H() <- E(x,x)");
  const ConjunctiveQuery triangle =
      ParseQuery(schema, "H() <- E(x,y), E(y,z), E(z,x)");
  // A self-loop is a (degenerate) triangle: Q_loop subseteq Q_triangle.
  EXPECT_TRUE(IsContainedIn(loop, triangle));
  EXPECT_FALSE(IsContainedIn(triangle, loop));
}

TEST(Containment, ConstantsMatter) {
  Schema schema;
  const ConjunctiveQuery qc = ParseQuery(schema, "H(x) <- R(x, 7)");
  const ConjunctiveQuery qv = ParseQuery(schema, "H(x) <- R(x, y)");
  EXPECT_TRUE(IsContainedIn(qc, qv));
  EXPECT_FALSE(IsContainedIn(qv, qc));
}

TEST(Containment, InequalityOnLeftShrinksQuery) {
  Schema schema;
  const ConjunctiveQuery q_neq =
      ParseQuery(schema, "H(x,y) <- E(x,y), x != y");
  const ConjunctiveQuery q = ParseQuery(schema, "H(x,y) <- E(x,y)");
  EXPECT_TRUE(IsContainedIn(q_neq, q));
  EXPECT_FALSE(IsContainedIn(q, q_neq));
}

TEST(Containment, InequalityOnRightNeedsAllPartitions) {
  Schema schema;
  // Q: H(x,y) <- E(x,y), E(y,x). Q': same + x != y.
  // The valuation x=y (a self-loop) derives H(a,a) in Q but Q' cannot:
  // containment must fail, and detecting it requires the non-injective
  // canonical database.
  const ConjunctiveQuery q = ParseQuery(schema, "H(x,y) <- E(x,y), E(y,x)");
  const ConjunctiveQuery qp =
      ParseQuery(schema, "H(x,y) <- E(x,y), E(y,x), x != y");
  EXPECT_FALSE(IsContainedIn(q, qp));
  EXPECT_TRUE(IsContainedIn(qp, q));
}

TEST(Containment, EquivalentUpToVariableRenaming) {
  Schema schema;
  const ConjunctiveQuery a = ParseQuery(schema, "H(u,w) <- E(u,v), E(v,w)");
  const ConjunctiveQuery b = ParseQuery(schema, "H(x,z) <- E(x,y), E(y,z)");
  EXPECT_TRUE(IsContainedIn(a, b));
  EXPECT_TRUE(IsContainedIn(b, a));
}

TEST(Containment, RedundantAtomEquivalence) {
  Schema schema;
  const ConjunctiveQuery redundant =
      ParseQuery(schema, "H(x) <- R(x,y), R(x,z)");
  const ConjunctiveQuery core = ParseQuery(schema, "H(x) <- R(x,y)");
  EXPECT_TRUE(IsContainedIn(redundant, core));
  EXPECT_TRUE(IsContainedIn(core, redundant));
}

TEST(CanonicalDatabases, InjectiveDatabaseAppears) {
  Schema schema;
  const ConjunctiveQuery q = ParseQuery(schema, "H(x) <- R(x,y)");
  int count = 0;
  bool saw_two_distinct = false;
  ForEachCanonicalDatabase(q, [&](const Instance& inst, const Fact& head) {
    ++count;
    EXPECT_EQ(inst.Size(), 1u);
    EXPECT_EQ(head.args.size(), 1u);
    const Fact f = inst.AllFacts()[0];
    if (f.args[0] != f.args[1]) saw_two_distinct = true;
    return true;
  });
  EXPECT_EQ(count, 2);  // {x=y} and {x,y distinct}.
  EXPECT_TRUE(saw_two_distinct);
}

TEST(CanonicalDatabases, InequalityFiltersPartitions) {
  Schema schema;
  const ConjunctiveQuery q = ParseQuery(schema, "H(x) <- R(x,y), x != y");
  int count = 0;
  ForEachCanonicalDatabase(q, [&count](const Instance&, const Fact&) {
    ++count;
    return true;
  });
  EXPECT_EQ(count, 1);  // Only the injective partition is consistent.
}

TEST(CounterexampleSearch, FindsWitnessForNonContainment) {
  Schema schema;
  const ConjunctiveQuery q = ParseQuery(schema, "H(x,y) <- E(x,y)");
  const ConjunctiveQuery qp =
      ParseQuery(schema, "H(x,y) <- E(x,y), x != y");
  const auto witness = FindContainmentCounterexample(schema, q, qp, 2, 2);
  ASSERT_TRUE(witness.has_value());
  // The witness must actually violate containment.
  EXPECT_FALSE(witness->Empty());
}

TEST(CounterexampleSearch, NoWitnessForValidContainment) {
  Schema schema;
  const ConjunctiveQuery q1 = ParseQuery(schema, "H(x) <- R(x,x)");
  const ConjunctiveQuery q2 = ParseQuery(schema, "H(x) <- R(x,y)");
  EXPECT_FALSE(
      FindContainmentCounterexample(schema, q1, q2, 2, 3).has_value());
}

TEST(CounterexampleSearch, NegationCounterexample) {
  Schema schema;
  // Q: wedge; Q': wedge with negated closing edge. Not contained: a closed
  // triangle derives in Q but not in Q'.
  const ConjunctiveQuery q =
      ParseQuery(schema, "H(x,z) <- E(x,y), E(y,z)");
  const ConjunctiveQuery qp =
      ParseQuery(schema, "H(x,z) <- E(x,y), E(y,z), !E(z,x)");
  const auto witness = FindContainmentCounterexample(schema, q, qp, 2, 3);
  EXPECT_TRUE(witness.has_value());
}

TEST(CounterexampleSearch, RandomizedFalsifierAgrees) {
  Schema schema;
  const ConjunctiveQuery q = ParseQuery(schema, "H(x,z) <- E(x,y), E(y,z)");
  const ConjunctiveQuery qp =
      ParseQuery(schema, "H(x,z) <- E(x,y), E(y,z), !E(z,x)");
  Rng rng(5);
  const auto witness =
      RandomContainmentCounterexample(schema, q, qp, 3, 4, 200, rng);
  EXPECT_TRUE(witness.has_value());
}

}  // namespace
}  // namespace lamp
