#include <gtest/gtest.h>

#include "cq/eval.h"
#include "cq/parser.h"
#include "datalog/components.h"
#include "datalog/eval.h"
#include "datalog/program.h"
#include "datalog/wellfounded.h"

namespace lamp {
namespace {

class ComponentsTest : public ::testing::Test {
 protected:
  ComponentsTest() { e_ = schema_.AddRelation("E", 2); }

  Schema schema_;
  RelationId e_ = 0;
};

TEST_F(ComponentsTest, ConnectedCqDistributes) {
  // A connected query (triangle) only ever matches inside one component.
  const ConjunctiveQuery triangle =
      ParseQuery(schema_, "H(x,y,z) <- E(x,y), E(y,z), E(z,x)");
  QueryFunction q = [&triangle](const Instance& i) {
    return Evaluate(triangle, i);
  };
  EXPECT_FALSE(
      FindComponentDistributionViolation(schema_, {e_}, q, 4, 3).has_value());
}

TEST_F(ComponentsTest, DisconnectedCqDoesNotDistribute) {
  // A cartesian pair can straddle two components.
  const ConjunctiveQuery pair =
      ParseQuery(schema_, "H(x,u) <- E(x,y), E(u,v)");
  QueryFunction q = [&pair](const Instance& i) { return Evaluate(pair, i); };
  const auto witness =
      FindComponentDistributionViolation(schema_, {e_}, q, 4, 2);
  ASSERT_TRUE(witness.has_value());
  EXPECT_FALSE(DistributesOverComponentsOn(q, *witness));
}

TEST_F(ComponentsTest, TransitiveClosureDistributes) {
  // Connected Datalog (the Ameloot et al. [17] effective syntax):
  // reachability never crosses components.
  Schema schema;
  DatalogProgram prog = ParseProgram(schema,
                                     "TC(x,y) <- E(x,y)\n"
                                     "TC(x,y) <- TC(x,z), TC(z,y)");
  const RelationId tc = schema.IdOf("TC");
  QueryFunction q = [&schema, &prog, tc](const Instance& edb) {
    const Instance everything = EvaluateProgram(schema, prog, edb);
    Instance out;
    for (const Fact& f : everything.FactsOf(tc)) out.Insert(f);
    return out;
  };
  EXPECT_FALSE(FindComponentDistributionViolation(schema, {schema.IdOf("E")},
                                                  q, 4, 3)
                   .has_value());
}

TEST_F(ComponentsTest, ComplementTcDoesNotDistribute) {
  // not-TC relates values *across* components (a cannot reach b in a
  // different component), so the per-component union misses those pairs.
  Schema schema;
  DatalogProgram prog = ParseProgram(schema,
                                     "TC(x,y) <- E(x,y)\n"
                                     "TC(x,y) <- TC(x,z), TC(z,y)\n"
                                     "OUT(x,y) <- ADom(x), ADom(y), !TC(x,y)");
  const RelationId out_rel = schema.IdOf("OUT");
  QueryFunction q = [&schema, &prog, out_rel](const Instance& edb) {
    const Instance everything = EvaluateProgram(schema, prog, edb);
    Instance out;
    for (const Fact& f : everything.FactsOf(out_rel)) out.Insert(f);
    return out;
  };
  Instance two_components;
  two_components.Insert(Fact(schema.IdOf("E"), {0, 1}));
  two_components.Insert(Fact(schema.IdOf("E"), {5, 6}));
  EXPECT_FALSE(DistributesOverComponentsOn(q, two_components));
}

TEST_F(ComponentsTest, WinMoveDistributesOverComponents) {
  // Zinn-Green-Ludaescher via Ameloot et al.: win-move under the
  // well-founded semantics is domain-disjoint-monotone; in particular the
  // true facts distribute over game components.
  Schema schema;
  DatalogProgram prog = ParseProgram(schema, "WIN(x) <- MOVE(x,y), !WIN(y)");
  QueryFunction q = [&schema, &prog](const Instance& edb) {
    return EvaluateWellFounded(schema, prog, edb).true_facts;
  };
  // Two independent games: a chain (decided) and a cycle (drawn).
  Instance games;
  const RelationId move = schema.IdOf("MOVE");
  games.Insert(Fact(move, {1, 0}));
  games.Insert(Fact(move, {2, 1}));
  games.Insert(Fact(move, {10, 11}));
  games.Insert(Fact(move, {11, 10}));
  EXPECT_TRUE(DistributesOverComponentsOn(q, games));
  // And exhaustively over small games.
  EXPECT_FALSE(FindComponentDistributionViolation(schema,
                                                  {move}, q, 3, 3)
                   .has_value());
}

TEST_F(ComponentsTest, RandomFalsifierFindsCartesianViolation) {
  const ConjunctiveQuery pair =
      ParseQuery(schema_, "H(x,u) <- E(x,y), E(u,v)");
  QueryFunction q = [&pair](const Instance& i) { return Evaluate(pair, i); };
  Rng rng(5);
  EXPECT_TRUE(RandomComponentDistributionViolation(schema_, {e_}, q, 8, 4,
                                                   50, rng)
                  .has_value());
}

}  // namespace
}  // namespace lamp
