#include <gtest/gtest.h>

#include "cq/cq.h"
#include "cq/parser.h"
#include "cq/valuation.h"
#include "relational/schema.h"

namespace lamp {
namespace {

TEST(Parser, ParsesTriangleQuery) {
  Schema schema;
  const ConjunctiveQuery q =
      ParseQuery(schema, "H(x,y,z) <- R(x,y), S(y,z), T(z,x)");
  EXPECT_EQ(q.body().size(), 3u);
  EXPECT_EQ(q.NumVars(), 3u);
  EXPECT_EQ(schema.ArityOf(schema.IdOf("H")), 3u);
  EXPECT_TRUE(q.IsPlain());
  EXPECT_TRUE(q.IsFull());
  EXPECT_FALSE(q.HasSelfJoin());
  EXPECT_EQ(q.ToString(schema), "H(x,y,z) <- R(x,y), S(y,z), T(z,x)");
}

TEST(Parser, ParsesSelfJoinAndProjection) {
  Schema schema;
  const ConjunctiveQuery q =
      ParseQuery(schema, "H(x1,x3) :- R(x1,x2), R(x2,x3), S(x3,x1)");
  EXPECT_TRUE(q.HasSelfJoin());
  EXPECT_FALSE(q.IsFull());  // x2 is projected away.
  EXPECT_EQ(q.NumVars(), 3u);
}

TEST(Parser, ParsesInequalities) {
  Schema schema;
  const ConjunctiveQuery q = ParseQuery(
      schema, "H(x,y,z) <- E(x,y), E(y,z), E(z,x), x != y, y != z, z != x");
  EXPECT_EQ(q.inequalities().size(), 3u);
  EXPECT_FALSE(q.IsPlain());
}

TEST(Parser, ParsesNegatedAtoms) {
  Schema schema;
  const ConjunctiveQuery q =
      ParseQuery(schema, "H(x,y,z) <- E(x,y), E(y,z), !E(z,x)");
  EXPECT_EQ(q.negated().size(), 1u);
  EXPECT_EQ(q.body().size(), 2u);
}

TEST(Parser, ParsesConstants) {
  Schema schema;
  const ConjunctiveQuery q = ParseQuery(schema, "H(x) <- R(x, 7)");
  ASSERT_EQ(q.body().size(), 1u);
  EXPECT_TRUE(q.body()[0].terms[1].IsConst());
  EXPECT_EQ(q.body()[0].terms[1].constant, Value(7));
  EXPECT_EQ(q.Constants().size(), 1u);
}

TEST(Parser, ParsesBooleanQuery) {
  Schema schema;
  const ConjunctiveQuery q = ParseQuery(schema, "H() <- R(x,x), T(x)");
  EXPECT_TRUE(q.IsBoolean());
  EXPECT_FALSE(q.IsFull());
}

TEST(Parser, SharedSchemaAcrossQueries) {
  Schema schema;
  ParseQuery(schema, "H(x,y) <- R(x,y)");
  const ConjunctiveQuery q2 = ParseQuery(schema, "G(x) <- R(x,x)");
  EXPECT_EQ(schema.NumRelations(), 3u);  // H, R, G.
  EXPECT_EQ(q2.body()[0].relation, schema.IdOf("R"));
}

TEST(Cq, VarSets) {
  Schema schema;
  const ConjunctiveQuery q = ParseQuery(schema, "H(x) <- R(x,y), S(y,z)");
  EXPECT_EQ(q.BodyVars().size(), 3u);
  EXPECT_EQ(q.HeadVars().size(), 1u);
}

TEST(Valuation, ApplyAndRequiredFacts) {
  Schema schema;
  ConjunctiveQuery q = ParseQuery(schema, "H(x,z) <- R(x,y), R(y,z)");
  Valuation v(q.NumVars());
  v.Bind(q.VarIdOf("x"), Value(1));
  v.Bind(q.VarIdOf("y"), Value(2));
  v.Bind(q.VarIdOf("z"), Value(1));
  EXPECT_TRUE(v.IsTotal());
  const Instance required = v.RequiredFacts(q);
  EXPECT_EQ(required.Size(), 2u);
  EXPECT_TRUE(required.Contains(Fact(schema.IdOf("R"), {1, 2})));
  EXPECT_TRUE(required.Contains(Fact(schema.IdOf("R"), {2, 1})));
  EXPECT_EQ(v.ApplyToAtom(q.head()), Fact(schema.IdOf("H"), {1, 1}));
}

TEST(Valuation, SatisfiesChecksBodyInequalityAndNegation) {
  Schema schema;
  ConjunctiveQuery q =
      ParseQuery(schema, "H(x,y) <- E(x,y), !E(y,x), x != y");
  const RelationId e = schema.IdOf("E");
  Instance inst;
  inst.Insert(Fact(e, {1, 2}));
  inst.Insert(Fact(e, {3, 3}));
  inst.Insert(Fact(e, {4, 5}));
  inst.Insert(Fact(e, {5, 4}));

  Valuation good(q.NumVars());
  good.Bind(q.VarIdOf("x"), Value(1));
  good.Bind(q.VarIdOf("y"), Value(2));
  EXPECT_TRUE(good.Satisfies(q, inst));

  Valuation self_loop(q.NumVars());
  self_loop.Bind(q.VarIdOf("x"), Value(3));
  self_loop.Bind(q.VarIdOf("y"), Value(3));
  EXPECT_FALSE(self_loop.Satisfies(q, inst));  // Violates x != y.

  Valuation symmetric(q.NumVars());
  symmetric.Bind(q.VarIdOf("x"), Value(4));
  symmetric.Bind(q.VarIdOf("y"), Value(5));
  EXPECT_FALSE(symmetric.Satisfies(q, inst));  // Negated atom present.

  Valuation missing(q.NumVars());
  missing.Bind(q.VarIdOf("x"), Value(2));
  missing.Bind(q.VarIdOf("y"), Value(1));
  EXPECT_FALSE(missing.Satisfies(q, inst));  // E(2,1) absent.
}

}  // namespace
}  // namespace lamp
