#include <gtest/gtest.h>

#include "common/rng.h"
#include "cq/eval.h"
#include "cq/parser.h"
#include "mapreduce/mapreduce.h"
#include "datalog/eval.h"
#include "datalog/program.h"
#include "mapreduce/recursive.h"
#include "mapreduce/relational_jobs.h"
#include "relational/generators.h"

namespace lamp {
namespace {

class MapReduceTest : public ::testing::Test {
 protected:
  MapReduceTest() {
    join_ = ParseQuery(schema_, "H(x,y,z) <- R(x,y), S(y,z)");
    triangle_ = ParseQuery(schema_, "H(x,y,z) <- R(x,y), S(y,z), T(z,x)");
  }

  Instance JoinInput(std::uint64_t seed, std::size_t m = 300) {
    Rng rng(seed);
    Instance db;
    AddUniformRelation(schema_, schema_.IdOf("R"), m, 60, rng, db);
    AddUniformRelation(schema_, schema_.IdOf("S"), m, 60, rng, db);
    return db;
  }

  Instance TriangleInput(std::uint64_t seed, std::size_t m = 200) {
    Rng rng(seed);
    Instance db;
    AddRandomGraph(schema_, schema_.IdOf("R"), m, 40, rng, db);
    AddRandomGraph(schema_, schema_.IdOf("S"), m, 40, rng, db);
    AddRandomGraph(schema_, schema_.IdOf("T"), m, 40, rng, db);
    return db;
  }

  Schema schema_;
  ConjunctiveQuery join_;
  ConjunctiveQuery triangle_;
};

TEST_F(MapReduceTest, IdentityJobCopiesInput) {
  MapReduceJob identity;
  identity.map = [](const Fact& f) {
    return std::vector<KeyValue>{{7, f}};
  };
  identity.reduce = [](std::uint64_t, const std::vector<Fact>& group) {
    std::vector<KeyValue> out;
    for (const Fact& f : group) out.push_back({0, f});
    return out;
  };
  const Instance input = JoinInput(1);
  MapReduceStats stats;
  const Instance output = RunJob(identity, input, &stats);
  EXPECT_EQ(output, input);
  EXPECT_EQ(stats.NumGroups(), 1u);  // Everything under key 7.
  EXPECT_EQ(stats.MaxGroupSize(), input.Size());
  EXPECT_EQ(stats.pairs_shuffled, input.Size());
}

TEST_F(MapReduceTest, RepartitionJoinJobComputesTheJoin) {
  const Instance input = JoinInput(2);
  const MapReduceJob job = RepartitionJoinJob(join_, 8, 5);
  MapReduceStats stats;
  const Instance output = RunJob(job, input, &stats);
  EXPECT_EQ(output, Evaluate(join_, input));
  EXPECT_LE(stats.NumGroups(), 8u);
  EXPECT_EQ(stats.pairs_shuffled, input.Size());  // No replication.
}

TEST_F(MapReduceTest, SharesJobComputesTheTriangle) {
  const Instance input = TriangleInput(3);
  const MapReduceJob job = SharesJob(triangle_, {2, 2, 2}, 5);
  MapReduceStats stats;
  const Instance output = RunJob(job, input, &stats);
  EXPECT_EQ(output, Evaluate(triangle_, input));
  EXPECT_LE(stats.NumGroups(), 8u);
  // Each fact is replicated exactly `share of the missing dimension`
  // times: 2 per fact for the 2x2x2 grid.
  EXPECT_EQ(stats.pairs_shuffled, 2 * input.Size());
}

TEST_F(MapReduceTest, ReducerSizeReplicationTradeoff) {
  // Das Sarma et al. [27]: larger shares -> more replication (pairs
  // shuffled) but smaller reducers.
  const Instance input = TriangleInput(4, 400);
  MapReduceStats small_grid;
  MapReduceStats large_grid;
  RunJob(SharesJob(triangle_, {2, 2, 2}, 5), input, &small_grid);
  RunJob(SharesJob(triangle_, {4, 4, 4}, 5), input, &large_grid);
  EXPECT_GT(large_grid.pairs_shuffled, small_grid.pairs_shuffled);
  EXPECT_LT(large_grid.MaxGroupSize(), small_grid.MaxGroupSize());
}

TEST_F(MapReduceTest, ProgramChainsJobs) {
  // Job 1: join R and S into K(x,y,z) encoded as H facts; job 2: filter
  // the groups by a parity condition on x. Checks output piping.
  const Instance input = JoinInput(6);
  MapReduceProgram program;
  program.jobs.push_back(RepartitionJoinJob(join_, 4, 1));
  MapReduceJob filter;
  filter.map = [this](const Fact& f) {
    std::vector<KeyValue> out;
    if (f.relation == schema_.IdOf("H") && f.args[0].v % 2 == 0) {
      out.push_back({static_cast<std::uint64_t>(f.args[0].v), f});
    }
    return out;
  };
  filter.reduce = [](std::uint64_t, const std::vector<Fact>& group) {
    std::vector<KeyValue> out;
    for (const Fact& f : group) out.push_back({0, f});
    return out;
  };
  program.jobs.push_back(filter);

  std::vector<MapReduceStats> stats;
  const Instance output = RunProgram(program, input, &stats);
  ASSERT_EQ(stats.size(), 2u);
  for (const Fact& f : output.AllFacts()) {
    EXPECT_EQ(f.args[0].v % 2, 0);
  }
  const Instance full_join = Evaluate(join_, input);
  for (const Fact& f : full_join.AllFacts()) {
    EXPECT_EQ(output.Contains(f), f.args[0].v % 2 == 0);
  }
}

TEST_F(MapReduceTest, MpcTranslationComputesSameResult) {
  // The paper's observation: a MapReduce job *is* a one-round MPC
  // algorithm. Same output; the MPC max load upper-bounds the biggest
  // reducer group (a server may host several groups).
  const Instance input = TriangleInput(7);
  const MapReduceJob job = SharesJob(triangle_, {2, 2, 2}, 9);
  MapReduceStats mr_stats;
  const Instance mr_output = RunJob(job, input, &mr_stats);
  const MpcRunResult mpc = RunJobOnMpc(job, input, 8);
  EXPECT_EQ(mpc.output, mr_output);
  EXPECT_GE(mpc.stats.MaxLoad() + input.Size() / 8 + 1,
            mr_stats.MaxGroupSize());
  EXPECT_EQ(mpc.stats.NumRounds(), 1u);
}

TEST_F(MapReduceTest, MpcTranslationOfRepartitionJoin) {
  const Instance input = JoinInput(8);
  const MapReduceJob job = RepartitionJoinJob(join_, 16, 2);
  const Instance mr_output = RunJob(job, input);
  const MpcRunResult mpc = RunJobOnMpc(job, input, 4);
  EXPECT_EQ(mpc.output, mr_output);
  EXPECT_EQ(mpc.output, Evaluate(join_, input));
}


TEST_F(MapReduceTest, LinearTcOnPath) {
  Schema schema;
  const RelationId e = schema.AddRelation("E", 2);
  const RelationId tc = schema.AddRelation("TC", 2);
  Instance edges;
  AddPathGraph(schema, e, 9, edges);  // Diameter 8.
  const RecursiveTcResult result =
      TransitiveClosureLinear(schema, e, tc, edges);
  EXPECT_EQ(result.closure.Size(), 36u);  // 8+7+...+1.
  EXPECT_TRUE(result.closure.Contains(Fact(tc, {0, 8})));
  // Linear iteration needs ~diameter jobs.
  EXPECT_GE(result.jobs, 7u);
  EXPECT_LE(result.jobs, 9u);
}

TEST_F(MapReduceTest, DoublingTcOnPathUsesLogJobs) {
  Schema schema;
  const RelationId e = schema.AddRelation("E", 2);
  const RelationId tc = schema.AddRelation("TC", 2);
  Instance edges;
  AddPathGraph(schema, e, 33, edges);  // Diameter 32.
  const RecursiveTcResult linear =
      TransitiveClosureLinear(schema, e, tc, edges);
  const RecursiveTcResult doubling =
      TransitiveClosureDoubling(schema, e, tc, edges);
  EXPECT_EQ(linear.closure, doubling.closure);
  EXPECT_EQ(linear.closure.Size(), 32u * 33u / 2u);
  // log2(32) = 5 doubling steps (+1 fixpoint check) vs ~32 linear jobs.
  EXPECT_LE(doubling.jobs, 7u);
  EXPECT_GE(linear.jobs, 31u);
  // The doubling rounds shuffle more data per job.
  EXPECT_GT(doubling.pairs_shuffled / doubling.jobs,
            linear.pairs_shuffled / linear.jobs);
}

TEST_F(MapReduceTest, TcOnCycleReachesEverything) {
  Schema schema;
  const RelationId e = schema.AddRelation("E", 2);
  const RelationId tc = schema.AddRelation("TC", 2);
  Instance edges;
  AddCycleGraph(schema, e, 6, edges);
  const RecursiveTcResult result =
      TransitiveClosureDoubling(schema, e, tc, edges);
  EXPECT_EQ(result.closure.Size(), 36u);  // Complete reachability.
}

TEST_F(MapReduceTest, TcAgreesWithDatalogEngine) {
  Schema schema;
  const RelationId e = schema.AddRelation("E", 2);
  const RelationId tc_rel = schema.AddRelation("TC", 2);
  Rng rng(9);
  Instance edges;
  AddRandomGraph(schema, e, 40, 15, rng, edges);

  const RecursiveTcResult mr =
      TransitiveClosureLinear(schema, e, tc_rel, edges);

  DatalogProgram prog = ParseProgram(
      schema, "TC(x,y) <- E(x,y)\nTC(x,y) <- TC(x,z), E(z,y)");
  const Instance everything = EvaluateProgram(schema, prog, edges);
  Instance datalog_tc;
  for (const Fact& f : everything.FactsOf(tc_rel)) datalog_tc.Insert(f);
  EXPECT_EQ(mr.closure, datalog_tc);
}

}  // namespace
}  // namespace lamp
