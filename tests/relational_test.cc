#include <map>
#include <sstream>
#include <set>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "relational/fact.h"
#include "relational/generators.h"
#include "relational/instance.h"
#include "relational/io.h"
#include "relational/schema.h"

namespace lamp {
namespace {

class RelationalTest : public ::testing::Test {
 protected:
  RelationalTest() {
    r_ = schema_.AddRelation("R", 2);
    s_ = schema_.AddRelation("S", 2);
    u_ = schema_.AddRelation("U", 1);
  }

  Schema schema_;
  RelationId r_ = 0;
  RelationId s_ = 0;
  RelationId u_ = 0;
};

TEST_F(RelationalTest, SchemaRoundTrip) {
  EXPECT_EQ(schema_.IdOf("R"), r_);
  EXPECT_EQ(schema_.ArityOf(r_), 2u);
  EXPECT_EQ(schema_.NameOf(u_), "U");
  EXPECT_EQ(schema_.NumRelations(), 3u);
  EXPECT_EQ(schema_.TryIdOf("nope"), Interner::kNotFound);
  // Re-registering with the same arity returns the same id.
  EXPECT_EQ(schema_.AddRelation("R", 2), r_);
}

TEST_F(RelationalTest, FactEqualityAndOrdering) {
  const Fact a(r_, {1, 2});
  const Fact b(r_, {1, 2});
  const Fact c(r_, {1, 3});
  const Fact d(s_, {1, 2});
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
  EXPECT_LT(a, c);
  EXPECT_LT(a, d);
  EXPECT_EQ(FactToString(schema_, a), "R(1,2)");
}

TEST_F(RelationalTest, InstanceSetSemantics) {
  Instance inst;
  EXPECT_TRUE(inst.Insert(Fact(r_, {1, 2})));
  EXPECT_FALSE(inst.Insert(Fact(r_, {1, 2})));
  EXPECT_TRUE(inst.Insert(Fact(s_, {1, 2})));
  EXPECT_EQ(inst.Size(), 2u);
  EXPECT_TRUE(inst.Contains(Fact(r_, {1, 2})));
  EXPECT_FALSE(inst.Contains(Fact(r_, {2, 1})));
  EXPECT_EQ(inst.FactsOf(r_).size(), 1u);
  EXPECT_EQ(inst.FactsOf(u_).size(), 0u);
}

TEST_F(RelationalTest, InstanceEqualityIgnoresInsertionOrder) {
  Instance a;
  a.Insert(Fact(r_, {1, 2}));
  a.Insert(Fact(r_, {3, 4}));
  Instance b;
  b.Insert(Fact(r_, {3, 4}));
  b.Insert(Fact(r_, {1, 2}));
  EXPECT_EQ(a, b);
  b.Insert(Fact(u_, {9}));
  EXPECT_FALSE(a == b);
}

TEST_F(RelationalTest, ActiveDomain) {
  Instance inst;
  inst.Insert(Fact(r_, {1, 2}));
  inst.Insert(Fact(u_, {7}));
  const std::vector<Value> dom = inst.ActiveDomain();
  EXPECT_EQ(dom.size(), 3u);
  EXPECT_TRUE(std::is_sorted(dom.begin(), dom.end()));
  EXPECT_TRUE(std::binary_search(dom.begin(), dom.end(), Value(1)));
  EXPECT_TRUE(std::binary_search(dom.begin(), dom.end(), Value(7)));
}

TEST_F(RelationalTest, RestrictToKeepsOnlyFullyCoveredFacts) {
  Instance inst;
  inst.Insert(Fact(r_, {1, 2}));
  inst.Insert(Fact(r_, {1, 3}));
  inst.Insert(Fact(u_, {2}));
  const Instance restricted = inst.RestrictTo({Value(1), Value(2)});
  EXPECT_EQ(restricted.Size(), 2u);
  EXPECT_TRUE(restricted.Contains(Fact(r_, {1, 2})));
  EXPECT_TRUE(restricted.Contains(Fact(u_, {2})));
}

TEST_F(RelationalTest, TouchingKeepsIntersectingFacts) {
  Instance inst;
  inst.Insert(Fact(r_, {1, 2}));
  inst.Insert(Fact(r_, {3, 4}));
  const Instance touching = inst.Touching({Value(2)});
  EXPECT_EQ(touching.Size(), 1u);
  EXPECT_TRUE(touching.Contains(Fact(r_, {1, 2})));
}

TEST_F(RelationalTest, ComponentsSplitByValueConnectivity) {
  Instance inst;
  inst.Insert(Fact(r_, {1, 2}));
  inst.Insert(Fact(r_, {2, 3}));   // Connected to the first via 2.
  inst.Insert(Fact(r_, {10, 11}));  // Separate component.
  inst.Insert(Fact(u_, {11}));      // Joins the second component.
  const std::vector<Instance> comps = inst.Components();
  ASSERT_EQ(comps.size(), 2u);
  std::multiset<std::size_t> sizes;
  for (const auto& c : comps) sizes.insert(c.Size());
  EXPECT_EQ(sizes, (std::multiset<std::size_t>{2, 2}));
}

TEST_F(RelationalTest, ComponentsOfEmptyInstance) {
  Instance inst;
  EXPECT_TRUE(inst.Components().empty());
}

TEST_F(RelationalTest, UniformGeneratorProducesRequestedSize) {
  Rng rng(1);
  Instance inst;
  AddUniformRelation(schema_, r_, 500, 100, rng, inst);
  EXPECT_EQ(inst.FactsOf(r_).size(), 500u);
  for (const Fact& f : inst.FactsOf(r_)) {
    EXPECT_GE(f.args[0].v, 0);
    EXPECT_LT(f.args[0].v, 100);
  }
}

TEST_F(RelationalTest, ZipfGeneratorSkewsRequestedColumn) {
  Rng rng(2);
  Instance inst;
  AddZipfRelation(schema_, r_, 2000, 5000, 1.5, 0, rng, inst);
  EXPECT_EQ(inst.FactsOf(r_).size(), 2000u);
  std::map<std::int64_t, int> freq;
  for (const Fact& f : inst.FactsOf(r_)) ++freq[f.args[0].v];
  // The hottest value should be a genuine heavy hitter.
  int max_freq = 0;
  for (const auto& [v, c] : freq) max_freq = std::max(max_freq, c);
  EXPECT_GT(max_freq, 200);
}

TEST_F(RelationalTest, MatchingRelationHasNoRepeatsPerColumn) {
  Rng rng(3);
  Instance inst;
  AddMatchingRelation(schema_, r_, 100, 1000, rng, inst);
  EXPECT_EQ(inst.FactsOf(r_).size(), 100u);
  std::set<std::int64_t> col0;
  std::set<std::int64_t> col1;
  for (const Fact& f : inst.FactsOf(r_)) {
    EXPECT_TRUE(col0.insert(f.args[0].v).second) << "repeat in column 0";
    EXPECT_TRUE(col1.insert(f.args[1].v).second) << "repeat in column 1";
  }
}

TEST_F(RelationalTest, GraphGenerators) {
  Instance inst;
  AddPathGraph(schema_, r_, 5, inst);
  EXPECT_EQ(inst.FactsOf(r_).size(), 4u);
  Instance cycle;
  AddCycleGraph(schema_, r_, 5, cycle);
  EXPECT_EQ(cycle.FactsOf(r_).size(), 5u);
  EXPECT_TRUE(cycle.Contains(Fact(r_, {4, 0})));
  Instance tri;
  AddTriangleClusters(schema_, r_, 3, 100, tri);
  EXPECT_EQ(tri.FactsOf(r_).size(), 9u);
  EXPECT_TRUE(tri.Contains(Fact(r_, {102, 100})));
  Rng rng(4);
  Instance g;
  AddRandomGraph(schema_, r_, 50, 20, rng, g);
  EXPECT_EQ(g.FactsOf(r_).size(), 50u);
  for (const Fact& f : g.FactsOf(r_)) EXPECT_NE(f.args[0], f.args[1]);
}


TEST_F(RelationalTest, InstanceIoRoundTrip) {
  Instance inst;
  inst.Insert(Fact(r_, {1, 2}));
  inst.Insert(Fact(r_, {-3, 4}));
  inst.Insert(Fact(u_, {7}));
  std::ostringstream os;
  WriteInstance(os, schema_, inst);
  Schema schema2;
  const Instance reloaded = ReadInstanceFromString(os.str(), schema2);
  EXPECT_EQ(reloaded.Size(), 3u);
  EXPECT_TRUE(
      reloaded.Contains(Fact(schema2.IdOf("R"), {-3, 4})));
  EXPECT_TRUE(reloaded.Contains(Fact(schema2.IdOf("U"), {7})));
}

TEST_F(RelationalTest, InstanceIoSkipsCommentsAndBlanks) {
  Schema schema;
  const Instance inst = ReadInstanceFromString(
      "# a comment\n"
      "\n"
      "E(1,2)\n"
      "  % another comment\n"
      "  E(2, 3)  \n",
      schema);
  EXPECT_EQ(inst.Size(), 2u);
  EXPECT_TRUE(inst.Contains(Fact(schema.IdOf("E"), {2, 3})));
}

TEST_F(RelationalTest, InstanceIoNullaryFacts) {
  Schema schema;
  const Instance inst = ReadInstanceFromString("Flag()\n", schema);
  EXPECT_EQ(inst.Size(), 1u);
  EXPECT_EQ(schema.ArityOf(schema.IdOf("Flag")), 0u);
}

}  // namespace
}  // namespace lamp
