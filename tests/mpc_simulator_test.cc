#include <gtest/gtest.h>

#include "cq/eval.h"
#include "cq/parser.h"
#include "mpc/heavy_hitters.h"
#include "mpc/simulator.h"
#include "relational/generators.h"

namespace lamp {
namespace {

class SimulatorTest : public ::testing::Test {
 protected:
  SimulatorTest() { r_ = schema_.AddRelation("R", 2); }

  Schema schema_;
  RelationId r_ = 0;
};

TEST_F(SimulatorTest, LoadInputScattersRoundRobin) {
  Instance global;
  for (int i = 0; i < 10; ++i) global.Insert(Fact(r_, {i, i}));
  MpcSimulator sim(4);
  sim.LoadInput(global);
  std::size_t total = 0;
  for (const Instance& local : sim.locals()) {
    EXPECT_LE(local.Size(), 3u);
    total += local.Size();
  }
  EXPECT_EQ(total, 10u);
  EXPECT_EQ(sim.GlobalState(), global);
}

TEST_F(SimulatorTest, RoundRoutesAndCounts) {
  Instance global;
  for (int i = 0; i < 8; ++i) global.Insert(Fact(r_, {i, 0}));
  MpcSimulator sim(2);
  sim.LoadInput(global);
  // Send everything to server 0.
  sim.RunRound(
      [](NodeId, const Fact&) -> std::vector<NodeId> { return {0}; },
      MpcSimulator::KeepAll());
  EXPECT_EQ(sim.locals()[0].Size(), 8u);
  EXPECT_TRUE(sim.locals()[1].Empty());
  ASSERT_EQ(sim.stats().rounds.size(), 1u);
  // 4 facts were already on server 0 (round robin): self-routing is free.
  EXPECT_EQ(sim.stats().rounds[0].received[0], 4u);
  EXPECT_EQ(sim.stats().rounds[0].received[1], 0u);
  EXPECT_EQ(sim.stats().MaxLoad(), 4u);
}

TEST_F(SimulatorTest, DroppedFactsDisappear) {
  Instance global;
  global.Insert(Fact(r_, {1, 2}));
  MpcSimulator sim(2);
  sim.LoadInput(global);
  sim.RunRound([](NodeId, const Fact&) -> std::vector<NodeId> { return {}; },
               MpcSimulator::KeepAll());
  EXPECT_TRUE(sim.GlobalState().Empty());
}

TEST_F(SimulatorTest, BroadcastCountsPerServer) {
  Instance global;
  for (int i = 0; i < 6; ++i) global.Insert(Fact(r_, {i, i}));
  MpcSimulator sim(3);
  sim.LoadInput(global);
  sim.RunRound(
      [](NodeId, const Fact&) -> std::vector<NodeId> { return {0, 1, 2}; },
      MpcSimulator::KeepAll());
  // Every server holds everything; each received 4 foreign facts.
  for (NodeId n = 0; n < 3; ++n) {
    EXPECT_EQ(sim.locals()[n].Size(), 6u);
    EXPECT_EQ(sim.stats().rounds[0].received[n], 4u);
  }
  EXPECT_EQ(sim.stats().TotalCommunication(), 12u);
}

TEST_F(SimulatorTest, OutputAccumulatesAcrossRounds) {
  Instance global;
  global.Insert(Fact(r_, {1, 1}));
  MpcSimulator sim(1);
  sim.LoadInput(global);
  auto emit = [this](NodeId, const Instance& received) {
    Instance out;
    out.Insert(Fact(r_, {static_cast<std::int64_t>(received.Size()), 0}));
    return MpcSimulator::ComputeResult{received, out};
  };
  sim.RunRound([](NodeId s, const Fact&) -> std::vector<NodeId> { return {s}; },
               emit);
  sim.RunRound([](NodeId s, const Fact&) -> std::vector<NodeId> { return {s}; },
               emit);
  EXPECT_EQ(sim.output().Size(), 1u);  // Same fact emitted twice, set union.
  EXPECT_EQ(sim.stats().NumRounds(), 2u);
}

TEST(RoundStatsTest, Aggregations) {
  RoundStats r;
  r.received = {3, 1, 5, 0};
  EXPECT_EQ(r.MaxLoad(), 5u);
  EXPECT_EQ(r.TotalLoad(), 9u);
  EXPECT_NEAR(r.AvgLoad(), 2.25, 1e-12);
  RunStats stats;
  stats.rounds.push_back(r);
  RoundStats r2;
  r2.received = {7, 0, 0, 0};
  stats.rounds.push_back(r2);
  EXPECT_EQ(stats.MaxLoad(), 7u);
  EXPECT_EQ(stats.TotalCommunication(), 16u);
  EXPECT_EQ(stats.NumRounds(), 2u);
  EXPECT_FALSE(stats.ToString().empty());
}

TEST(RunStatsTest, EmptyStatsAreZeroNotUndefined) {
  // Satellite guarantee (see mpc/stats.h): all accessors are total
  // functions — zero servers / zero rounds return 0, never divide by
  // zero.
  const RoundStats no_servers;
  EXPECT_EQ(no_servers.MaxLoad(), 0u);
  EXPECT_EQ(no_servers.TotalLoad(), 0u);
  EXPECT_EQ(no_servers.AvgLoad(), 0.0);

  const RunStats no_rounds;
  EXPECT_EQ(no_rounds.MaxLoad(), 0u);
  EXPECT_EQ(no_rounds.TotalCommunication(), 0u);
  EXPECT_EQ(no_rounds.NumRounds(), 0u);

  // A round whose servers all received nothing is still well-defined.
  RunStats idle;
  idle.rounds.push_back(RoundStats{{0, 0, 0}, {}});
  EXPECT_EQ(idle.MaxLoad(), 0u);
  EXPECT_EQ(idle.TotalCommunication(), 0u);
  EXPECT_EQ(idle.rounds[0].AvgLoad(), 0.0);
}

TEST(HeavyHittersTest, FrequenciesAndThresholds) {
  Schema schema;
  const RelationId r = schema.AddRelation("R", 2);
  Instance inst;
  for (int i = 0; i < 10; ++i) inst.Insert(Fact(r, {i, 42}));
  inst.Insert(Fact(r, {0, 7}));

  const auto freq = ColumnFrequencies(inst, r, 1);
  EXPECT_EQ(freq.at(Value(42)), 10u);
  EXPECT_EQ(freq.at(Value(7)), 1u);

  const auto heavy = HeavyHitters(inst, r, 1, 5);
  EXPECT_EQ(heavy.size(), 1u);
  EXPECT_TRUE(heavy.count(Value(42)));
  EXPECT_TRUE(HeavyHitters(inst, r, 1, 10).empty());  // Strictly greater.
}

TEST(HeavyHittersTest, JoinHeavyCombinesColumns) {
  Schema schema;
  const RelationId r = schema.AddRelation("R", 2);
  const RelationId s = schema.AddRelation("S", 2);
  Instance inst;
  for (int i = 0; i < 6; ++i) inst.Insert(Fact(r, {i, 1}));   // 1 heavy in R.
  for (int i = 0; i < 6; ++i) inst.Insert(Fact(s, {2, i}));   // 2 heavy in S.
  const auto heavy = JoinHeavyHitters(inst, r, 1, s, 0, 4);
  EXPECT_EQ(heavy.size(), 2u);
  EXPECT_TRUE(heavy.count(Value(1)));
  EXPECT_TRUE(heavy.count(Value(2)));
}

}  // namespace
}  // namespace lamp
