#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "cq/parser.h"
#include "distribution/parallel_correctness.h"
#include "distribution/policies.h"
#include "par/thread_pool.h"

namespace lamp {
namespace {

// Example 4.1 of the paper, with a=0, b=1, c=2.
class Example41 : public ::testing::Test {
 protected:
  Example41() {
    qe_ = ParseQuery(schema_, "H(x1,x3) <- R(x1,x2), R(x2,x3), S(x3,x1)");
    r_ = schema_.IdOf("R");
    s_ = schema_.IdOf("S");
    ie_.Insert(Fact(r_, {0, 1}));
    ie_.Insert(Fact(r_, {1, 0}));
    ie_.Insert(Fact(r_, {1, 2}));
    ie_.Insert(Fact(s_, {0, 0}));
    ie_.Insert(Fact(s_, {2, 0}));
  }

  /// P1: all R-facts on both nodes; S(d1,d2) on node 0 iff d1 == d2.
  LambdaPolicy MakeP1() const {
    const RelationId r = r_;
    return LambdaPolicy(2, MakeUniverse(3),
                        [r](NodeId node, const Fact& f) {
                          if (f.relation == r) return true;
                          return (f.args[0] == f.args[1]) == (node == 0);
                        });
  }

  /// P2: all R-facts on node 0, all S-facts on node 1.
  LambdaPolicy MakeP2() const {
    const RelationId r = r_;
    return LambdaPolicy(2, MakeUniverse(3),
                        [r](NodeId node, const Fact& f) {
                          return (f.relation == r) == (node == 0);
                        });
  }

  Schema schema_;
  ConjunctiveQuery qe_;
  RelationId r_ = 0;
  RelationId s_ = 0;
  Instance ie_;
};

TEST_F(Example41, DistributedEvalUnderP1) {
  const LambdaPolicy p1 = MakeP1();
  const Instance result = DistributedEval(qe_, p1, ie_);
  // Node 0 (holding S(a,a)) derives H(a,a) via x2 = b; node 1 (holding
  // S(c,a)) derives H(a,c). (The paper's rendering "{H(a,b)} u {H(a,c)}"
  // is a typo for {H(a,a)} u {H(a,c)}: H(a,b) would need S(b,a), which is
  // not in Ie.)
  EXPECT_EQ(result.Size(), 2u);
  EXPECT_TRUE(result.Contains(Fact(schema_.IdOf("H"), {0, 0})));
  EXPECT_TRUE(result.Contains(Fact(schema_.IdOf("H"), {0, 2})));
  EXPECT_TRUE(IsParallelCorrectOn(qe_, p1, ie_));
}

TEST_F(Example41, DistributedEvalUnderP2IsEmpty) {
  const LambdaPolicy p2 = MakeP2();
  EXPECT_TRUE(DistributedEval(qe_, p2, ie_).Empty());
  // Qe(Ie) is nonempty, so P2 is not parallel-correct on Ie.
  EXPECT_FALSE(IsParallelCorrectOn(qe_, p2, ie_));
  EXPECT_FALSE(IsParallelCorrect(qe_, p2));
}

// Example 4.3 of the paper: PC0 fails but the policy is parallel-correct.
class Example43 : public ::testing::Test {
 protected:
  Example43() {
    q_ = ParseQuery(schema_, "H(x,z) <- R(x,y), R(y,z), R(x,x)");
    r_ = schema_.IdOf("R");
  }

  /// P: every fact except R(a,b) on node 0; every fact except R(b,a) on
  /// node 1 (a=0, b=1).
  LambdaPolicy MakePolicy() const {
    const RelationId r = r_;
    return LambdaPolicy(2, MakeUniverse(2),
                        [r](NodeId node, const Fact& f) {
                          const Fact rab(r, {0, 1});
                          const Fact rba(r, {1, 0});
                          if (node == 0) return !(f == rab);
                          return !(f == rba);
                        });
  }

  Schema schema_;
  ConjunctiveQuery q_;
  RelationId r_ = 0;
};

TEST_F(Example43, StrongSaturationFailsButPcHolds) {
  const LambdaPolicy policy = MakePolicy();
  // The valuation {x->a, y->b, z->a} requires R(a,b) and R(b,a), which
  // never meet: condition (PC0) fails.
  EXPECT_FALSE(StronglySaturates(policy, q_));
  // Yet the policy saturates Q (PC1) and is parallel-correct
  // (Proposition 4.6 / the paper's argument via R(a,a) or R(b,b)).
  EXPECT_TRUE(Saturates(policy, q_));
  EXPECT_TRUE(IsParallelCorrect(q_, policy));
  // Cross-validate with exhaustive instance search: no counterexample with
  // up to 4 facts over the 2-value universe (the full fact space).
  EXPECT_FALSE(FindPcCounterexample(schema_, q_, policy, 4).has_value());
}

TEST(ParallelCorrectness, BroadcastPolicyAlwaysCorrect) {
  Schema schema;
  const ConjunctiveQuery q =
      ParseQuery(schema, "H(x,z) <- R(x,y), S(y,z)");
  const LambdaPolicy broadcast(3, MakeUniverse(3),
                               [](NodeId, const Fact&) { return true; });
  EXPECT_TRUE(StronglySaturates(broadcast, q));
  EXPECT_TRUE(IsParallelCorrect(q, broadcast));
}

TEST(ParallelCorrectness, SplitJoinColumnsAreIncorrect) {
  Schema schema;
  const ConjunctiveQuery q =
      ParseQuery(schema, "H(x,z) <- R(x,y), S(y,z)");
  const RelationId r = schema.IdOf("R");
  // R-facts on node 0, S-facts on node 1: the join never meets.
  const LambdaPolicy split(2, MakeUniverse(2),
                           [r](NodeId node, const Fact& f) {
                             return (f.relation == r) == (node == 0);
                           });
  EXPECT_FALSE(IsParallelCorrect(q, split));
  // And an actual counterexample instance exists (PCI view).
  const auto witness = FindPcCounterexample(schema, q, split, 2);
  ASSERT_TRUE(witness.has_value());
  EXPECT_FALSE(IsParallelCorrectOn(q, split, *witness));
}

TEST(ParallelCorrectness, SweepAgreesWithPerCheckDecider) {
  Schema schema;
  const ConjunctiveQuery q =
      ParseQuery(schema, "H(x,z) <- R(x,y), S(y,z)");
  const RelationId r = schema.IdOf("R");
  const LambdaPolicy broadcast(3, MakeUniverse(3),
                               [](NodeId, const Fact&) { return true; });
  const LambdaPolicy split(2, MakeUniverse(2),
                           [r](NodeId node, const Fact& f) {
                             return (f.relation == r) == (node == 0);
                           });
  const std::vector<PcCheck> checks = {{&q, &broadcast}, {&q, &split}};
  // Fanned across the pool, verdicts are positionally stable and match
  // the scalar decider at every thread count.
  for (std::size_t threads : {1, 4}) {
    par::SetDefaultThreads(threads);
    const std::vector<std::uint8_t> verdicts =
        ParallelCorrectnessSweep(checks);
    ASSERT_EQ(verdicts.size(), 2u);
    EXPECT_EQ(verdicts[0], 1) << "threads=" << threads;
    EXPECT_EQ(verdicts[1], 0) << "threads=" << threads;
  }
  par::SetDefaultThreads(1);
}

TEST(ParallelCorrectness, CharacterizationAgreesWithSearchOnRandomPolicies) {
  // Property test for Proposition 4.6: the minimal-valuation decider and
  // the exhaustive instance search must agree on random finite policies.
  Schema schema;
  const ConjunctiveQuery q = ParseQuery(schema, "H(x,z) <- R(x,y), R(y,z)");
  const RelationId r = schema.IdOf("R");
  Rng rng(99);
  int correct_count = 0;
  for (int trial = 0; trial < 40; ++trial) {
    FinitePolicy policy(2, MakeUniverse(2));
    for (std::int64_t a = 0; a < 2; ++a) {
      for (std::int64_t b = 0; b < 2; ++b) {
        for (NodeId node = 0; node < 2; ++node) {
          if (rng.Bernoulli(0.7)) policy.Assign(node, Fact(r, {a, b}));
        }
      }
    }
    const bool by_characterization = IsParallelCorrect(q, policy);
    const bool by_search =
        !FindPcCounterexample(schema, q, policy, 4).has_value();
    EXPECT_EQ(by_characterization, by_search) << "trial " << trial;
    correct_count += by_characterization ? 1 : 0;
  }
  // Sanity: the sample contains both correct and incorrect policies.
  EXPECT_GT(correct_count, 0);
  EXPECT_LT(correct_count, 40);
}

TEST(ParallelCorrectness, UnionMinimalityAcrossDisjuncts) {
  Schema schema;
  std::vector<ConjunctiveQuery> ucq;
  // Q1: H(x,z) <- R(x,y), R(y,z); Q2: H(x,x) <- R(x,x).
  ucq.push_back(ParseQuery(schema, "H(x,z) <- R(x,y), R(y,z)"));
  ucq.push_back(ParseQuery(schema, "H(x,x) <- R(x,x)"));

  // Valuation {x->a, y->a, z->a} of Q1 requires {R(a,a)} and derives
  // H(a,a); Q2 derives the same from the same single fact — not smaller,
  // so it is still minimal.
  Valuation v(ucq[0].NumVars());
  v.Bind(ucq[0].FindVar("x"), Value(0));
  v.Bind(ucq[0].FindVar("y"), Value(0));
  v.Bind(ucq[0].FindVar("z"), Value(0));
  EXPECT_TRUE(IsMinimalForUnion(ucq, 0, v));

  // Valuation {x->a, y->b, z->a} requires 2 facts to derive H(a,a)...
  Valuation w(ucq[0].NumVars());
  w.Bind(ucq[0].FindVar("x"), Value(0));
  w.Bind(ucq[0].FindVar("y"), Value(1));
  w.Bind(ucq[0].FindVar("z"), Value(0));
  // ...and within Q1 alone it is minimal (no 1-fact derivation of H(0,0)
  // inside {R(0,1), R(1,0)}), and Q2 needs R(0,0) which is absent: minimal.
  EXPECT_TRUE(IsMinimalForUnion(ucq, 0, w));
}

TEST(ParallelCorrectness, UnionPcDecider) {
  Schema schema;
  std::vector<ConjunctiveQuery> ucq;
  ucq.push_back(ParseQuery(schema, "H(x) <- R(x,y)"));
  ucq.push_back(ParseQuery(schema, "H(y) <- R(x,y)"));
  const LambdaPolicy broadcast(2, MakeUniverse(2),
                               [](NodeId, const Fact&) { return true; });
  EXPECT_TRUE(IsParallelCorrectUnion(ucq, broadcast));

  const RelationId r = schema.IdOf("R");
  // Nothing assigned to any node: single-atom minimal valuations fail.
  const LambdaPolicy empty(2, MakeUniverse(2),
                           [](NodeId, const Fact&) { return false; });
  EXPECT_FALSE(IsParallelCorrectUnion(ucq, empty));
  (void)r;
}

TEST(ParallelCorrectness, NegationSoundnessVsCompleteness) {
  Schema schema;
  // Open-wedge query with negation (cf. Example 5.1(2)).
  const ConjunctiveQuery q =
      ParseQuery(schema, "H(x,z) <- E(x,y), E(y,z), !E(z,x)");
  const RelationId e = schema.IdOf("E");

  // Split policy: E-facts with even first component on node 0, odd on 1.
  const LambdaPolicy split(2, MakeUniverse(3),
                           [](NodeId node, const Fact& f) {
                             return (f.args[0].v % 2) ==
                                    static_cast<std::int64_t>(node);
                           });
  // Instance where a node derives an open wedge that is globally closed:
  // parallel-soundness fails.
  Instance inst;
  inst.Insert(Fact(e, {0, 1}));
  inst.Insert(Fact(e, {1, 2}));
  inst.Insert(Fact(e, {2, 0}));
  EXPECT_FALSE(IsParallelSoundOn(q, split, inst));
  EXPECT_FALSE(IsParallelCorrectOn(q, split, inst));

  // Broadcast is both sound and complete for any query.
  const LambdaPolicy broadcast(2, MakeUniverse(3),
                               [](NodeId, const Fact&) { return true; });
  EXPECT_TRUE(IsParallelSoundOn(q, broadcast, inst));
  EXPECT_TRUE(IsParallelCompleteOn(q, broadcast, inst));
  EXPECT_TRUE(IsParallelCorrectOn(q, broadcast, inst));
}

}  // namespace
}  // namespace lamp
