#include <gtest/gtest.h>

#include "cq/eval.h"
#include "cq/parser.h"
#include "datalog/eval.h"
#include "datalog/program.h"
#include "datalog/wellfounded.h"
#include "distribution/domain_guided.h"
#include "distribution/policies.h"
#include "net/consistency.h"
#include "net/datalog_program.h"
#include "net/network.h"
#include "net/programs.h"
#include "relational/generators.h"

namespace lamp {
namespace {

NetQueryFunction WrapCq(const ConjunctiveQuery& q) {
  return [&q](const Instance& instance) { return Evaluate(q, instance); };
}

class NetTest : public ::testing::Test {
 protected:
  NetTest() {
    e_ = schema_.AddRelation("E", 2);
    triangle_ = ParseQuery(
        schema_, "H(x,y,z) <- E(x,y), E(y,z), E(z,x), x != y, y != z, x != z");
    open_triangle_ =
        ParseQuery(schema_, "H(x,y,z) <- E(x,y), E(y,z), !E(z,x)");
  }

  Instance MakeGraph(std::uint64_t seed, std::size_t edges = 40,
                     std::size_t nodes = 12) {
    Rng rng(seed);
    Instance g;
    AddRandomGraph(schema_, e_, edges, nodes, rng, g);
    // Guarantee some triangles.
    AddTriangleClusters(schema_, e_, 2, 100, g);
    return g;
  }

  Schema schema_;
  RelationId e_ = 0;
  ConjunctiveQuery triangle_;
  ConjunctiveQuery open_triangle_;
};

TEST_F(NetTest, MonotoneBroadcastComputesTrianglesOnAllSchedules) {
  // Example 5.1(1): Pi_4 computes the triangle query on every network,
  // distribution and message order.
  const Instance graph = MakeGraph(1);
  const Instance expected = Evaluate(triangle_, graph);
  ASSERT_FALSE(expected.Empty());

  MonotoneBroadcastProgram program(WrapCq(triangle_));
  std::vector<std::vector<Instance>> distributions;
  for (std::size_t n : {1u, 2u, 5u}) {
    distributions.push_back(DistributeRoundRobin(graph, n));
    distributions.push_back(DistributeReplicated(graph, n));
  }
  const ConsistencySweep sweep = CheckEventualConsistency(
      program, distributions, expected, 6, nullptr, /*aware=*/false);
  EXPECT_TRUE(sweep.all_runs_correct);
  EXPECT_EQ(sweep.runs, 36u);
}

TEST_F(NetTest, MonotoneBroadcastIsCoordinationFree) {
  // The ideal distribution replicates I everywhere; the heartbeat-only run
  // already produces the full answer.
  const Instance graph = MakeGraph(2);
  const Instance expected = Evaluate(triangle_, graph);
  MonotoneBroadcastProgram program(WrapCq(triangle_));
  EXPECT_TRUE(ComputesWithoutCommunication(
      program, DistributeReplicated(graph, 4), expected, nullptr,
      /*aware=*/false));
}

TEST_F(NetTest, NaiveBroadcastFailsForOpenTriangles) {
  // Example 5.1(2): the open-triangle query is not monotone, so the naive
  // strategy emits facts that are wrong globally on some distribution.
  const Instance graph = MakeGraph(3);
  const Instance expected = Evaluate(open_triangle_, graph);

  MonotoneBroadcastProgram program(WrapCq(open_triangle_));
  std::vector<std::vector<Instance>> distributions = {
      DistributeRoundRobin(graph, 4)};
  const ConsistencySweep sweep = CheckEventualConsistency(
      program, distributions, expected, 5, nullptr, /*aware=*/false);
  EXPECT_FALSE(sweep.all_runs_correct);
}

TEST_F(NetTest, PolicyAwareProgramComputesOpenTriangles) {
  // Example 5.4 / Theorem 5.8: with policy awareness, the open-triangle
  // query (in Mdistinct) becomes computable coordination-free: a node
  // outputs a wedge once it is responsible for the (absent) closing edge.
  const Instance graph = MakeGraph(4, 25, 8);
  const Instance expected = Evaluate(open_triangle_, graph);
  ASSERT_FALSE(expected.Empty());

  const DomainGuidedPolicy policy =
      DomainGuidedPolicy::HashBased(3, MakeUniverse(1), 7);
  PolicyAwareNegationProgram program(open_triangle_);

  std::vector<std::vector<Instance>> distributions = {
      DistributeByPolicy(graph, policy)};
  const ConsistencySweep sweep = CheckEventualConsistency(
      program, distributions, expected, 6, &policy, /*aware=*/false);
  EXPECT_TRUE(sweep.all_runs_correct);
}

TEST_F(NetTest, PolicyAwareProgramIsCoordinationFree) {
  // Ideal distribution: the full instance everywhere. Every missing edge
  // has some responsible node (domain-guided alpha is total), so the
  // heartbeat-only union over nodes is already Q(I).
  const Instance graph = MakeGraph(8, 20, 7);
  const Instance expected = Evaluate(open_triangle_, graph);
  const DomainGuidedPolicy policy =
      DomainGuidedPolicy::HashBased(3, MakeUniverse(1), 11);
  PolicyAwareNegationProgram program(open_triangle_);
  EXPECT_TRUE(ComputesWithoutCommunication(
      program, DistributeReplicated(graph, 3), expected, &policy,
      /*aware=*/false));
}

TEST_F(NetTest, DistinctCompleteComputesOpenTriangles) {
  // The Theorem 5.8 sketch itself: nodes wait until their active domain is
  // distinct-complete. Example 4.3-style policy: both nodes responsible
  // for everything except one specific edge each; since those edges are in
  // I, both nodes become complete after the exchange.
  Instance graph = MakeGraph(9, 20, 6);
  graph.Insert(Fact(e_, {0, 1}));
  graph.Insert(Fact(e_, {1, 0}));
  const Instance expected = Evaluate(open_triangle_, graph);
  ASSERT_FALSE(expected.Empty());

  const RelationId e = e_;
  const LambdaPolicy policy(
      2, MakeUniverse(1), [e](NodeId node, const Fact& f) {
        const Fact e01(e, {0, 1});
        const Fact e10(e, {1, 0});
        if (node == 0) return !(f == e01);
        return !(f == e10);
      });
  DistinctCompleteProgram program(WrapCq(open_triangle_), schema_, {e_});

  std::vector<std::vector<Instance>> distributions = {
      DistributeByPolicy(graph, policy)};
  const ConsistencySweep sweep = CheckEventualConsistency(
      program, distributions, expected, 4, &policy, /*aware=*/false);
  EXPECT_TRUE(sweep.all_runs_correct);
}

TEST_F(NetTest, DistinctCompleteIsCoordinationFree) {
  // Ideal distribution: everything everywhere. Every node is then
  // distinct-complete immediately (all facts of I received/local), so the
  // heartbeat run outputs Q(I) — when every node is also responsible for
  // everything (the replicate-all policy).
  const Instance graph = MakeGraph(5, 20, 7);
  const Instance expected = Evaluate(open_triangle_, graph);
  const LambdaPolicy replicate_all(3, MakeUniverse(1),
                                   [](NodeId, const Fact&) { return true; });
  DistinctCompleteProgram program(WrapCq(open_triangle_), schema_, {e_});
  EXPECT_TRUE(ComputesWithoutCommunication(
      program, DistributeReplicated(graph, 3), expected, &replicate_all,
      /*aware=*/false));
}

TEST_F(NetTest, ComponentProgramComputesComplementOfTc) {
  // Theorem 5.12: not-TC (in Mdisjoint) under a domain-guided policy.
  Schema schema;
  DatalogProgram prog = ParseProgram(schema,
                                     "TC(x,y) <- E(x,y)\n"
                                     "TC(x,y) <- TC(x,z), TC(z,y)\n"
                                     "OUT(x,y) <- ADom(x), ADom(y), !TC(x,y)");
  const RelationId out = schema.IdOf("OUT");
  NetQueryFunction not_tc = [&schema, &prog, out](const Instance& edb) {
    const Instance everything = EvaluateProgram(schema, prog, edb);
    Instance result;
    for (const Fact& f : everything.FactsOf(out)) result.Insert(f);
    return result;
  };

  // Two disconnected paths.
  Instance edb;
  const RelationId e = schema.IdOf("E");
  edb.Insert(Fact(e, {0, 1}));
  edb.Insert(Fact(e, {1, 2}));
  edb.Insert(Fact(e, {10, 11}));
  const Instance expected = not_tc(edb);

  const DomainGuidedPolicy policy =
      DomainGuidedPolicy::HashBased(3, MakeUniverse(1), 3);
  ComponentProgram program(not_tc, schema);

  std::vector<std::vector<Instance>> distributions = {
      DistributeByPolicy(edb, policy)};
  const ConsistencySweep sweep = CheckEventualConsistency(
      program, distributions, expected, 8, &policy, /*aware=*/false);
  EXPECT_TRUE(sweep.all_runs_correct);
}

TEST_F(NetTest, ComponentProgramIsCoordinationFreeOnIdealDistribution) {
  Schema schema;
  const RelationId e = schema.AddRelation("E", 2);
  const ConjunctiveQuery edges = ParseQuery(schema, "H(x,y) <- E(x,y)");
  Instance edb;
  edb.Insert(Fact(e, {0, 1}));
  edb.Insert(Fact(e, {5, 6}));
  const Instance expected = Evaluate(edges, edb);

  // Ideal: one node owns everything (alpha(a) = {0} for all a), and the
  // distribution gives it the full database.
  const DomainGuidedPolicy own_all(
      2, MakeUniverse(1), [](Value) -> std::vector<NodeId> { return {0}; });
  ComponentProgram program(WrapCq(edges), schema);
  EXPECT_TRUE(ComputesWithoutCommunication(
      program, DistributeByPolicy(edb, own_all), expected, &own_all,
      /*aware=*/false));
}

TEST_F(NetTest, ObliviousnessAuditAborts) {
  // Programs in A_i must not read |All|; the runner aborts if one does.
  class NosyProgram : public TransducerProgram {
   public:
    void OnStart(NodeContext& ctx) override {
      (void)ctx.NetworkSize();  // Forbidden for aware == false.
    }
    void OnReceive(NodeContext&, const Message&) override {}
  };
  NosyProgram nosy;
  std::vector<Instance> locals(2);
  TransducerNetwork network(locals, nosy, nullptr, /*aware=*/false);
  EXPECT_DEATH(network.Run(0), "oblivious");
}

TEST_F(NetTest, EconomicalBroadcastSendsLessForSameAnswer) {
  // Ketsman-Neven (Section 6): only query-relevant facts travel.
  Schema schema;
  const ConjunctiveQuery q = ParseQuery(schema, "H(x) <- R(x,x), S(x)");
  const RelationId r = schema.IdOf("R");
  const RelationId s = schema.IdOf("S");
  Instance edb;
  // Only diagonal R-facts and S-facts are relevant.
  for (int i = 0; i < 10; ++i) {
    edb.Insert(Fact(r, {i, i}));
    edb.Insert(Fact(r, {i, i + 1}));  // Irrelevant for R(x,x).
    edb.Insert(Fact(s, {i}));
  }
  const Instance expected = Evaluate(q, edb);

  MonotoneBroadcastProgram naive(WrapCq(q));
  EconomicalBroadcastProgram economical(q);

  const std::vector<Instance> locals = DistributeRoundRobin(edb, 4);
  TransducerNetwork naive_net(locals, naive, nullptr, false);
  TransducerNetwork econ_net(locals, economical, nullptr, false);
  const NetworkRunResult naive_run = naive_net.Run(1);
  const NetworkRunResult econ_run = econ_net.Run(1);

  EXPECT_EQ(naive_run.output, expected);
  EXPECT_EQ(econ_run.output, expected);
  EXPECT_LT(econ_run.facts_transferred(), naive_run.facts_transferred());
  // Exactly the 10 off-diagonal R-facts per... at least a third saved.
  EXPECT_LE(econ_run.facts_transferred() * 3,
            naive_run.facts_transferred() * 2 + 3);
}

TEST_F(NetTest, EconomicalRelevanceFilter) {
  Schema schema;
  const ConjunctiveQuery q = ParseQuery(schema, "H(x) <- R(x,x), S(x, 7)");
  EconomicalBroadcastProgram program(q);
  const RelationId r = schema.IdOf("R");
  const RelationId s = schema.IdOf("S");
  EXPECT_TRUE(program.IsRelevant(Fact(r, {3, 3})));
  EXPECT_FALSE(program.IsRelevant(Fact(r, {3, 4})));  // Repeated var.
  EXPECT_TRUE(program.IsRelevant(Fact(s, {1, 7})));
  EXPECT_FALSE(program.IsRelevant(Fact(s, {1, 8})));  // Constant mismatch.
  EXPECT_FALSE(program.IsRelevant(Fact(schema.AddRelation("T", 1), {1})));
}

TEST_F(NetTest, MessageCountsAreTracked) {
  const Instance graph = MakeGraph(6, 10, 6);
  MonotoneBroadcastProgram program(WrapCq(triangle_));
  TransducerNetwork network(DistributeRoundRobin(graph, 3), program, nullptr,
                            false);
  const NetworkRunResult result = network.Run(42);
  EXPECT_GT(result.messages_sent(), 0u);
  EXPECT_GT(result.facts_transferred(), 0u);
  EXPECT_GT(result.transitions(), 0u);
}

TEST_F(NetTest, SingleNodeNetworkNeedsNoMessages) {
  const Instance graph = MakeGraph(7, 10, 6);
  MonotoneBroadcastProgram program(WrapCq(triangle_));
  TransducerNetwork network({graph}, program, nullptr, false);
  const NetworkRunResult result = network.Run(0);
  EXPECT_EQ(result.output, Evaluate(triangle_, graph));
  EXPECT_EQ(result.messages_sent(), 0u);
}


TEST_F(NetTest, CoordinatedBarrierComputesOpenTriangles) {
  // Example 5.1(2): with an explicit coordination barrier (and knowledge
  // of All), the non-monotone open-triangle query becomes computable on
  // every schedule — at the price of a global synchronization point.
  const Instance graph = MakeGraph(10, 25, 8);
  const Instance expected = Evaluate(open_triangle_, graph);
  ASSERT_FALSE(expected.Empty());

  Schema scratch = schema_;
  CoordinatedBarrierProgram program(WrapCq(open_triangle_), scratch);
  std::vector<std::vector<Instance>> distributions;
  for (std::size_t n : {2u, 4u}) {
    distributions.push_back(DistributeRoundRobin(graph, n));
  }
  // Note aware = true: the barrier needs |All|.
  const ConsistencySweep sweep = CheckEventualConsistency(
      program, distributions, expected, 6, nullptr, /*aware=*/true);
  EXPECT_TRUE(sweep.all_runs_correct);
}

TEST_F(NetTest, CoordinatedBarrierIsNotOblivious) {
  // Running the same program as an oblivious (A_i) network aborts at the
  // NetworkSize() call: coordination is visible in the model.
  const Instance graph = MakeGraph(11, 10, 6);
  Schema scratch = schema_;
  CoordinatedBarrierProgram program(WrapCq(open_triangle_), scratch);
  TransducerNetwork network(DistributeRoundRobin(graph, 2), program, nullptr,
                            /*aware=*/false);
  EXPECT_DEATH(network.Run(0), "oblivious");
}

TEST_F(NetTest, ComponentProgramRunsWinMovePerComponent) {
  // Section 5.3 (Zinn-Green-Ludaescher via Ameloot et al.): win-move under
  // the well-founded semantics is in Mdisjoint, so the per-component
  // strategy computes it coordination-free under domain-guided policies.
  Schema schema;
  DatalogProgram prog = ParseProgram(schema, "WIN(x) <- MOVE(x,y), !WIN(y)");
  NetQueryFunction win = [&schema, &prog](const Instance& edb) {
    return EvaluateWellFounded(schema, prog, edb).true_facts;
  };

  Instance games;
  const RelationId move = schema.IdOf("MOVE");
  games.Insert(Fact(move, {1, 0}));     // Component 1: 1 wins.
  games.Insert(Fact(move, {2, 1}));     //              2 loses.
  games.Insert(Fact(move, {10, 11}));   // Component 2: draw cycle.
  games.Insert(Fact(move, {11, 10}));
  games.Insert(Fact(move, {20, 21}));   // Component 3: 20 wins.
  const Instance expected = win(games);

  const DomainGuidedPolicy policy =
      DomainGuidedPolicy::HashBased(3, MakeUniverse(1), 23);
  ComponentProgram program(win, schema);
  const ConsistencySweep sweep = CheckEventualConsistency(
      program, {DistributeByPolicy(games, policy)}, expected, 8, &policy,
      /*aware=*/false);
  EXPECT_TRUE(sweep.all_runs_correct);
}


TEST_F(NetTest, DistributedDatalogComputesReachability) {
  // Declarative networking: each node holds a shard of the edge relation;
  // the network computes full transitive closure by pipelining derived
  // facts, consistent on every schedule (TC is monotone).
  Schema schema;
  DatalogProgram prog = ParseProgram(schema,
                                     "TC(x,y) <- E(x,y)\n"
                                     "TC(x,y) <- TC(x,z), E(z,y)");
  Instance edges;
  AddPathGraph(schema, schema.IdOf("E"), 8, edges);
  const Instance everything = EvaluateProgram(schema, prog, edges);
  Instance expected;
  for (const Fact& f : everything.FactsOf(schema.IdOf("TC"))) {
    expected.Insert(f);
  }

  DistributedDatalogProgram program(schema, prog);
  std::vector<std::vector<Instance>> distributions = {
      DistributeRoundRobin(edges, 3), DistributeRoundRobin(edges, 5)};
  const ConsistencySweep sweep = CheckEventualConsistency(
      program, distributions, expected, 6, nullptr, /*aware=*/false);
  EXPECT_TRUE(sweep.all_runs_correct);
}

TEST_F(NetTest, DistributedDatalogIsCoordinationFree) {
  Schema schema;
  DatalogProgram prog = ParseProgram(schema,
                                     "TC(x,y) <- E(x,y)\n"
                                     "TC(x,y) <- TC(x,z), E(z,y)");
  Instance edges;
  AddCycleGraph(schema, schema.IdOf("E"), 5, edges);
  const Instance everything = EvaluateProgram(schema, prog, edges);
  Instance expected;
  for (const Fact& f : everything.FactsOf(schema.IdOf("TC"))) {
    expected.Insert(f);
  }
  DistributedDatalogProgram program(schema, prog);
  EXPECT_TRUE(ComputesWithoutCommunication(
      program, DistributeReplicated(edges, 3), expected, nullptr,
      /*aware=*/false));
}

TEST_F(NetTest, DistributedDatalogRejectsUnstratifiable) {
  Schema schema;
  DatalogProgram prog = ParseProgram(
      schema, "Win(x) <- Move(x,y), !Win(y)");
  EXPECT_DEATH(DistributedDatalogProgram(schema, prog), "stratif");
}

TEST_F(NetTest, DistributedDatalogAcceptsStratifiedNegationWithWarning) {
  Schema schema;
  DatalogProgram prog = ParseProgram(
      schema, "OUT(x,y) <- E(x,y), !F(x,y)");
  // Semi-positive, hence stratifiable: accepted (construction must not
  // abort); the eventual-consistency caveat goes to stderr.
  DistributedDatalogProgram program(schema, prog);
  (void)program;
}

}  // namespace
}  // namespace lamp
