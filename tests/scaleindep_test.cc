#include <gtest/gtest.h>

#include "common/rng.h"
#include "cq/eval.h"
#include "cq/parser.h"
#include "relational/generators.h"
#include "scaleindep/access.h"

namespace lamp {
namespace {

// A social-network-flavoured schema:
//   Person(id)               with Person(id -> 1)
//   Friend(id, friend_id)    with Friend(id -> k)    (bounded out-degree)
//   City(id, city)           with City(id -> 1)      (one city per person)
class ScaleIndepTest : public ::testing::Test {
 protected:
  ScaleIndepTest() {
    person_ = schema_.AddRelation("Person", 1);
    friend_ = schema_.AddRelation("Friend", 2);
    city_ = schema_.AddRelation("City", 2);
    access_.Add({person_, {0}, 1});
    access_.Add({friend_, {0}, kDegree});
    access_.Add({city_, {0}, 1});
  }

  /// Population of n people in a ring of friendships, one city each.
  Instance Population(std::size_t n) {
    Instance db;
    for (std::size_t i = 0; i < n; ++i) {
      const auto id = static_cast<std::int64_t>(i);
      db.Insert(Fact(person_, {id}));
      for (std::size_t d = 1; d <= kDegree; ++d) {
        db.Insert(Fact(friend_, {id, static_cast<std::int64_t>((i + d) % n)}));
      }
      db.Insert(Fact(city_, {id, 1000 + id % 7}));
    }
    return db;
  }

  static constexpr std::size_t kDegree = 3;

  Schema schema_;
  RelationId person_ = 0, friend_ = 0, city_ = 0;
  AccessSchema access_;
};

TEST_F(ScaleIndepTest, ParameterizedQueryIsBounded) {
  // "Cities of the friends of person 5": reachable from the constant 5
  // through constrained accesses only.
  const ConjunctiveQuery q =
      ParseQuery(schema_, "H(f,c) <- Friend(5, f), City(f, c)");
  const BoundedPlan plan = PlanBoundedEvaluation(q, access_);
  ASSERT_TRUE(plan.bounded);
  EXPECT_EQ(plan.steps.size(), 2u);
  // Fan-out: kDegree friend fetches + kDegree*1 city fetches.
  EXPECT_DOUBLE_EQ(plan.worst_case_fetches, kDegree + kDegree * 1.0);
}

TEST_F(ScaleIndepTest, UnanchoredQueryIsNotBounded) {
  // No constant to start from: every access needs an input value.
  const ConjunctiveQuery q =
      ParseQuery(schema_, "H(p,f) <- Friend(p, f), City(f, c)");
  EXPECT_FALSE(PlanBoundedEvaluation(q, access_).bounded);
}

TEST_F(ScaleIndepTest, FullScanConstraintMakesItBounded) {
  // Adding a bounded-scan constraint on Friend (a small relation promise)
  // anchors the unanchored query.
  AccessSchema extended = access_;
  extended.Add({friend_, {}, 1000});
  const ConjunctiveQuery q =
      ParseQuery(schema_, "H(p,f) <- Friend(p, f), City(f, c)");
  const BoundedPlan plan = PlanBoundedEvaluation(q, extended);
  EXPECT_TRUE(plan.bounded);
}

TEST_F(ScaleIndepTest, BoundedEvaluationMatchesFullEvaluation) {
  const ConjunctiveQuery q =
      ParseQuery(schema_, "H(f,c) <- Friend(5, f), City(f, c)");
  const BoundedPlan plan = PlanBoundedEvaluation(q, access_);
  ASSERT_TRUE(plan.bounded);
  const Instance db = Population(500);
  const BoundedEvalResult result = BoundedEvaluate(q, plan, db);
  EXPECT_EQ(result.output, Evaluate(q, db));
  EXPECT_EQ(result.output.Size(), kDegree);
}

TEST_F(ScaleIndepTest, FetchesAreScaleIndependent) {
  // The headline property: tuples fetched do not grow with |I|.
  const ConjunctiveQuery q = ParseQuery(
      schema_, "H(f,g,c) <- Friend(5, f), Friend(f, g), City(g, c)");
  const BoundedPlan plan = PlanBoundedEvaluation(q, access_);
  ASSERT_TRUE(plan.bounded);

  std::size_t fetched_small = 0;
  std::size_t fetched_large = 0;
  {
    const Instance db = Population(100);
    const BoundedEvalResult r = BoundedEvaluate(q, plan, db);
    EXPECT_EQ(r.output, Evaluate(q, db));
    fetched_small = r.tuples_fetched;
  }
  {
    const Instance db = Population(10000);
    const BoundedEvalResult r = BoundedEvaluate(q, plan, db);
    EXPECT_EQ(r.output, Evaluate(q, db));
    fetched_large = r.tuples_fetched;
  }
  EXPECT_EQ(fetched_small, fetched_large);
  // And bounded by the plan's worst case (k + k*k + k*k*1).
  EXPECT_LE(static_cast<double>(fetched_large), plan.worst_case_fetches);
}

TEST_F(ScaleIndepTest, ConstraintViolationIsDetected) {
  const ConjunctiveQuery q =
      ParseQuery(schema_, "H(f,c) <- Friend(5, f), City(f, c)");
  const BoundedPlan plan = PlanBoundedEvaluation(q, access_);
  Instance db = Population(50);
  // Person 5 suddenly has many more friends than the constraint allows.
  for (std::int64_t extra = 0; extra < 10; ++extra) {
    db.Insert(Fact(friend_, {5, 30 + extra}));
  }
  EXPECT_DEATH(BoundedEvaluate(q, plan, db), "access constraint");
}

TEST_F(ScaleIndepTest, GreedyPrefersTighterConstraints) {
  // Two constraints on Friend: choose the 1-bounded one when available.
  AccessSchema extended = access_;
  extended.Add({friend_, {0, 1}, 1});  // Membership probe.
  const ConjunctiveQuery q =
      ParseQuery(schema_, "H() <- Friend(5, 6)");
  const BoundedPlan plan = PlanBoundedEvaluation(q, extended);
  ASSERT_TRUE(plan.bounded);
  ASSERT_EQ(plan.steps.size(), 1u);
  EXPECT_EQ(plan.steps[0].constraint.bound, 1u);
  EXPECT_EQ(plan.steps[0].constraint.input_positions.size(), 2u);
}

TEST_F(ScaleIndepTest, InequalitiesApplied) {
  const ConjunctiveQuery q = ParseQuery(
      schema_, "H(f,g) <- Friend(5, f), Friend(5, g), f != g");
  const BoundedPlan plan = PlanBoundedEvaluation(q, access_);
  ASSERT_TRUE(plan.bounded);
  const Instance db = Population(100);
  const BoundedEvalResult result = BoundedEvaluate(q, plan, db);
  EXPECT_EQ(result.output, Evaluate(q, db));
  for (const Fact& f : result.output.AllFacts()) {
    EXPECT_FALSE(f.args[0] == f.args[1]);
  }
}

}  // namespace
}  // namespace lamp
