#include <gtest/gtest.h>

#include "common/rng.h"
#include "cq/eval.h"
#include "cq/parser.h"
#include "mpc/gym.h"
#include "relational/generators.h"

namespace lamp {
namespace {

TEST(Decomposition, SingleAtom) {
  Schema schema;
  const ConjunctiveQuery q = ParseQuery(schema, "H(x,y) <- R(x,y)");
  const TreeDecomposition td = BuildTreeDecomposition(q);
  EXPECT_TRUE(IsValidDecomposition(q, td));
  EXPECT_EQ(td.bags.size(), 1u);
  EXPECT_EQ(td.Width(), 1u);
}

TEST(Decomposition, PathHasWidthOne) {
  Schema schema;
  const ConjunctiveQuery q =
      ParseQuery(schema, "H(x,w) <- R1(x,y), R2(y,z), R3(z,w)");
  const TreeDecomposition td = BuildTreeDecomposition(q);
  EXPECT_TRUE(IsValidDecomposition(q, td));
  EXPECT_EQ(td.Width(), 1u);
}

TEST(Decomposition, TriangleHasWidthTwo) {
  Schema schema;
  const ConjunctiveQuery q =
      ParseQuery(schema, "H(x,y,z) <- R(x,y), S(y,z), T(z,x)");
  const TreeDecomposition td = BuildTreeDecomposition(q);
  EXPECT_TRUE(IsValidDecomposition(q, td));
  EXPECT_EQ(td.Width(), 2u);
}

TEST(Decomposition, FourCycleHasWidthTwo) {
  // Min-degree elimination is optimal on cycles: width 2, two bags.
  Schema schema;
  const ConjunctiveQuery q =
      ParseQuery(schema, "H(x,y,z,w) <- R(x,y), S(y,z), T(z,w), U(w,x)");
  const TreeDecomposition td = BuildTreeDecomposition(q);
  EXPECT_TRUE(IsValidDecomposition(q, td));
  EXPECT_EQ(td.Width(), 2u);
}

TEST(Decomposition, EveryBagHasAtoms) {
  Schema schema;
  const ConjunctiveQuery q = ParseQuery(
      schema, "H(a,b,c,d,e) <- R1(a,b), R2(b,c), R3(c,d), R4(d,e), R5(e,a)");
  const TreeDecomposition td = BuildTreeDecomposition(q);
  EXPECT_TRUE(IsValidDecomposition(q, td));
  for (const auto& bag : td.bags) {
    EXPECT_FALSE(bag.atom_indices.empty());
  }
}

class GymTest : public ::testing::Test {
 protected:
  Instance RandomRelations(Schema& schema, const ConjunctiveQuery& q,
                           std::size_t m, std::size_t domain,
                           std::uint64_t seed) {
    Rng rng(seed);
    Instance db;
    std::set<RelationId> done;
    for (const Atom& atom : q.body()) {
      if (!done.insert(atom.relation).second) continue;
      AddUniformRelation(schema, atom.relation, m, domain, rng, db);
    }
    return db;
  }
};

TEST_F(GymTest, TriangleMatchesCentralized) {
  Schema schema;
  const ConjunctiveQuery q =
      ParseQuery(schema, "H(x,y,z) <- R(x,y), S(y,z), T(z,x)");
  const Instance db = RandomRelations(schema, q, 200, 30, 1);
  const MpcRunResult result = GymEvaluate(schema, q, db, 8, 3);
  EXPECT_EQ(result.output, Evaluate(q, db));
}

TEST_F(GymTest, FourCycleMatchesCentralized) {
  Schema schema;
  const ConjunctiveQuery q =
      ParseQuery(schema, "H(x,y,z,w) <- R(x,y), S(y,z), T(z,w), U(w,x)");
  const Instance db = RandomRelations(schema, q, 250, 25, 2);
  const MpcRunResult result = GymEvaluate(schema, q, db, 8, 5);
  EXPECT_EQ(result.output, Evaluate(q, db));
}

TEST_F(GymTest, AcyclicChainMatchesCentralized) {
  Schema schema;
  const ConjunctiveQuery q =
      ParseQuery(schema, "H(x,y,z,w) <- R(x,y), S(y,z), T(z,w)");
  const Instance db = RandomRelations(schema, q, 300, 40, 3);
  const MpcRunResult result = GymEvaluate(schema, q, db, 6, 7);
  EXPECT_EQ(result.output, Evaluate(q, db));
}

TEST_F(GymTest, TriangleWithPendantEdge) {
  // Cyclic core + acyclic appendix: two bags, both phases exercised.
  Schema schema;
  const ConjunctiveQuery q = ParseQuery(
      schema, "H(x,y,z,w) <- R(x,y), S(y,z), T(z,x), U(z,w)");
  const Instance db = RandomRelations(schema, q, 200, 25, 4);
  const TreeDecomposition td = BuildTreeDecomposition(q);
  EXPECT_TRUE(IsValidDecomposition(q, td));
  EXPECT_GE(td.bags.size(), 2u);
  const MpcRunResult result = GymEvaluate(schema, q, td, db, 8, 9);
  EXPECT_EQ(result.output, Evaluate(q, db));
}

TEST_F(GymTest, InequalitiesRespected) {
  Schema schema;
  const ConjunctiveQuery q = ParseQuery(
      schema, "H(x,y,z) <- R(x,y), S(y,z), T(z,x), x != z");
  const Instance db = RandomRelations(schema, q, 150, 15, 5);
  const MpcRunResult result = GymEvaluate(schema, q, db, 8, 11);
  EXPECT_EQ(result.output, Evaluate(q, db));
}

TEST_F(GymTest, ProjectionOntoHead) {
  Schema schema;
  const ConjunctiveQuery q =
      ParseQuery(schema, "H(x) <- R(x,y), S(y,z), T(z,x)");
  const Instance db = RandomRelations(schema, q, 200, 25, 6);
  const MpcRunResult result = GymEvaluate(schema, q, db, 8, 13);
  EXPECT_EQ(result.output, Evaluate(q, db));
}

TEST_F(GymTest, DanglingHeavyIntermediatesArePruned) {
  // GYM's point (Section 3.2): the semijoin phase over the bag tree keeps
  // intermediates bounded even when a plain cascade would blow up. Bags:
  // triangle {x,y,z} and pendant {z,w}; the pendant relation U joins
  // nothing, so the final output is empty and the bag-tree reduction
  // wipes the triangle bag before the join cascade.
  Schema schema;
  const ConjunctiveQuery q = ParseQuery(
      schema, "H(x,y,z,w) <- R(x,y), S(y,z), T(z,x), U(z,w)");
  Instance db;
  // A dense triangle core on values 0..9 (many triangles)...
  for (std::int64_t a = 0; a < 10; ++a) {
    for (std::int64_t b = 0; b < 10; ++b) {
      db.Insert(Fact(schema.IdOf("R"), {a, b}));
      db.Insert(Fact(schema.IdOf("S"), {a, b}));
      db.Insert(Fact(schema.IdOf("T"), {a, b}));
    }
  }
  // ...but U lives on disjoint values: the full join is empty.
  for (std::int64_t i = 0; i < 10; ++i) {
    db.Insert(Fact(schema.IdOf("U"), {100 + i, 200 + i}));
  }
  const MpcRunResult result = GymEvaluate(schema, q, db, 4, 15);
  EXPECT_TRUE(result.output.Empty());
}

}  // namespace
}  // namespace lamp
