// Experiments T1/T2 (Theorems 4.8 and 4.14): the deciders' cost grows with
// the quantifier structure the paper assigns them.
//
//   * parallel-correctness (Pi^p_2): the exact decider enumerates
//     |U|^{vars} outer valuations, each with an inner minimality search —
//     the measured curve is exponential in the variable count and
//     polynomial-ish in |U| for fixed vars;
//   * transfer (Pi^p_3): one more alternation — the same query sizes cost
//     markedly more than PC.
//
// Wall-clock complexity curves are exactly what google-benchmark is for;
// the printed table gives the decider answers on the scaled family so the
// timing rows are attached to verified outputs.

#include <cstdint>
#include <cstdio>
#include <iterator>
#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include "cq/minimal.h"
#include "cq/parser.h"
#include "distribution/parallel_correctness.h"
#include "distribution/policies.h"
#include "distribution/transfer.h"
#include "obs/bench_report.h"
#include "par/thread_pool.h"

namespace {

using namespace lamp;

/// Path query with k atoms: H(x0,xk) <- R0(x0,x1), ..., R{k-1}(x{k-1},xk).
std::string PathQueryText(std::size_t k) {
  std::string text;
  text.reserve(32 * (k + 1));
  text += "H(x0,x";
  text += std::to_string(k);
  text += ") <- ";
  for (std::size_t i = 0; i < k; ++i) {
    if (i > 0) text += ", ";
    text += "R";
    text += std::to_string(i);
    text += "(x";
    text += std::to_string(i);
    text += ",x";
    text += std::to_string(i + 1);
    text += ")";
  }
  return text;
}

LambdaPolicy EvenOddPolicy(std::size_t universe_size) {
  return LambdaPolicy(2, MakeUniverse(universe_size),
                      [](NodeId node, const Fact& f) {
                        // Node 0: facts whose argument sum is even; node 1
                        // everything (so PC holds and the decider must
                        // walk the whole space).
                        if (node == 1) return true;
                        std::int64_t sum = 0;
                        for (Value v : f.args) sum += v.v;
                        return sum % 2 == 0;
                      });
}

void PrintTable() {
  std::printf(
      "# T1/T2: decider outputs on the scaled family (timings below)\n"
      "# columns: atoms  vars  |U|  parallel-correct  transfers-to-self\n");
  obs::BenchReporter reporter("pc_complexity");
  const std::size_t ks[] = {1, 2, 3};
  // One PC verdict per family member, decided as a single sweep fanned
  // across the pool (verdicts identical at every thread count).
  std::vector<Schema> schemas(std::size(ks));
  std::vector<ConjunctiveQuery> queries;
  std::vector<LambdaPolicy> policies;
  for (std::size_t i = 0; i < std::size(ks); ++i) {
    queries.push_back(ParseQuery(schemas[i], PathQueryText(ks[i])));
    policies.push_back(EvenOddPolicy(3));
  }
  std::vector<PcCheck> checks;
  for (std::size_t i = 0; i < std::size(ks); ++i) {
    checks.push_back(PcCheck{&queries[i], &policies[i]});
  }
  obs::WallTimer sweep_timer;
  const std::vector<std::uint8_t> verdicts = ParallelCorrectnessSweep(checks);
  const double sweep_ms = sweep_timer.ElapsedMs();
  for (std::size_t i = 0; i < std::size(ks); ++i) {
    const std::size_t k = ks[i];
    const bool pc = verdicts[i] != 0;
    obs::WallTimer timer;
    const bool transfers =
        ParallelCorrectnessTransfersTo(queries[i], queries[i]);
    const double transfer_ms = timer.ElapsedMs();
    std::printf("%6zu %5zu %4d %17s %18s\n", k, k + 1, 3,
                pc ? "yes" : "no", transfers ? "yes" : "no");
    reporter.NewRecord()
        .Param("atoms", k)
        .Param("vars", k + 1)
        .Param("universe", std::size_t{3})
        .Metric("parallel_correct", pc)
        .Metric("transfers_to_self", transfers)
        .Metric("pc_sweep_ms", sweep_ms)
        .Metric("transfer_decider_ms", transfer_ms)
        .WallMs(sweep_ms + transfer_ms);
  }
  std::printf("\n");
}

void BM_ParallelCorrectness_Vars(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  Schema schema;
  const ConjunctiveQuery q = ParseQuery(schema, PathQueryText(k));
  const LambdaPolicy policy = EvenOddPolicy(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(IsParallelCorrect(q, policy));
  }
  state.SetComplexityN(static_cast<std::int64_t>(k));
}
BENCHMARK(BM_ParallelCorrectness_Vars)->DenseRange(1, 4)->Complexity();

void BM_ParallelCorrectness_Universe(benchmark::State& state) {
  Schema schema;
  const ConjunctiveQuery q = ParseQuery(schema, PathQueryText(2));
  const LambdaPolicy policy =
      EvenOddPolicy(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(IsParallelCorrect(q, policy));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ParallelCorrectness_Universe)
    ->RangeMultiplier(2)
    ->Range(2, 16)
    ->Complexity();

void BM_Transfer_Vars(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  Schema schema;
  const ConjunctiveQuery q = ParseQuery(schema, PathQueryText(k));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ParallelCorrectnessTransfersTo(q, q));
  }
  state.SetComplexityN(static_cast<std::int64_t>(k));
}
BENCHMARK(BM_Transfer_Vars)->DenseRange(1, 3)->Complexity();

void BM_MinimalValuationCheck(benchmark::State& state) {
  Schema schema;
  const ConjunctiveQuery q = ParseQuery(
      schema, "H(x,z) <- R0(x,y), R0(y,z), R0(x,x)");
  Valuation v(q.NumVars());
  v.Bind(q.FindVar("x"), Value(1));
  v.Bind(q.FindVar("y"), Value(2));
  v.Bind(q.FindVar("z"), Value(1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(IsMinimalValuation(q, v));
  }
}
BENCHMARK(BM_MinimalValuationCheck);

}  // namespace

int main(int argc, char** argv) {
  lamp::par::ConfigureFromCommandLine(&argc, argv);
  lamp::obs::ConfigureRepeatsFromCommandLine(&argc, argv);
  lamp::obs::RunRepeated([] { PrintTable(); });
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
