// Experiment C1 (Theorem 5.3, the CALM theorem): monotone queries converge
// to the correct answer on every schedule without coordination; the
// non-monotone open-triangle query does not under the naive strategy.
//
// The table sweeps scheduler seeds and distributions, counting correct
// runs and the coordination-freeness probe outcome for both queries —
// the measured version of F0 = A0 = M.

#include <cstdio>

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "cq/eval.h"
#include "cq/parser.h"
#include "net/consistency.h"
#include "net/programs.h"
#include "obs/bench_report.h"
#include "par/thread_pool.h"
#include "relational/generators.h"

namespace {

using namespace lamp;

struct World {
  Schema schema;
  RelationId e;
  ConjunctiveQuery triangle;
  ConjunctiveQuery open_triangle;
  Instance graph;

  World() {
    e = schema.AddRelation("E", 2);
    triangle = ParseQuery(
        schema, "H(x,y,z) <- E(x,y), E(y,z), E(z,x), x != y, y != z, x != z");
    open_triangle =
        ParseQuery(schema, "H(x,y,z) <- E(x,y), E(y,z), !E(z,x)");
    Rng rng(21);
    AddRandomGraph(schema, e, 80, 18, rng, graph);
    AddTriangleClusters(schema, e, 3, 200, graph);
  }
};

void PrintTable() {
  World w;
  auto wrap = [](const ConjunctiveQuery& q) -> NetQueryFunction {
    return [&q](const Instance& i) { return Evaluate(q, i); };
  };

  obs::BenchReporter reporter("calm_convergence");
  std::printf(
      "# C1: CALM theorem — consistency of the naive broadcast strategy\n"
      "# columns: query  nodes  runs  correct-runs  coordination-free\n");
  for (std::size_t n : {2, 4, 8}) {
    for (const bool monotone_query : {true, false}) {
      obs::WallTimer timer;
      const ConjunctiveQuery& q =
          monotone_query ? w.triangle : w.open_triangle;
      const Instance expected = Evaluate(q, w.graph);
      MonotoneBroadcastProgram program(wrap(q));
      std::vector<std::vector<Instance>> distributions = {
          DistributeRoundRobin(w.graph, n),
          DistributeReplicated(w.graph, n)};
      std::size_t correct = 0;
      std::size_t runs = 0;
      obs::MetricsRegistry registry;
      for (const auto& locals : distributions) {
        for (std::uint64_t seed = 0; seed < 10; ++seed) {
          TransducerNetwork net(locals, program, nullptr, false);
          ++runs;
          const NetworkRunResult result = net.Run(seed);
          if (result.output == expected) ++correct;
          registry.GetCounter(obs::kNetMessagesSent)
              .Add(result.messages_sent());
          registry.GetCounter(obs::kNetFactsTransferred)
              .Add(result.facts_transferred());
          registry.GetCounter(obs::kNetTransitions).Add(result.transitions());
          registry.GetHistogram("net.run.transitions")
              .Observe(static_cast<double>(result.transitions()));
        }
      }
      // Coordination-freeness presupposes the program computes the query
      // (all runs correct); otherwise the probe is vacuous.
      const bool cf = correct == runs &&
                      ComputesWithoutCommunication(
                          program, DistributeReplicated(w.graph, n),
                          expected, nullptr, false);
      std::printf("%-14s %5zu %5zu %13zu %18s\n",
                  monotone_query ? "triangle(M)" : "open-tri(!M)", n, runs,
                  correct,
                  correct == runs ? (cf ? "yes" : "no")
                                  : "n/a (not consistent)");
      reporter.NewRecord()
          .Param("query", monotone_query ? "triangle" : "open-triangle")
          .Param("monotone", monotone_query)
          .Param("nodes", n)
          .Param("runs", runs)
          .Metrics(registry)
          .Metric("correct_runs", correct)
          .Metric("coordination_free", correct == runs && cf)
          .WallMs(timer.ElapsedMs());
    }
  }
  std::printf(
      "# shape check: the monotone query is correct in every run and "
      "coordination-free; the non-monotone one fails on round-robin "
      "distributions, so the CALM theorem places it outside F0.\n\n");
}

void BM_BroadcastRunTriangle(benchmark::State& state) {
  World w;
  NetQueryFunction q = [&w](const Instance& i) {
    return Evaluate(w.triangle, i);
  };
  MonotoneBroadcastProgram program(q);
  const auto locals =
      DistributeRoundRobin(w.graph, static_cast<std::size_t>(state.range(0)));
  std::uint64_t seed = 0;
  for (auto _ : state) {
    TransducerNetwork net(locals, program, nullptr, false);
    benchmark::DoNotOptimize(net.Run(seed++));
  }
}
BENCHMARK(BM_BroadcastRunTriangle)->Arg(2)->Arg(4)->Arg(8);

}  // namespace

int main(int argc, char** argv) {
  lamp::par::ConfigureFromCommandLine(&argc, argv);
  lamp::obs::ConfigureRepeatsFromCommandLine(&argc, argv);
  lamp::obs::RunRepeated([] { PrintTable(); });
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
