// Experiment C3 (Section 6, Ketsman-Neven): economical broadcasting for
// full CQs without self-joins — only transmit the part of the local data
// that can participate in the query.
//
// The table measures facts transferred by the naive full broadcast versus
// the relevance-filtered broadcast, as the fraction of query-irrelevant
// data grows. Both must compute the same answer.

#include <cstdio>

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "cq/eval.h"
#include "cq/parser.h"
#include "net/consistency.h"
#include "net/network.h"
#include "net/programs.h"
#include "obs/bench_report.h"
#include "par/thread_pool.h"
#include "relational/generators.h"

namespace {

using namespace lamp;

struct Setup {
  Schema schema;
  ConjunctiveQuery query;
  RelationId r, s, noise;

  Setup() {
    // Full CQ without self-joins; R(x,x) makes off-diagonal R-facts
    // irrelevant, and the `Noise` relation does not occur in the query.
    query = ParseQuery(schema, "H(x,y) <- R(x,x), S(x,y)");
    r = schema.IdOf("R");
    s = schema.IdOf("S");
    noise = schema.AddRelation("Noise", 2);
  }

  Instance MakeInput(std::size_t relevant, std::size_t irrelevant,
                     std::uint64_t seed) {
    Rng rng(seed);
    Instance db;
    for (std::size_t i = 0; i < relevant; ++i) {
      const auto v = static_cast<std::int64_t>(i);
      db.Insert(Fact(r, {v, v}));
      db.Insert(Fact(s, {v, v + 1}));
    }
    for (std::size_t i = 0; i < irrelevant; ++i) {
      const auto v = static_cast<std::int64_t>(i);
      db.Insert(Fact(r, {v, v + 1}));  // Never matches R(x,x).
      AddUniformRelation(schema, noise, 1, 4 * (irrelevant + 4), rng, db);
    }
    return db;
  }
};

void PrintTable() {
  Setup setup;
  obs::BenchReporter reporter("broadcast_economy");
  std::printf(
      "# C3: economical broadcasting (Ketsman-Neven)\n"
      "# columns: irrelevant-fraction  naive-facts  economical-facts  "
      "saving  same-answer\n");
  const std::size_t relevant = 200;
  for (std::size_t irrelevant : {0u, 200u, 600u, 1800u}) {
    obs::WallTimer timer;
    Instance db = setup.MakeInput(relevant, irrelevant, 3);
    const Instance expected = Evaluate(setup.query, db);
    const auto locals = DistributeRoundRobin(db, 4);

    NetQueryFunction q = [&setup](const Instance& i) {
      return Evaluate(setup.query, i);
    };
    MonotoneBroadcastProgram naive(q);
    EconomicalBroadcastProgram economical(setup.query);

    TransducerNetwork naive_net(locals, naive, nullptr, false);
    TransducerNetwork econ_net(locals, economical, nullptr, false);
    const NetworkRunResult naive_run = naive_net.Run(1);
    const NetworkRunResult econ_run = econ_net.Run(1);

    const double frac =
        static_cast<double>(2 * irrelevant) /
        static_cast<double>(2 * relevant + 2 * irrelevant);
    std::printf("%18.2f %12zu %17zu %7.1f%% %12s\n", frac,
                naive_run.facts_transferred(), econ_run.facts_transferred(),
                100.0 * (1.0 - static_cast<double>(
                                   econ_run.facts_transferred()) /
                                   static_cast<double>(std::max<std::size_t>(
                                       1, naive_run.facts_transferred()))),
                (naive_run.output == expected &&
                 econ_run.output == expected)
                    ? "yes"
                    : "NO");
    reporter.NewRecord()
        .Param("relevant", relevant)
        .Param("irrelevant", irrelevant)
        .Param("nodes", std::size_t{4})
        .Param("irrelevant_fraction", frac)
        .Metric("naive.net.facts_transferred", naive_run.facts_transferred())
        .Metric("economical.net.facts_transferred",
                econ_run.facts_transferred())
        .Metric("naive.net.messages_sent", naive_run.messages_sent())
        .Metric("economical.net.messages_sent", econ_run.messages_sent())
        .Metric("same_answer", naive_run.output == expected &&
                                   econ_run.output == expected)
        .WallMs(timer.ElapsedMs());
  }
  std::printf(
      "# shape check: saving grows with the irrelevant fraction; answers "
      "always identical.\n\n");
}

void BM_NaiveBroadcast(benchmark::State& state) {
  Setup setup;
  Instance db = setup.MakeInput(200, static_cast<std::size_t>(state.range(0)),
                                3);
  NetQueryFunction q = [&setup](const Instance& i) {
    return Evaluate(setup.query, i);
  };
  MonotoneBroadcastProgram program(q);
  const auto locals = DistributeRoundRobin(db, 4);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    TransducerNetwork net(locals, program, nullptr, false);
    benchmark::DoNotOptimize(net.Run(seed++));
  }
}
BENCHMARK(BM_NaiveBroadcast)->Arg(200)->Arg(800);

void BM_EconomicalBroadcast(benchmark::State& state) {
  Setup setup;
  Instance db = setup.MakeInput(200, static_cast<std::size_t>(state.range(0)),
                                3);
  EconomicalBroadcastProgram program(setup.query);
  const auto locals = DistributeRoundRobin(db, 4);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    TransducerNetwork net(locals, program, nullptr, false);
    benchmark::DoNotOptimize(net.Run(seed++));
  }
}
BENCHMARK(BM_EconomicalBroadcast)->Arg(200)->Arg(800);

}  // namespace

int main(int argc, char** argv) {
  lamp::par::ConfigureFromCommandLine(&argc, argv);
  lamp::obs::ConfigureRepeatsFromCommandLine(&argc, argv);
  lamp::obs::RunRepeated([] { PrintTable(); });
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
