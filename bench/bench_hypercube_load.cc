// Experiment E3 (Section 3.1, Beame-Koutris-Suciu): HyperCube maximum load
// is Theta(m / p^{1/tau*}) on skew-free data, where tau* is the optimal
// fractional edge packing of the query hypergraph.
//
// For each query in a structurally diverse family, the table reports the
// measured max load for growing p next to the prediction computed from
// our own LP solver — the "who wins, by what factor" check is the ratio
// column staying O(1) as p grows.

#include <cmath>
#include <cstdio>
#include <string>

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "cq/parser.h"
#include "lp/edge_packing.h"
#include "mpc/hypercube_run.h"
#include "obs/audit/audit.h"
#include "obs/audit/bounds.h"
#include "obs/audit/catalog.h"
#include "obs/bench_report.h"
#include "par/thread_pool.h"
#include "obs/trace.h"
#include "relational/generators.h"
#include "sa/plan/agreement.h"
#include "sa/plan/plan.h"
#include "transport/transport.h"

namespace {

using namespace lamp;

struct QuerySpec {
  const char* name;
  const char* text;
};

constexpr QuerySpec kQueries[] = {
    {"join", "H(x,y,z) <- R0(x,y), R1(y,z)"},
    {"triangle", "H(x,y,z) <- R0(x,y), R1(y,z), R2(z,x)"},
    {"path3", "H(x,y,z,w) <- R0(x,y), R1(y,z), R2(z,w)"},
    {"star3", "H(x,a,b,c) <- R0(x,a), R1(x,b), R2(x,c)"},
    {"cycle4", "H(x,y,z,w) <- R0(x,y), R1(y,z), R2(z,w), R3(w,x)"},
};

Instance MatchingInput(Schema& schema, const ConjunctiveQuery& q,
                       std::size_t m) {
  Rng rng(11);
  Instance db;
  std::int64_t base = 0;
  for (const Atom& atom : q.body()) {
    // Matching relations: the BKS skew-free model (every value at most
    // once per column). Columns use disjoint ranges per relation, shifted
    // so join columns overlap probabilistically... For load measurements
    // the join result is irrelevant; only the routing balance matters.
    AddMatchingRelation(schema, atom.relation, m, base, rng, db);
    base += static_cast<std::int64_t>(2 * m);
  }
  return db;
}

void PrintTable() {
  const std::size_t m = 20000;
  obs::BenchReporter reporter("hypercube_load");
  const std::string transport_name(
      transport::TransportKindName(transport::ActiveKind()));
  std::printf(
      "# E3: HyperCube load vs p on skew-free (matching) data, m=%zu, "
      "transport=%s\n"
      "# columns: query  tau*  p  shares  max-load  k*m/p^(1/tau*)  "
      "ratio\n",
      m, transport_name.c_str());
  for (const QuerySpec& spec : kQueries) {
    Schema schema;
    const ConjunctiveQuery q = ParseQuery(schema, spec.text);
    const double tau = FractionalEdgePackingValue(q);
    Instance db = MatchingInput(schema, q, m);
    const obs::audit::Catalog catalog = obs::audit::BuildCatalog(schema, db);
    const double k = static_cast<double>(q.body().size());
    for (std::size_t p : {16, 64, 256}) {
      obs::WallTimer timer;
      const Shares shares = LpRoundedShares(q, p);
      const MpcRunResult run = RunHyperCube(q, db, shares);
      std::size_t actual_p = 1;
      for (std::size_t s : shares) actual_p *= s;
      const double predicted =
          k * static_cast<double>(m) /
          std::pow(static_cast<double>(actual_p), 1.0 / tau);
      std::printf("%-9s %5.2f %6zu %8zu %10zu %14.0f %8.2f\n", spec.name,
                  tau, p, actual_p, run.stats.MaxLoad(), predicted,
                  static_cast<double>(run.stats.MaxLoad()) / predicted);
      // The static planner scores the race's own grid (share_candidates)
      // so its hypercube prediction and the measurement are at the same
      // shares; the agreement record keeps the cost model honest even on
      // this single-strategy race (the binary strategies are infeasible
      // for every query here except "join", where repartition ties the
      // (1,1,p) grid by construction).
      sa::plan::PlanOptions plan_options;
      plan_options.p = actual_p;
      plan_options.share_candidates = {shares};
      const sa::plan::PlanCertificate cert =
          sa::plan::PlanQuery(q, schema, catalog, plan_options);
      const sa::plan::StrategyPrediction* pick = cert.Winner();
      const std::string pick_name(obs::audit::StrategyName(
          pick != nullptr ? pick->strategy : obs::audit::Strategy::kNone));
      obs::MetricsRegistry registry;
      run.stats.ToMetrics(registry);
      reporter.NewRecord()
          .Param("query", spec.name)
          .Param("tau_star", tau)
          .Param("p", p)
          .Param("actual_p", actual_p)
          .Param("m", m)
          .Param("transport", transport_name)
          .Metrics(registry)
          .Metric("predicted_max_load", predicted)
          .Metric("planner.pick", pick_name)
          .Metric("planner.predicted_max_load",
                  pick != nullptr ? pick->predicted_max_load : 0.0)
          .WallNs(timer.ElapsedNs());
      // Audit against the exact expected load of the shares actually
      // used (not the asymptotic tau* prediction in the table): matching
      // data is skew-free, so the measured max must concentrate there.
      obs::audit::AuditRecord audit = obs::audit::MakeAuditRecord(
          "hypercube_load", spec.name, obs::audit::Strategy::kHyperCube,
          actual_p, obs::audit::HyperCubeBound(q, schema, catalog, shares),
          run.stats);
      audit.params.Set("m", m);
      audit.params.Set("tau_star", tau);
      audit.params.Set("transport", transport_name);
      const sa::plan::StrategyPrediction* hc =
          cert.Find(obs::audit::Strategy::kHyperCube);
      if (hc != nullptr && hc->feasible) {
        audit.predicted_max_load = hc->predicted_max_load;
        audit.predicted_wire_bytes = hc->predicted_wire_bytes;
      }
      audit.planned_strategy = pick_name;
      obs::audit::GlobalAuditSink().Add(std::move(audit));
      sa::plan::GlobalPlanSink().Add(sa::plan::MakeAgreementRecord(
          "hypercube_load",
          std::string(spec.name) + "/p=" + std::to_string(actual_p), cert,
          {{obs::audit::Strategy::kHyperCube,
            static_cast<double>(run.stats.MaxLoad())}}));
    }
  }
  std::printf(
      "# shape check: the ratio column is O(1) (routing/rounding constants),"
      " flat in p for each query.\n\n");
}

void BM_HyperCubeTriangle(benchmark::State& state) {
  Schema schema;
  const ConjunctiveQuery q =
      ParseQuery(schema, "H(x,y,z) <- R0(x,y), R1(y,z), R2(z,x)");
  Instance db = MatchingInput(schema, q, static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunHyperCubeUniform(q, db, 64));
  }
}
BENCHMARK(BM_HyperCubeTriangle)->Arg(5000)->Arg(20000);

// Null-sink overhead check: the same instrumented RunRound path, with and
// without a tracer installed. The no-sink run must be within noise of the
// pre-instrumentation baseline (one pointer load + branch per phase).
void BM_HyperCubeTriangleTraced(benchmark::State& state) {
  Schema schema;
  const ConjunctiveQuery q =
      ParseQuery(schema, "H(x,y,z) <- R0(x,y), R1(y,z), R2(z,x)");
  Instance db = MatchingInput(schema, q, static_cast<std::size_t>(state.range(0)));
  obs::Tracer tracer;
  obs::ScopedTracer install(tracer);
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunHyperCubeUniform(q, db, 64));
  }
}
BENCHMARK(BM_HyperCubeTriangleTraced)->Arg(5000)->Arg(20000);

void BM_ShareOptimizationLp(benchmark::State& state) {
  Schema schema;
  const ConjunctiveQuery q = ParseQuery(
      schema, "H(x,y,z,w) <- R0(x,y), R1(y,z), R2(z,w), R3(w,x)");
  for (auto _ : state) {
    benchmark::DoNotOptimize(OptimalShareExponents(q));
  }
}
BENCHMARK(BM_ShareOptimizationLp);

}  // namespace

int main(int argc, char** argv) {
  lamp::par::ConfigureFromCommandLine(&argc, argv);
  lamp::transport::ConfigureFromCommandLine(&argc, argv);
  lamp::obs::ConfigureRepeatsFromCommandLine(&argc, argv);
  lamp::obs::RunRepeated([] { PrintTable(); });
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  lamp::sa::plan::FinalizeGlobalPlan();
  return lamp::obs::audit::FinalizeGlobalAudit();
}
