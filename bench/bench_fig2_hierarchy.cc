// Experiment C2 (Figure 2 + Theorems 5.3/5.8/5.12): the monotonicity
// hierarchy M < Mdistinct < Mdisjoint and the matching coordination-free
// strategies.
//
// Part 1 regenerates the strict inclusions with the classifier on the
// paper's witness queries:
//          triangle  open-triangle  not-TC  no-triangle
//   M         yes        no            no       no
//   Mdistinct yes        yes           no       no
//   Mdisjoint yes        yes           yes      no
//
// Part 2 runs each query's strategy tier (broadcast / policy-aware /
// per-component) and reports consistency — the operational side of
// F0=A0=M, F1=A1=Mdistinct, F2=A2=Mdisjoint.

#include <cstdio>

#include <benchmark/benchmark.h>

#include "cq/eval.h"
#include "cq/parser.h"
#include "datalog/eval.h"
#include "datalog/monotone.h"
#include "datalog/program.h"
#include "distribution/domain_guided.h"
#include "distribution/policies.h"
#include "net/consistency.h"
#include "net/programs.h"
#include "obs/bench_report.h"
#include "par/thread_pool.h"
#include "relational/generators.h"

namespace {

using namespace lamp;

/// The four witness queries as black boxes over schema {E/2}.
struct Witnesses {
  Schema schema;
  RelationId e;
  ConjunctiveQuery triangle;
  ConjunctiveQuery open_triangle;
  ConjunctiveQuery strict_triangle;
  Schema dl_schema;
  DatalogProgram not_tc_prog;
  RelationId dl_out;

  QueryFunction q_triangle;
  QueryFunction q_open;
  QueryFunction q_not_tc;
  QueryFunction q_no_triangle;

  Witnesses() {
    e = schema.AddRelation("E", 2);
    triangle = ParseQuery(schema, "H(x,y,z) <- E(x,y), E(y,z), E(z,x)");
    open_triangle =
        ParseQuery(schema, "H(x,y,z) <- E(x,y), E(y,z), !E(z,x)");
    strict_triangle = ParseQuery(
        schema, "H(x,y,z) <- E(x,y), E(y,z), E(z,x), x != y, y != z, x != z");
    not_tc_prog =
        ParseProgram(dl_schema,
                     "TC(x,y) <- E(x,y)\n"
                     "TC(x,y) <- TC(x,z), TC(z,y)\n"
                     "OUT(x,y) <- ADom(x), ADom(y), !TC(x,y)");
    dl_out = dl_schema.IdOf("OUT");

    q_triangle = [this](const Instance& i) { return Evaluate(triangle, i); };
    q_open = [this](const Instance& i) { return Evaluate(open_triangle, i); };
    q_not_tc = [this](const Instance& i) {
      const Instance everything = EvaluateProgram(dl_schema, not_tc_prog, i);
      Instance out;
      for (const Fact& f : everything.FactsOf(dl_out)) out.Insert(f);
      return out;
    };
    q_no_triangle = [this](const Instance& i) {
      Instance out;
      if (Evaluate(strict_triangle, i).Empty()) {
        for (const Fact& f : i.FactsOf(e)) out.Insert(f);
      }
      return out;
    };
  }
};

const char* InClass(const Schema& schema, RelationId e,
                    const QueryFunction& q, MonotonicityKind kind,
                    std::size_t domain, std::size_t extra,
                    std::size_t max_facts) {
  return FindMonotonicityViolation(schema, {e}, q, kind, domain, extra,
                                   max_facts)
                 .has_value()
             ? " no"
             : "yes";
}

void PrintHierarchyTable() {
  Witnesses w;
  std::printf(
      "# C2 part 1: monotonicity classifier on the witness queries "
      "(Figure 2's strict inclusions)\n"
      "# columns: query  M  Mdistinct  Mdisjoint\n");

  struct Row {
    const char* name;
    const QueryFunction* q;
    const Schema* schema;
    RelationId e;
    std::size_t dom, extra, max;
  };
  const Row rows[] = {
      {"triangle", &w.q_triangle, &w.schema, w.e, 2, 1, 3},
      {"open-triangle", &w.q_open, &w.schema, w.e, 2, 2, 3},
      {"not-TC", &w.q_not_tc, &w.dl_schema, w.dl_schema.IdOf("E"), 2, 1, 2},
      {"no-triangle", &w.q_no_triangle, &w.schema, w.e, 1, 3, 3},
  };
  obs::BenchReporter reporter("fig2_hierarchy");
  for (const Row& row : rows) {
    obs::WallTimer timer;
    const char* plain =
        InClass(*row.schema, row.e, *row.q, MonotonicityKind::kPlain,
                row.dom, row.extra, row.max);
    const char* distinct =
        InClass(*row.schema, row.e, *row.q, MonotonicityKind::kDomainDistinct,
                row.dom, row.extra, row.max);
    const char* disjoint =
        InClass(*row.schema, row.e, *row.q, MonotonicityKind::kDomainDisjoint,
                row.dom, row.extra, row.max);
    std::printf("%-14s %3s %9s %10s\n", row.name, plain, distinct, disjoint);
    reporter.NewRecord()
        .Param("part", "hierarchy")
        .Param("query", row.name)
        .Metric("in_M", std::string_view(plain) == "yes")
        .Metric("in_M_distinct", std::string_view(distinct) == "yes")
        .Metric("in_M_disjoint", std::string_view(disjoint) == "yes")
        .WallMs(timer.ElapsedMs());
  }
  std::printf(
      "# expected: yes/yes/yes; no/yes/yes; no/no/yes; no/no/no — the "
      "three strict inclusions M < Mdistinct < Mdisjoint.\n\n");
}

void PrintStrategyTable() {
  Witnesses w;
  Rng rng(31);
  Instance graph;
  AddRandomGraph(w.schema, w.e, 40, 10, rng, graph);
  AddTriangleClusters(w.schema, w.e, 2, 100, graph);

  const DomainGuidedPolicy policy =
      DomainGuidedPolicy::HashBased(4, MakeUniverse(1), 13);
  const std::vector<std::vector<Instance>> dist = {
      DistributeByPolicy(graph, policy)};

  std::printf(
      "# C2 part 2: strategy tiers (operational F0/F1/F2)\n"
      "# columns: query  strategy  runs  all-consistent\n");
  obs::BenchReporter reporter("fig2_hierarchy");
  auto report = [&reporter](const char* query, const char* strategy,
                            const ConsistencySweep& sweep, double wall_ms) {
    reporter.NewRecord()
        .Param("part", "strategy")
        .Param("query", query)
        .Param("strategy", strategy)
        .Param("runs", sweep.runs)
        .Metric("all_runs_correct", sweep.all_runs_correct)
        .Metric("net.facts_transferred", sweep.total_facts_transferred)
        .WallMs(wall_ms);
  };

  {
    obs::WallTimer timer;
    NetQueryFunction q = [&w](const Instance& i) {
      return Evaluate(w.triangle, i);
    };
    MonotoneBroadcastProgram program(q);
    const auto sweep = CheckEventualConsistency(
        program, dist, Evaluate(w.triangle, graph), 8, nullptr, false);
    std::printf("%-14s %-14s %4zu %8s\n", "triangle", "broadcast",
                sweep.runs, sweep.all_runs_correct ? "yes" : "NO");
    report("triangle", "broadcast", sweep, timer.ElapsedMs());
  }
  {
    obs::WallTimer timer;
    PolicyAwareNegationProgram program(w.open_triangle);
    const auto sweep = CheckEventualConsistency(
        program, dist, Evaluate(w.open_triangle, graph), 8, &policy, false);
    std::printf("%-14s %-14s %4zu %8s\n", "open-triangle", "policy-aware",
                sweep.runs, sweep.all_runs_correct ? "yes" : "NO");
    report("open-triangle", "policy-aware", sweep, timer.ElapsedMs());
  }
  {
    obs::WallTimer timer;
    // not-TC on a multi-component instance, per-component strategy.
    Instance edb;
    const RelationId e = w.dl_schema.IdOf("E");
    edb.Insert(Fact(e, {0, 1}));
    edb.Insert(Fact(e, {1, 2}));
    edb.Insert(Fact(e, {10, 11}));
    const DomainGuidedPolicy dl_policy =
        DomainGuidedPolicy::HashBased(3, MakeUniverse(1), 17);
    NetQueryFunction q = w.q_not_tc;
    ComponentProgram program(q, w.dl_schema);
    const auto sweep = CheckEventualConsistency(
        program, {DistributeByPolicy(edb, dl_policy)}, w.q_not_tc(edb), 8,
        &dl_policy, false);
    std::printf("%-14s %-14s %4zu %8s\n", "not-TC", "per-component",
                sweep.runs, sweep.all_runs_correct ? "yes" : "NO");
    report("not-TC", "per-component", sweep, timer.ElapsedMs());
  }
  std::printf("\n");
}

void BM_MonotonicityClassifier(benchmark::State& state) {
  Witnesses w;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        FindMonotonicityViolation(w.schema, {w.e}, w.q_open,
                                  MonotonicityKind::kPlain, 2, 1, 3));
  }
}
BENCHMARK(BM_MonotonicityClassifier);

}  // namespace

int main(int argc, char** argv) {
  lamp::par::ConfigureFromCommandLine(&argc, argv);
  lamp::obs::ConfigureRepeatsFromCommandLine(&argc, argv);
  lamp::obs::RunRepeated([] {
    PrintHierarchyTable();
    PrintStrategyTable();
  });
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
