// Ablation (DESIGN.md): evaluation-strategy trade-offs the paper's
// Section 3.2 discusses — rounds vs communication vs robustness to bad
// intermediate results.
//
//   * one-round HyperCube: minimal rounds, replication cost, great for
//     cyclic queries with large output;
//   * plain cascade: no replication but intermediate results can explode;
//   * Yannakakis (acyclic) / GYM (cyclic): more rounds, semijoin phase
//     keeps intermediates bounded by the reduced data.
//
// The workload is the "dangling data" shape where the cascade explodes: a
// chain whose middle join is a cartesian blow-up that the final atom then
// annihilates.

#include <cstdio>

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "cq/eval.h"
#include "cq/parser.h"
#include "mpc/cascade.h"
#include "mpc/gym.h"
#include "mpc/hypercube_run.h"
#include "mpc/yannakakis.h"
#include "obs/audit/audit.h"
#include "obs/audit/bounds.h"
#include "obs/audit/catalog.h"
#include "obs/bench_report.h"
#include "par/thread_pool.h"
#include "relational/generators.h"

namespace {

using namespace lamp;

/// Chain R1(x,y), R2(y,z), R3(z,w) where R1 |x| R2 has `blowup`^2 tuples
/// but nothing joins R3: output empty.
Instance DanglingChain(Schema& schema, std::size_t blowup) {
  Instance db;
  for (std::size_t i = 0; i < blowup; ++i) {
    db.Insert(
        Fact(schema.IdOf("R1"), {static_cast<std::int64_t>(i), 0}));
    db.Insert(
        Fact(schema.IdOf("R2"), {0, 100000 + static_cast<std::int64_t>(i)}));
  }
  for (std::size_t i = 0; i < blowup; ++i) {
    db.Insert(Fact(schema.IdOf("R3"),
                   {500000 + static_cast<std::int64_t>(i),
                    600000 + static_cast<std::int64_t>(i)}));
  }
  return db;
}

void PrintTable() {
  std::printf(
      "# GYM ablation: strategies on the dangling-blowup chain "
      "R1(x,y), R2(y,z), R3(z,w) (output empty by construction)\n"
      "# columns: blowup  strategy  rounds  max-load  total-comm\n");
  obs::BenchReporter reporter("gym_ablation");
  for (std::size_t blowup : {50u, 100u, 200u}) {
    Schema schema;
    const ConjunctiveQuery chain =
        ParseQuery(schema, "H(x,y,z,w) <- R1(x,y), R2(y,z), R3(z,w)");
    const Instance db = DanglingChain(schema, blowup);

    obs::WallTimer timer;
    Schema s1 = schema;
    const MpcRunResult hypercube = RunHyperCubeLpShares(chain, db, 16, 3);
    const double hypercube_ms = timer.ElapsedMs();
    timer.Restart();
    const MpcRunResult cascade = CascadeJoin(s1, chain, db, 16, 3);
    const double cascade_ms = timer.ElapsedMs();
    timer.Restart();
    Schema s2 = schema;
    const MpcRunResult yannakakis = YannakakisMpc(s2, chain, db, 16, 3);
    const double yannakakis_ms = timer.ElapsedMs();
    timer.Restart();
    Schema s3 = schema;
    const MpcRunResult gym = GymEvaluate(s3, chain, db, 16, 3);
    const double gym_ms = timer.ElapsedMs();

    const struct {
      const char* name;
      const MpcRunResult* run;
      double wall_ms;
    } rows[] = {{"hypercube", &hypercube, hypercube_ms},
                {"cascade", &cascade, cascade_ms},
                {"yannakakis", &yannakakis, yannakakis_ms},
                {"gym", &gym, gym_ms}};
    const obs::audit::Catalog catalog = obs::audit::BuildCatalog(schema, db);
    const Shares lp_shares = LpRoundedShares(chain, 16);
    for (const auto& row : rows) {
      std::printf("%8zu %-11s %6zu %9zu %11zu\n", blowup, row.name,
                  row.run->stats.NumRounds(), row.run->stats.MaxLoad(),
                  row.run->stats.TotalCommunication());
      obs::MetricsRegistry registry;
      row.run->stats.ToMetrics(registry);
      reporter.NewRecord()
          .Param("blowup", blowup)
          .Param("strategy", row.name)
          .Param("p", std::size_t{16})
          .Metrics(registry)
          .WallMs(row.wall_ms);
      // Only the HyperCube row has a closed-form bound. The dangling
      // chain concentrates all of R1 on one y-slice (every R1.y is 0),
      // but at p=16 that costs only a constant factor over the expected
      // load, which the slack absorbs. Cascade/Yannakakis/GYM have no
      // one-round formula: record their loads with Strategy::kNone (no
      // verdict).
      const bool is_hypercube = row.run == &hypercube;
      std::size_t actual_p = 16;
      if (is_hypercube) {
        actual_p = 1;
        for (std::size_t s : lp_shares) actual_p *= s;
      }
      obs::audit::AuditRecord audit = obs::audit::MakeAuditRecord(
          "gym_ablation", row.name,
          is_hypercube ? obs::audit::Strategy::kHyperCube
                       : obs::audit::Strategy::kNone,
          actual_p,
          is_hypercube ? obs::audit::HyperCubeBound(chain, schema, catalog,
                                                    lp_shares)
                       : obs::audit::NoBound(),
          row.run->stats);
      audit.params.Set("blowup", blowup);
      obs::audit::GlobalAuditSink().Add(std::move(audit));
    }
  }
  std::printf(
      "# shape check: the cascade's communication grows quadratically in "
      "the blowup; Yannakakis/GYM stay linear (the semijoin phase removes "
      "the dangling tuples before any join).\n\n");
}

void BM_CascadeDangling(benchmark::State& state) {
  Schema schema;
  const ConjunctiveQuery chain =
      ParseQuery(schema, "H(x,y,z,w) <- R1(x,y), R2(y,z), R3(z,w)");
  const Instance db =
      DanglingChain(schema, static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    Schema scratch = schema;
    benchmark::DoNotOptimize(CascadeJoin(scratch, chain, db, 16, 3));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_CascadeDangling)->RangeMultiplier(2)->Range(32, 256)->Complexity();

void BM_YannakakisDangling(benchmark::State& state) {
  Schema schema;
  const ConjunctiveQuery chain =
      ParseQuery(schema, "H(x,y,z,w) <- R1(x,y), R2(y,z), R3(z,w)");
  const Instance db =
      DanglingChain(schema, static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    Schema scratch = schema;
    benchmark::DoNotOptimize(YannakakisMpc(scratch, chain, db, 16, 3));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_YannakakisDangling)
    ->RangeMultiplier(2)
    ->Range(32, 256)
    ->Complexity();

}  // namespace

int main(int argc, char** argv) {
  lamp::par::ConfigureFromCommandLine(&argc, argv);
  lamp::obs::ConfigureRepeatsFromCommandLine(&argc, argv);
  lamp::obs::RunRepeated([] { PrintTable(); });
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return lamp::obs::audit::FinalizeGlobalAudit();
}
