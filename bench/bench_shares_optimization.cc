// Experiment E4 (Afrati-Ullman Shares): optimizing the share vector for
// *total* communication cost when relation sizes differ.
//
// The paper: Shares "focuses on computing optimal values for the shares
// minimizing the total load". The table compares uniform shares against
// the exhaustively optimized integer shares on joins with asymmetric
// relation sizes — the classic result that a plain hash join (all share
// on the join variable) wins when sizes are very different, while
// balanced grids win on symmetric cyclic queries.

#include <cstdio>

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "cq/parser.h"
#include "mpc/hypercube_run.h"
#include "obs/audit/audit.h"
#include "obs/audit/bounds.h"
#include "obs/audit/catalog.h"
#include "obs/bench_report.h"
#include "par/thread_pool.h"
#include "relational/generators.h"

namespace {

using namespace lamp;

void PrintTable() {
  obs::BenchReporter reporter("shares_optimization");
  std::printf(
      "# E4: Shares total-communication optimization (Afrati-Ullman)\n"
      "# columns: workload  p  comm(uniform)  comm(optimized)  saving\n");

  struct Case {
    const char* name;
    const char* query;
    std::vector<std::size_t> sizes;  // Per body atom.
  };
  const Case cases[] = {
      {"sym-join", "H(x,y,z) <- R(x,y), S(y,z)", {20000, 20000}},
      {"asym-join", "H(x,y,z) <- R(x,y), S(y,z)", {40000, 400}},
      {"triangle", "H(x,y,z) <- R(x,y), S(y,z), T(z,x)",
       {15000, 15000, 15000}},
      {"asym-tri", "H(x,y,z) <- R(x,y), S(y,z), T(z,x)", {30000, 30000, 300}},
  };

  for (const Case& c : cases) {
    Schema schema;
    const ConjunctiveQuery q = ParseQuery(schema, c.query);
    Rng rng(3);
    Instance db;
    for (std::size_t a = 0; a < q.body().size(); ++a) {
      AddUniformRelation(schema, q.body()[a].relation, c.sizes[a], 200000,
                         rng, db);
    }
    std::vector<double> sizes(c.sizes.begin(), c.sizes.end());
    const obs::audit::Catalog catalog = obs::audit::BuildCatalog(schema, db);
    const auto audit = [&](const char* variant, const Shares& shares,
                           const RunStats& stats) {
      std::size_t actual_p = 1;
      for (std::size_t s : shares) actual_p *= s;
      // Both share vectors get the *same* kind of bound — the exact
      // expected load under their own shares — so the audit checks each
      // configuration against what it promises, not against each other.
      obs::audit::AuditRecord record = obs::audit::MakeAuditRecord(
          "shares_optimization", std::string(c.name) + "/" + variant,
          obs::audit::Strategy::kHyperCube, actual_p,
          obs::audit::HyperCubeBound(q, schema, catalog, shares), stats);
      obs::audit::GlobalAuditSink().Add(std::move(record));
    };
    for (std::size_t p : {27, 64}) {
      obs::WallTimer timer;
      const Shares uniform = UniformShares(q, p);
      const Shares optimized = OptimizeIntegerSharesTotalComm(q, p, sizes);
      const auto run_uniform = RunHyperCube(q, db, uniform, 5);
      const auto run_optimized = RunHyperCube(q, db, optimized, 5);
      audit("uniform", uniform, run_uniform.stats);
      audit("optimized", optimized, run_optimized.stats);
      const double saving =
          1.0 - static_cast<double>(run_optimized.stats.TotalCommunication()) /
                    static_cast<double>(
                        std::max<std::size_t>(
                            1, run_uniform.stats.TotalCommunication()));
      std::printf("%-10s %4zu %14zu %16zu %8.1f%%\n", c.name, p,
                  run_uniform.stats.TotalCommunication(),
                  run_optimized.stats.TotalCommunication(), 100.0 * saving);
      reporter.NewRecord()
          .Param("workload", c.name)
          .Param("p", p)
          .Metric("uniform.mpc.total_communication",
                  run_uniform.stats.TotalCommunication())
          .Metric("optimized.mpc.total_communication",
                  run_optimized.stats.TotalCommunication())
          .Metric("saving", saving)
          .WallMs(timer.ElapsedMs());
    }
  }
  std::printf(
      "# shape check: for 2-atom joins the optimizer recovers the plain "
      "hash join (all share on y, zero replication); the symmetric "
      "triangle keeps the balanced grid (no saving); asymmetric inputs "
      "gain by not replicating along the small relation's dimensions.\n"
      "\n");
}

void BM_OptimizeIntegerShares(benchmark::State& state) {
  Schema schema;
  const ConjunctiveQuery q =
      ParseQuery(schema, "H(x,y,z) <- R(x,y), S(y,z), T(z,x)");
  const std::size_t budget = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        OptimizeIntegerSharesTotalComm(q, budget, {1e4, 1e4, 1e4}));
  }
}
BENCHMARK(BM_OptimizeIntegerShares)->Arg(64)->Arg(256)->Arg(1024);

}  // namespace

int main(int argc, char** argv) {
  lamp::par::ConfigureFromCommandLine(&argc, argv);
  lamp::obs::ConfigureRepeatsFromCommandLine(&argc, argv);
  lamp::obs::RunRepeated([] { PrintTable(); });
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return lamp::obs::audit::FinalizeGlobalAudit();
}
