// Experiment D2 (Section 3.2, Afrati-Ullman): transitive closure on
// clusters — rounds (jobs) versus communication.
//
// Linear iteration needs ~diameter jobs with small shuffles; recursive
// doubling needs ~log(diameter) jobs with larger shuffles. The table
// regenerates that trade-off on path graphs of growing diameter.

#include <cstdio>

#include <benchmark/benchmark.h>

#include "mapreduce/recursive.h"
#include "obs/bench_report.h"
#include "par/thread_pool.h"
#include "relational/generators.h"

namespace {

using namespace lamp;

void PrintTable() {
  std::printf(
      "# D2: transitive closure in MapReduce (Afrati-Ullman)\n"
      "# columns: diameter  linear-jobs  doubling-jobs  linear-pairs  "
      "doubling-pairs\n");
  obs::BenchReporter reporter("tc_mapreduce");
  for (std::size_t n : {9u, 17u, 33u, 65u}) {
    obs::WallTimer timer;
    Schema schema;
    const RelationId e = schema.AddRelation("E", 2);
    const RelationId tc = schema.AddRelation("TC", 2);
    Instance edges;
    AddPathGraph(schema, e, n, edges);
    const RecursiveTcResult linear =
        TransitiveClosureLinear(schema, e, tc, edges);
    const RecursiveTcResult doubling =
        TransitiveClosureDoubling(schema, e, tc, edges);
    std::printf("%9zu %12zu %14zu %13zu %15zu\n", n - 1, linear.jobs,
                doubling.jobs, linear.pairs_shuffled,
                doubling.pairs_shuffled);
    reporter.NewRecord()
        .Param("diameter", n - 1)
        .Metric("linear.jobs", linear.jobs)
        .Metric("doubling.jobs", doubling.jobs)
        .Metric("linear.pairs_shuffled", linear.pairs_shuffled)
        .Metric("doubling.pairs_shuffled", doubling.pairs_shuffled)
        .WallMs(timer.ElapsedMs());
  }
  std::printf(
      "# shape check: linear jobs grow linearly with the diameter, "
      "doubling jobs logarithmically; doubling shuffles more per job.\n\n");
}

void BM_LinearTc(benchmark::State& state) {
  Schema schema;
  const RelationId e = schema.AddRelation("E", 2);
  const RelationId tc = schema.AddRelation("TC", 2);
  Instance edges;
  AddPathGraph(schema, e, static_cast<std::size_t>(state.range(0)), edges);
  for (auto _ : state) {
    benchmark::DoNotOptimize(TransitiveClosureLinear(schema, e, tc, edges));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_LinearTc)->RangeMultiplier(2)->Range(8, 64)->Complexity();

void BM_DoublingTc(benchmark::State& state) {
  Schema schema;
  const RelationId e = schema.AddRelation("E", 2);
  const RelationId tc = schema.AddRelation("TC", 2);
  Instance edges;
  AddPathGraph(schema, e, static_cast<std::size_t>(state.range(0)), edges);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        TransitiveClosureDoubling(schema, e, tc, edges));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_DoublingTc)->RangeMultiplier(2)->Range(8, 64)->Complexity();

}  // namespace

int main(int argc, char** argv) {
  lamp::par::ConfigureFromCommandLine(&argc, argv);
  lamp::obs::ConfigureRepeatsFromCommandLine(&argc, argv);
  lamp::obs::RunRepeated([] { PrintTable(); });
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
