// Static analyzer throughput: wall time of the dependency-graph /
// stratification, fragment-classification and lint passes as the program
// grows. Programs are synthetic layered chains with periodic (acyclic)
// negation, so the stratifier has real relaxation work and the fragment
// classifiers see a mix of verdicts. The containment-based subsumption
// pass is measured separately — it is quadratic in the rule count with
// an NP-hard kernel per pair, which is exactly why LintOptions lets
// callers switch it off.

#include <cstdio>
#include <string>

#include <benchmark/benchmark.h>

#include "datalog/program.h"
#include "obs/bench_report.h"
#include "par/thread_pool.h"
#include "sa/analyzer.h"
#include "sa/depgraph.h"
#include "sa/fragment.h"
#include "sa/lint.h"

namespace {

using namespace lamp;

/// A deterministic program with \p rules rules: a derivation chain with
/// a join every 5th rule and a negated back-reference (to an older
/// relation, so stratification always succeeds) every 7th.
std::string MakeChainProgram(std::size_t rules) {
  std::string text = "P0(x,y) <- E(x,y)\n";
  for (std::size_t i = 1; i < rules; ++i) {
    text += "P";
    text += std::to_string(i);
    if (i % 7 == 3) {
      text += "(x,y) <- P";
      text += std::to_string(i - 1);
      text += "(x,y), !P";
      text += std::to_string(i / 2);
      text += "(x,y)\n";
    } else if (i % 5 == 2) {
      text += "(x,y) <- P";
      text += std::to_string(i - 1);
      text += "(x,z), E(z,y)\n";
    } else {
      text += "(x,y) <- P";
      text += std::to_string(i - 1);
      text += "(x,y)\n";
    }
  }
  return text;
}

void PrintTable() {
  std::printf(
      "# static analysis wall time vs program size\n"
      "# columns: rules  strata  graph_ms  fragments_ms  lint_ms  "
      "subsumption_ms\n");
  obs::BenchReporter reporter("static_analysis");
  for (std::size_t rules : {8u, 32u, 128u, 512u}) {
    const std::string text = MakeChainProgram(rules);
    Schema schema;
    DatalogProgram program = ParseProgram(schema, text);

    obs::WallTimer total;
    obs::WallTimer timer;
    const sa::DependencyGraph graph(program);
    const auto strata = graph.Stratify();
    const double graph_ms = timer.ElapsedMs();

    timer.Restart();
    const sa::FragmentReport fragments =
        sa::ClassifyFragments(schema, program);
    const double fragments_ms = timer.ElapsedMs();

    sa::LintOptions no_subsumption;
    no_subsumption.subsumption = false;
    timer.Restart();
    const auto lint = sa::LintProgram(schema, program, no_subsumption);
    const double lint_ms = timer.ElapsedMs();

    // The quadratic pass, on the sizes where it is affordable.
    double subsumption_ms = 0.0;
    if (rules <= 128) {
      timer.Restart();
      (void)sa::LintProgram(schema, program);
      subsumption_ms = timer.ElapsedMs();
    }

    const std::size_t num_strata =
        strata.has_value() ? strata->num_strata : 0;
    std::printf("%6zu %7zu %9.3f %13.3f %8.3f %15.3f\n", rules, num_strata,
                graph_ms, fragments_ms, lint_ms, subsumption_ms);
    reporter.NewRecord()
        .Param("rules", rules)
        .Param("generator", "chain")
        .Metric("sa.num_strata", num_strata)
        .Metric("sa.components", graph.Components().size())
        .Metric("sa.certified",
                fragments.strongest.has_value() ? 1 : 0)
        .Metric("sa.lint_diagnostics", lint.size())
        .Metric("sa.graph_ms", graph_ms)
        .Metric("sa.fragments_ms", fragments_ms)
        .Metric("sa.lint_ms", lint_ms)
        .Metric("sa.subsumption_ms", subsumption_ms)
        .WallMs(total.ElapsedMs());
  }
}

void BM_DependencyGraphStratify(benchmark::State& state) {
  Schema schema;
  DatalogProgram program = ParseProgram(
      schema, MakeChainProgram(static_cast<std::size_t>(state.range(0))));
  for (auto _ : state) {
    const sa::DependencyGraph graph(program);
    benchmark::DoNotOptimize(graph.Stratify());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_DependencyGraphStratify)
    ->RangeMultiplier(4)
    ->Range(8, 512)
    ->Complexity();

void BM_ClassifyFragments(benchmark::State& state) {
  Schema schema;
  DatalogProgram program = ParseProgram(
      schema, MakeChainProgram(static_cast<std::size_t>(state.range(0))));
  for (auto _ : state) {
    benchmark::DoNotOptimize(sa::ClassifyFragments(schema, program));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ClassifyFragments)
    ->RangeMultiplier(4)
    ->Range(8, 512)
    ->Complexity();

void BM_LintNoSubsumption(benchmark::State& state) {
  Schema schema;
  DatalogProgram program = ParseProgram(
      schema, MakeChainProgram(static_cast<std::size_t>(state.range(0))));
  sa::LintOptions options;
  options.subsumption = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sa::LintProgram(schema, program, options));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_LintNoSubsumption)
    ->RangeMultiplier(4)
    ->Range(8, 512)
    ->Complexity();

void BM_AnalyzeProgramTextEndToEnd(benchmark::State& state) {
  const std::string text =
      MakeChainProgram(static_cast<std::size_t>(state.range(0)));
  sa::AnalyzerOptions options;
  options.subsumption = false;
  for (auto _ : state) {
    Schema schema;
    benchmark::DoNotOptimize(
        sa::AnalyzeProgramText(schema, text, options));
  }
}
BENCHMARK(BM_AnalyzeProgramTextEndToEnd)->Arg(32)->Arg(128);

}  // namespace

int main(int argc, char** argv) {
  lamp::par::ConfigureFromCommandLine(&argc, argv);
  lamp::obs::ConfigureRepeatsFromCommandLine(&argc, argv);
  lamp::obs::RunRepeated([] { PrintTable(); });
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
