// Storage micro-benchmark: the raw columnar Instance operations every
// evaluator sits on — bulk insert (dedup hash table growth), duplicate-
// heavy re-insert (probe-only path), membership probes, full scans via
// RowsOf, and join-index build + probe (IndexOn bucket chains). Wall
// times feed the perf baseline; the fact/row counts pin the workload so
// baseline keys stay comparable across commits.

#include <cstdio>

#include <benchmark/benchmark.h>

#include "common/hash.h"
#include "common/rng.h"
#include "obs/bench_report.h"
#include "par/thread_pool.h"
#include "relational/instance.h"

namespace {

using namespace lamp;

constexpr std::size_t kRows = 50000;
constexpr std::int64_t kDomain = 4096;
constexpr RelationId kRel = 0;

std::vector<Value> MakeRows(std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Value> rows;
  rows.reserve(kRows * 2);
  for (std::size_t i = 0; i < kRows; ++i) {
    rows.push_back(Value(rng.UniformInt(0, kDomain - 1)));
    rows.push_back(Value(rng.UniformInt(0, kDomain - 1)));
  }
  return rows;
}

void PrintTable() {
  std::printf(
      "# storage: columnar Instance micro-operations (50k binary rows)\n"
      "# columns: phase  rows  result\n");
  obs::BenchReporter reporter("storage");
  const std::vector<Value> rows = MakeRows(11);

  // Bulk insert: fresh instance, dedup table grows from empty.
  obs::WallTimer insert_timer;
  Instance instance;
  const std::size_t unique = instance.InsertRows(kRel, rows.data(), kRows, 2);
  const double insert_ms = insert_timer.ElapsedMs();

  // Duplicate re-insert: every probe hits an existing row.
  obs::WallTimer dup_timer;
  const std::size_t re_added =
      instance.InsertRows(kRel, rows.data(), kRows, 2);
  const double dup_ms = dup_timer.ElapsedMs();

  // Membership probes over a shifted row mix (hits and misses).
  const std::vector<Value> probes = MakeRows(13);
  obs::WallTimer probe_timer;
  std::size_t hits = 0;
  for (std::size_t i = 0; i < kRows; ++i) {
    if (instance.ContainsRow(kRel, probes.data() + 2 * i, 2)) ++hits;
  }
  const double probe_ms = probe_timer.ElapsedMs();

  // Full scan through the contiguous column.
  obs::WallTimer scan_timer;
  std::int64_t checksum = 0;
  const RowsView view = instance.RowsOf(kRel);
  for (std::size_t i = 0; i < view.num_rows; ++i) {
    checksum += view.Row(i)[0].v;
  }
  const double scan_ms = scan_timer.ElapsedMs();

  // Join-index build + probe: chains keyed on the first column.
  obs::WallTimer index_timer;
  std::size_t indexed = 0;
  const JoinIndex& index = instance.IndexOn(kRel, /*mask=*/1, &indexed);
  std::size_t chain_rows = 0;
  for (std::size_t i = 0; i < kRows; ++i) {
    std::uint64_t h = 1469598103934665603ull;
    h = HashCombine(h, static_cast<std::uint64_t>(probes[2 * i].v));
    const std::size_t slot = static_cast<std::size_t>(h) & index.SlotMask();
    for (std::uint32_t link = index.head[slot]; link != 0;
         link = index.next[link - 1]) {
      const std::size_t row_id = link - 1;
      if (view.Row(row_id)[0].v == probes[2 * i].v) ++chain_rows;
    }
  }
  const double index_ms = index_timer.ElapsedMs();

  std::printf("%9s %6zu %7zu\n", "insert", kRows, unique);
  std::printf("%9s %6zu %7zu\n", "reinsert", kRows, re_added);
  std::printf("%9s %6zu %7zu\n", "probe", kRows, hits);
  std::printf("%9s %6zu %7lld\n", "scan", view.num_rows,
              static_cast<long long>(checksum));
  std::printf("%9s %6zu %7zu\n", "index", indexed, chain_rows);

  reporter.NewRecord()
      .Param("rows", kRows)
      .Metric("storage.unique_rows", unique)
      .Metric("storage.reinsert_added", re_added)
      .Metric("storage.probe_hits", hits)
      .Metric("storage.index_chain_rows", chain_rows)
      .Metric("storage.insert_ms_x1000",
              static_cast<std::size_t>(insert_ms * 1000))
      .Metric("storage.reinsert_ms_x1000",
              static_cast<std::size_t>(dup_ms * 1000))
      .Metric("storage.probe_ms_x1000",
              static_cast<std::size_t>(probe_ms * 1000))
      .Metric("storage.scan_ms_x1000",
              static_cast<std::size_t>(scan_ms * 1000))
      .Metric("storage.index_ms_x1000",
              static_cast<std::size_t>(index_ms * 1000))
      .WallMs(insert_ms + dup_ms + probe_ms + scan_ms + index_ms);
  std::printf("\n");
}

void BM_BulkInsert(benchmark::State& state) {
  const std::vector<Value> rows = MakeRows(11);
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    Instance instance;
    benchmark::DoNotOptimize(instance.InsertRows(kRel, rows.data(), n, 2));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_BulkInsert)->RangeMultiplier(4)->Range(1024, 16384)->Complexity();

void BM_ContainsProbe(benchmark::State& state) {
  const std::vector<Value> rows = MakeRows(11);
  const std::vector<Value> probes = MakeRows(13);
  Instance instance;
  instance.InsertRows(kRel, rows.data(), kRows, 2);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        instance.ContainsRow(kRel, probes.data() + 2 * (i % kRows), 2));
    ++i;
  }
}
BENCHMARK(BM_ContainsProbe);

}  // namespace

int main(int argc, char** argv) {
  lamp::par::ConfigureFromCommandLine(&argc, argv);
  lamp::obs::ConfigureRepeatsFromCommandLine(&argc, argv);
  lamp::obs::RunRepeated([] { PrintTable(); });
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
