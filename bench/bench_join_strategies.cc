// Experiment E1 (Example 3.1): one-round binary-join strategies.
//
// The paper's claims:
//   (1a) repartition join: max load O(m/p) without skew, but a heavy join
//        value sends a large part of the database to one server;
//   (1b) fragment-replicate join: max load O(m/sqrt(p)) *independent of
//        skew*.
//
// All four implemented strategies race on both the skew-free (matching
// database) and skewed (half of R shares one join value) inputs; the
// table prints the measured max loads next to the static planner's pick
// (sa/plan). Every race also emits a lamp.plan_agreement.v1 record, so
// `lamp_plan check` gates the cost model against what actually won; the
// timed benchmarks measure simulator throughput.

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "cq/parser.h"
#include "distribution/hypercube.h"
#include "mpc/hypercube_run.h"
#include "mpc/join_strategies.h"
#include "mpc/shares_skew.h"
#include "obs/audit/audit.h"
#include "obs/audit/bounds.h"
#include "obs/audit/catalog.h"
#include "obs/bench_report.h"
#include "par/thread_pool.h"
#include "relational/generators.h"
#include "sa/plan/agreement.h"
#include "sa/plan/plan.h"
#include "transport/transport.h"

namespace {

using namespace lamp;

struct Workload {
  Schema schema;
  ConjunctiveQuery query;
  Instance skew_free;
  Instance skewed;
  std::size_t m;

  explicit Workload(std::size_t m_in) : m(m_in) {
    query = ParseQuery(schema, "H(x,y,z) <- R(x,y), S(y,z)");
    const RelationId r = schema.IdOf("R");
    const RelationId s = schema.IdOf("S");
    Rng rng(1);
    // Skew-free: matching relations overlapping on the join column.
    AddMatchingRelation(schema, r, m, 0, rng, skew_free);
    AddMatchingRelation(schema, s, m, static_cast<std::int64_t>(m), rng,
                        skew_free);
    // Skewed: half of R shares join value 0; S keeps only a handful of
    // matching tuples so the *output* stays linear while the heavy value
    // still pins half of R onto one repartition server.
    for (std::size_t i = 0; i < m / 2; ++i) {
      skewed.Insert(Fact(r, {static_cast<std::int64_t>(i), 0}));
    }
    for (std::size_t i = 0; i < 10; ++i) {
      skewed.Insert(Fact(s, {0, static_cast<std::int64_t>(i)}));
    }
    AddUniformRelation(schema, r, m / 2, 16 * m, rng, skewed);
    AddUniformRelation(schema, s, m - 10, 16 * m, rng, skewed);
  }
};

void PrintTable() {
  const std::size_t m = 20000;
  Workload w(m);
  const std::string transport_name(
      transport::TransportKindName(transport::ActiveKind()));
  std::printf(
      "# E1: one-round join strategies (Example 3.1), m=%zu per relation, "
      "transport=%s\n"
      "# columns: p  scenario  repart  fragrep  hypercube  shares-skew  "
      "planner-pick  measured-pick  agree\n",
      m, transport_name.c_str());
  obs::BenchReporter reporter("join_strategies");
  const obs::audit::Catalog free_catalog =
      obs::audit::BuildCatalog(w.schema, w.skew_free);
  const obs::audit::Catalog skew_catalog =
      obs::audit::BuildCatalog(w.schema, w.skewed);
  using obs::audit::Strategy;

  struct Scenario {
    const char* name;
    const Instance* db;
    const obs::audit::Catalog* catalog;
  };
  const Scenario scenarios[] = {
      {"skew_free", &w.skew_free, &free_catalog},
      {"skewed", &w.skewed, &skew_catalog},
  };

  for (std::size_t p : {4, 16, 64, 256}) {
    obs::WallTimer timer;
    auto& record = reporter.NewRecord();
    record.Param("p", p).Param("m", m).Param("transport", transport_name);
    for (const Scenario& scenario : scenarios) {
      const bool skewed = scenario.db == &w.skewed;
      // The planner scores the same grid the race runs, so prediction
      // and measurement disagree only when the cost model is wrong, not
      // because they chose different shares.
      const Shares shares = LpRoundedShares(w.query, p);
      sa::plan::PlanOptions plan_options;
      plan_options.p = p;
      plan_options.share_candidates = {shares};
      const sa::plan::PlanCertificate cert =
          sa::plan::PlanQuery(w.query, w.schema, *scenario.catalog,
                              plan_options);
      const sa::plan::StrategyPrediction* pick = cert.Winner();

      const auto repart = RepartitionJoin(w.query, *scenario.db, p, 7);
      const auto fragrep = FragmentReplicateJoin(w.query, *scenario.db, p, 7);
      const auto hypercube = RunHyperCube(w.query, *scenario.db, shares);
      const auto shares_skew = SharesSkewJoin(w.query, *scenario.db, p, 7);

      // A heavy join value pins half of R on one server (repartition) or
      // one hypercube cell: the skew-free m/p and HyperCube bounds *must*
      // break on the skewed input for large p — that is claim (1a), kept
      // as pinned expected violations rather than gate failures.
      const auto audit = [&](const char* strategy_label, Strategy strategy,
                             const RunStats& stats, bool expected_violation) {
        obs::audit::AuditRecord record = obs::audit::MakeAuditRecord(
            "join_strategies",
            std::string(strategy_label) + "/" + scenario.name, strategy, p,
            strategy == Strategy::kHyperCube
                ? obs::audit::HyperCubeBound(w.query, w.schema,
                                             *scenario.catalog, shares)
                : obs::audit::BoundFor(strategy, w.query, w.schema,
                                       *scenario.catalog, p),
            stats);
        record.params.Set("m", w.m);
        record.params.Set("transport", transport_name);
        record.expected_violation = expected_violation;
        // The planner's verdict rides along so `obs_audit report` can
        // render predicted-vs-measured slack per strategy.
        const sa::plan::StrategyPrediction* predicted = cert.Find(strategy);
        if (predicted != nullptr && predicted->feasible) {
          record.predicted_max_load = predicted->predicted_max_load;
          record.predicted_wire_bytes = predicted->predicted_wire_bytes;
        }
        if (pick != nullptr) {
          record.planned_strategy =
              std::string(obs::audit::StrategyName(pick->strategy));
        }
        obs::audit::GlobalAuditSink().Add(std::move(record));
      };
      audit("repartition", Strategy::kRepartition, repart.stats,
            /*expected_violation=*/skewed);
      audit("fragment_replicate", Strategy::kFragmentReplicate,
            fragrep.stats, /*expected_violation=*/false);
      audit("hypercube", Strategy::kHyperCube, hypercube.stats,
            /*expected_violation=*/skewed);
      audit("shares_skew", Strategy::kSharesSkew, shares_skew.stats,
            /*expected_violation=*/false);

      sa::plan::AgreementRecord agreement = sa::plan::MakeAgreementRecord(
          "join_strategies",
          std::string(scenario.name) + "/p=" + std::to_string(p), cert,
          {{Strategy::kRepartition,
            static_cast<double>(repart.stats.MaxLoad())},
           {Strategy::kFragmentReplicate,
            static_cast<double>(fragrep.stats.MaxLoad())},
           {Strategy::kHyperCube,
            static_cast<double>(hypercube.stats.MaxLoad())},
           {Strategy::kSharesSkew,
            static_cast<double>(shares_skew.stats.MaxLoad())}});
      const std::string pick_name(obs::audit::StrategyName(
          pick != nullptr ? pick->strategy : Strategy::kNone));
      const std::string measured_name(
          obs::audit::StrategyName(agreement.measured));
      std::printf("%6zu %-10s %8zu %8zu %10zu %12zu  %-18s %-18s %s\n", p,
                  scenario.name, repart.stats.MaxLoad(),
                  fragrep.stats.MaxLoad(), hypercube.stats.MaxLoad(),
                  shares_skew.stats.MaxLoad(), pick_name.c_str(),
                  measured_name.c_str(), agreement.Agree() ? "yes" : "NO");
      const std::string prefix = std::string(scenario.name) + ".";
      record.Metric(prefix + "repartition.mpc.max_load",
                    repart.stats.MaxLoad())
          .Metric(prefix + "fragment_replicate.mpc.max_load",
                  fragrep.stats.MaxLoad())
          .Metric(prefix + "hypercube.mpc.max_load",
                  hypercube.stats.MaxLoad())
          .Metric(prefix + "shares_skew.mpc.max_load",
                  shares_skew.stats.MaxLoad())
          // Planner verdicts are metrics, not params: the perf key
          // (bench, params, threads) must not change when the cost model
          // does.
          .Metric(prefix + "planner.pick", pick_name)
          .Metric(prefix + "planner.predicted_max_load",
                  pick != nullptr ? pick->predicted_max_load : 0.0)
          .Metric(prefix + "planner.agree", agreement.Agree() ? 1 : 0);
      sa::plan::GlobalPlanSink().Add(std::move(agreement));
    }
    record.WallMs(timer.ElapsedMs());
  }
  std::printf(
      "# shape check: skew-free repart tracks m/p while skewed repart "
      "stays ~m/2 (heavy value pinned to one server); fragrep tracks "
      "m/sqrt(p) on both inputs; SharesSkew handles the heavy value in "
      "one round without paying fragment-replicate's blanket replication "
      "for light values. The planner must pick each race's winner (or a "
      "predicted tie): lamp_plan check gates the agreement records.\n\n");
}

void BM_RepartitionJoin(benchmark::State& state) {
  Workload w(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(RepartitionJoin(w.query, w.skew_free, 64, 7));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(2 * w.m));
}
BENCHMARK(BM_RepartitionJoin)->Arg(1000)->Arg(10000);

void BM_FragmentReplicateJoin(benchmark::State& state) {
  Workload w(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        FragmentReplicateJoin(w.query, w.skew_free, 64, 7));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(2 * w.m));
}
BENCHMARK(BM_FragmentReplicateJoin)->Arg(1000)->Arg(10000);

}  // namespace

int main(int argc, char** argv) {
  lamp::par::ConfigureFromCommandLine(&argc, argv);
  lamp::transport::ConfigureFromCommandLine(&argc, argv);
  lamp::obs::ConfigureRepeatsFromCommandLine(&argc, argv);
  lamp::obs::RunRepeated([] { PrintTable(); });
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  lamp::sa::plan::FinalizeGlobalPlan();
  return lamp::obs::audit::FinalizeGlobalAudit();
}
