// Experiment E1 (Example 3.1): one-round binary-join strategies.
//
// The paper's claims:
//   (1a) repartition join: max load O(m/p) without skew, but a heavy join
//        value sends a large part of the database to one server;
//   (1b) fragment-replicate join: max load O(m/sqrt(p)) *independent of
//        skew*.
//
// The table prints measured max loads against both predictions, on
// skew-free (matching database) and skewed (half the tuples share one
// join value) inputs; the timed benchmarks measure simulator throughput.

#include <cmath>
#include <cstdio>
#include <string>

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "cq/parser.h"
#include "mpc/join_strategies.h"
#include "mpc/shares_skew.h"
#include "obs/audit/audit.h"
#include "obs/audit/bounds.h"
#include "obs/audit/catalog.h"
#include "obs/bench_report.h"
#include "par/thread_pool.h"
#include "relational/generators.h"
#include "transport/transport.h"

namespace {

using namespace lamp;

struct Workload {
  Schema schema;
  ConjunctiveQuery query;
  Instance skew_free;
  Instance skewed;
  std::size_t m;

  explicit Workload(std::size_t m_in) : m(m_in) {
    query = ParseQuery(schema, "H(x,y,z) <- R(x,y), S(y,z)");
    const RelationId r = schema.IdOf("R");
    const RelationId s = schema.IdOf("S");
    Rng rng(1);
    // Skew-free: matching relations overlapping on the join column.
    AddMatchingRelation(schema, r, m, 0, rng, skew_free);
    AddMatchingRelation(schema, s, m, static_cast<std::int64_t>(m), rng,
                        skew_free);
    // Skewed: half of R shares join value 0; S keeps only a handful of
    // matching tuples so the *output* stays linear while the heavy value
    // still pins half of R onto one repartition server.
    for (std::size_t i = 0; i < m / 2; ++i) {
      skewed.Insert(Fact(r, {static_cast<std::int64_t>(i), 0}));
    }
    for (std::size_t i = 0; i < 10; ++i) {
      skewed.Insert(Fact(s, {0, static_cast<std::int64_t>(i)}));
    }
    AddUniformRelation(schema, r, m / 2, 16 * m, rng, skewed);
    AddUniformRelation(schema, s, m - 10, 16 * m, rng, skewed);
  }
};

void PrintTable() {
  const std::size_t m = 20000;
  Workload w(m);
  const std::string transport_name(
      transport::TransportKindName(transport::ActiveKind()));
  std::printf(
      "# E1: one-round join strategies (Example 3.1), m=%zu per relation, "
      "transport=%s\n"
      "# columns: p  repart(skew-free)  m/p  repart(skewed)  "
      "fragrep(skewed)  m/sqrt(p)  shares-skew(skewed)\n",
      m, transport_name.c_str());
  obs::BenchReporter reporter("join_strategies");
  const obs::audit::Catalog free_catalog =
      obs::audit::BuildCatalog(w.schema, w.skew_free);
  const obs::audit::Catalog skew_catalog =
      obs::audit::BuildCatalog(w.schema, w.skewed);
  using obs::audit::Strategy;
  const auto audit = [&](const char* label, Strategy strategy,
                         const obs::audit::Catalog& catalog, std::size_t p,
                         const RunStats& stats, bool expected_violation) {
    obs::audit::AuditRecord record = obs::audit::MakeAuditRecord(
        "join_strategies", label, strategy, p,
        obs::audit::BoundFor(strategy, w.query, w.schema, catalog, p),
        stats);
    record.params.Set("m", w.m);
    record.params.Set("transport", transport_name);
    record.expected_violation = expected_violation;
    obs::audit::GlobalAuditSink().Add(std::move(record));
  };
  for (std::size_t p : {4, 16, 64, 256}) {
    obs::WallTimer timer;
    const auto repart_free = RepartitionJoin(w.query, w.skew_free, p, 7);
    const auto repart_skew = RepartitionJoin(w.query, w.skewed, p, 7);
    const auto fragrep_skew = FragmentReplicateJoin(w.query, w.skewed, p, 7);
    const auto shares_skew = SharesSkewJoin(w.query, w.skewed, p, 7);
    audit("repartition/skew_free", Strategy::kRepartition, free_catalog, p,
          repart_free.stats, /*expected_violation=*/false);
    // The heavy join value pins half of R on one server: the m/p bound
    // *must* break for large p — that is claim (1a), kept as a pinned
    // expected violation rather than a gate failure.
    audit("repartition/skewed", Strategy::kRepartition, skew_catalog, p,
          repart_skew.stats, /*expected_violation=*/true);
    audit("fragment_replicate/skewed", Strategy::kFragmentReplicate,
          skew_catalog, p, fragrep_skew.stats, /*expected_violation=*/false);
    audit("shares_skew/skewed", Strategy::kSharesSkew, skew_catalog, p,
          shares_skew.stats, /*expected_violation=*/false);
    std::printf("%6zu %12zu %8.0f %12zu %12zu %10.0f %14zu\n", p,
                repart_free.stats.MaxLoad(),
                2.0 * static_cast<double>(m) / static_cast<double>(p),
                repart_skew.stats.MaxLoad(), fragrep_skew.stats.MaxLoad(),
                2.0 * static_cast<double>(m) /
                    std::sqrt(static_cast<double>(p)),
                shares_skew.stats.MaxLoad());
    reporter.NewRecord()
        .Param("p", p)
        .Param("m", m)
        .Param("transport", transport_name)
        .Metric("repartition.skew_free.mpc.max_load",
                repart_free.stats.MaxLoad())
        .Metric("repartition.skewed.mpc.max_load",
                repart_skew.stats.MaxLoad())
        .Metric("fragment_replicate.skewed.mpc.max_load",
                fragrep_skew.stats.MaxLoad())
        .Metric("shares_skew.skewed.mpc.max_load",
                shares_skew.stats.MaxLoad())
        .WallMs(timer.ElapsedMs());
  }
  std::printf(
      "# shape check: column 2 tracks column 3; column 4 stays ~m/2 "
      "(heavy value pinned to one server); column 5 tracks column 6; "
      "SharesSkew handles the heavy value in one round without paying "
      "fragment-replicate's blanket replication for light values.\n\n");
}

void BM_RepartitionJoin(benchmark::State& state) {
  Workload w(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(RepartitionJoin(w.query, w.skew_free, 64, 7));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(2 * w.m));
}
BENCHMARK(BM_RepartitionJoin)->Arg(1000)->Arg(10000);

void BM_FragmentReplicateJoin(benchmark::State& state) {
  Workload w(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        FragmentReplicateJoin(w.query, w.skew_free, 64, 7));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(2 * w.m));
}
BENCHMARK(BM_FragmentReplicateJoin)->Arg(1000)->Arg(10000);

}  // namespace

int main(int argc, char** argv) {
  lamp::par::ConfigureFromCommandLine(&argc, argv);
  lamp::transport::ConfigureFromCommandLine(&argc, argv);
  lamp::obs::ConfigureRepeatsFromCommandLine(&argc, argv);
  lamp::obs::RunRepeated([] { PrintTable(); });
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return lamp::obs::audit::FinalizeGlobalAudit();
}
