// Experiment C4 (Section 5, the CALM theorem under real faults): the
// theorem quantifies over all asynchronous runs — arbitrary delay,
// duplication, and loss with retransmission — so a monotone program must
// hold its convergence rate at 1.0 under every injectable fault class,
// paying only a message overhead, while the non-monotone strategies lose
// correctness exactly where their delivery assumptions break.
//
// The table runs the fault-injection sweep (src/fault) per fault class
// for three programs spanning the dividing line: the monotone TC
// pipeline, the set-based coordination barrier, and the deliberately
// fragile counting barrier (correct only under exactly-once delivery).
// Columns report the convergence rate and the messages-to-quiescence
// overhead relative to the fault-free sweep of the same program.

#include <cstdio>
#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "cq/eval.h"
#include "cq/parser.h"
#include "datalog/eval.h"
#include "datalog/program.h"
#include "fault/confluence.h"
#include "fault/scheduler.h"
#include "net/datalog_program.h"
#include "net/network.h"
#include "net/programs.h"
#include "obs/bench_report.h"
#include "par/thread_pool.h"
#include "relational/generators.h"

namespace {

using namespace lamp;

struct World {
  // Monotone side: distributed TC over a sharded graph.
  Schema tc_schema;
  DatalogProgram tc_prog;
  Instance tc_edges;
  Instance tc_expected;

  // Non-monotone side: the open-triangle query.
  Schema tri_schema;
  ConjunctiveQuery open_triangle;
  Instance graph;
  Instance tri_expected;

  World()
      : tc_prog(ParseProgram(tc_schema,
                             "TC(x,y) <- E(x,y)\n"
                             "TC(x,y) <- TC(x,z), E(z,y)")) {
    AddPathGraph(tc_schema, tc_schema.IdOf("E"), 9, tc_edges);
    AddCycleGraph(tc_schema, tc_schema.IdOf("E"), 5, tc_edges);
    const Instance everything =
        EvaluateProgram(tc_schema, tc_prog, tc_edges);
    for (const Fact& f : everything.FactsOf(tc_schema.IdOf("TC"))) {
      tc_expected.Insert(f);
    }

    tri_schema.AddRelation("E", 2);
    open_triangle =
        ParseQuery(tri_schema, "H(x,y,z) <- E(x,y), E(y,z), !E(z,x)");
    Rng rng(4);
    AddRandomGraph(tri_schema, tri_schema.IdOf("E"), 40, 12, rng, graph);
    tri_expected = Evaluate(open_triangle, graph);
  }
};

struct SweepCase {
  std::string program;
  TransducerProgram* transducer;
  const std::vector<std::vector<Instance>>* distributions;
  const Instance* expected;
  bool aware;
};

void PrintTable() {
  World w;
  auto wrap = [&w]() -> NetQueryFunction {
    return [&w](const Instance& i) { return Evaluate(w.open_triangle, i); };
  };

  DistributedDatalogProgram tc(w.tc_schema, w.tc_prog);
  Schema barrier_schema = w.tri_schema;
  CoordinatedBarrierProgram barrier(wrap(), barrier_schema);
  Schema fragile_schema = w.tri_schema;
  FragileCountingBarrierProgram fragile(wrap(), fragile_schema);

  const std::vector<std::vector<Instance>> tc_distributions = {
      DistributeRoundRobin(w.tc_edges, 3)};
  const std::vector<std::vector<Instance>> tri_distributions = {
      DistributeRoundRobin(w.graph, 3)};

  const SweepCase cases[] = {
      {"tc-monotone", &tc, &tc_distributions, &w.tc_expected, false},
      {"coordinated-barrier", &barrier, &tri_distributions, &w.tri_expected,
       true},
      {"fragile-barrier", &fragile, &tri_distributions, &w.tri_expected,
       true},
  };

  obs::BenchReporter reporter("fault_tolerance");
  std::printf(
      "# C4: convergence under fault injection (src/fault)\n"
      "# columns: program  fault-class  runs  converged  rate  "
      "msg-overhead\n");
  constexpr std::size_t kSeeds = 8;
  for (const SweepCase& c : cases) {
    double baseline_facts = 0.0;
    for (fault::FaultClass fault_class : fault::kAllFaultClasses) {
      obs::WallTimer timer;
      const fault::FaultSweep sweep = fault::CheckConsistencyUnderFaults(
          *c.transducer, *c.distributions, *c.expected, fault_class, kSeeds,
          nullptr, c.aware);
      const double rate = sweep.runs == 0
                              ? 0.0
                              : static_cast<double>(sweep.correct_runs) /
                                    static_cast<double>(sweep.runs);
      if (fault_class == fault::FaultClass::kNone) {
        baseline_facts = sweep.MeanFactsTransferred();
      }
      const double overhead =
          baseline_facts == 0.0
              ? 1.0
              : sweep.MeanFactsTransferred() / baseline_facts;
      std::printf("%-20s %-24s %4zu %8zu %6.2f %10.2fx\n", c.program.c_str(),
                  std::string(fault::FaultClassName(fault_class)).c_str(),
                  sweep.runs, sweep.correct_runs, rate, overhead);
      reporter.NewRecord()
          .Param("program", c.program)
          .Param("fault_class",
                 std::string(fault::FaultClassName(fault_class)))
          .Param("runs", sweep.runs)
          .Metric("converged_runs", sweep.correct_runs)
          .Metric("convergence_rate", rate)
          .Metric("mean_transitions", sweep.MeanTransitions())
          .Metric("mean_facts_transferred", sweep.MeanFactsTransferred())
          .Metric("message_overhead", overhead)
          .Metric("drops", sweep.total_drops)
          .Metric("duplicates", sweep.total_duplicates)
          .Metric("crashes", sweep.total_crashes)
          .Metric("retransmits", sweep.total_retransmits)
          .WallMs(timer.ElapsedMs());
    }
  }
  std::printf(
      "# shape check: tc-monotone and the set-based barrier hold rate 1.00 "
      "for every class (CALM: monotone => confluent; idempotent markers "
      "tolerate at-least-once); the fragile counting barrier drops below "
      "1.00 exactly for the at-least-once classes — duplication and "
      "volatile-crash redelivery both inflate its message count.\n\n");
}

void BM_FaultSweepTcDuplicate(benchmark::State& state) {
  World w;
  DistributedDatalogProgram tc(w.tc_schema, w.tc_prog);
  const std::vector<std::vector<Instance>> distributions = {
      DistributeRoundRobin(w.tc_edges,
                           static_cast<std::size_t>(state.range(0)))};
  for (auto _ : state) {
    benchmark::DoNotOptimize(fault::CheckConsistencyUnderFaults(
        tc, distributions, w.tc_expected, fault::FaultClass::kDuplicate, 4,
        nullptr, false));
  }
}
BENCHMARK(BM_FaultSweepTcDuplicate)->Arg(2)->Arg(4);

}  // namespace

int main(int argc, char** argv) {
  lamp::par::ConfigureFromCommandLine(&argc, argv);
  lamp::obs::ConfigureRepeatsFromCommandLine(&argc, argv);
  lamp::obs::RunRepeated([] { PrintTable(); });
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
