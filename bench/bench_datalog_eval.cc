// Experiment D1 (Section 5.3): Datalog evaluation over the paper's
// programs — transitive closure / its complement, the semi-connectedness
// analyzer, and win-move under the well-founded semantics — plus the
// semi-naive vs naive ablation (a design choice DESIGN.md calls out).

#include <cstdio>

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "datalog/eval.h"
#include "datalog/program.h"
#include "datalog/wellfounded.h"
#include "obs/bench_report.h"
#include "par/thread_pool.h"
#include "relational/generators.h"

namespace {

using namespace lamp;

constexpr const char* kTcLinear =
    "TC(x,y) <- E(x,y)\nTC(x,y) <- TC(x,z), E(z,y)";
constexpr const char* kTcNonLinear =
    "TC(x,y) <- E(x,y)\nTC(x,y) <- TC(x,z), TC(z,y)";
constexpr const char* kNotTc =
    "TC(x,y) <- E(x,y)\nTC(x,y) <- TC(x,z), TC(z,y)\n"
    "OUT(x,y) <- ADom(x), ADom(y), !TC(x,y)";
constexpr const char* kWinMove = "WIN(x) <- MOVE(x,y), !WIN(y)";

void PrintTable() {
  std::printf(
      "# D1: Datalog engine on the paper's programs\n"
      "# columns: program  input  facts-derived  semi-naive-iters  "
      "naive-iters\n");
  struct Case {
    const char* name;
    const char* program;
    std::size_t path_len;
  };
  const Case cases[] = {
      {"TC-linear", kTcLinear, 64},
      {"TC-nonlinear", kTcNonLinear, 64},
      {"not-TC", kNotTc, 24},
  };
  obs::BenchReporter reporter("datalog_eval");
  for (const Case& c : cases) {
    obs::WallTimer timer;
    Schema schema;
    DatalogProgram program = ParseProgram(schema, c.program);
    Instance edb;
    AddPathGraph(schema, schema.IdOf("E"), c.path_len, edb);
    DatalogStats semi;
    DatalogStats naive;
    obs::MetricsRegistry registry;
    EvaluateProgram(schema, program, edb, &semi, &registry);
    EvaluateProgramNaive(schema, program, edb, &naive);
    std::printf("%-13s path-%zu %10zu %14zu %12zu\n", c.name, c.path_len,
                semi.facts_derived, semi.iterations, naive.iterations);
    reporter.NewRecord()
        .Param("program", c.name)
        .Param("input", "path")
        .Param("path_len", c.path_len)
        .Metrics(registry)
        .Metric("naive.iterations", naive.iterations)
        .Metric("naive.facts_derived", naive.facts_derived)
        .WallMs(timer.ElapsedMs());
  }

  // Structural analysis summary (the Figure 2 syntax side).
  {
    Schema schema;
    const DatalogProgram not_tc = ParseProgram(schema, kNotTc);
    Schema schema2;
    const DatalogProgram win_move = ParseProgram(schema2, kWinMove);
    std::printf(
        "# analysis: not-TC stratifies=%s semi-positive=%s "
        "semi-connected=%s; win-move stratifies=%s\n",
        not_tc.Stratify().has_value() ? "yes" : "no",
        not_tc.IsSemiPositive() ? "yes" : "no",
        not_tc.IsSemiConnected() ? "yes" : "no",
        win_move.Stratify().has_value() ? "yes" : "no");
  }

  // Win-move on a random game graph under the well-founded semantics.
  {
    Schema schema;
    DatalogProgram program = ParseProgram(schema, kWinMove);
    Rng rng(9);
    Instance edb;
    AddRandomGraph(schema, schema.IdOf("MOVE"), 60, 30, rng, edb);
    const WellFoundedModel model = EvaluateWellFounded(schema, program, edb);
    std::printf(
        "# win-move on random 30-position game: %zu won, %zu drawn, "
        "%zu gamma applications\n\n",
        model.true_facts.Size(), model.undefined_facts.Size(),
        model.gamma_applications);
  }
}

void BM_SemiNaiveTc(benchmark::State& state) {
  Schema schema;
  DatalogProgram program = ParseProgram(schema, kTcLinear);
  Instance edb;
  AddPathGraph(schema, schema.IdOf("E"),
               static_cast<std::size_t>(state.range(0)), edb);
  for (auto _ : state) {
    benchmark::DoNotOptimize(EvaluateProgram(schema, program, edb));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_SemiNaiveTc)->RangeMultiplier(2)->Range(16, 128)->Complexity();

void BM_NaiveTc(benchmark::State& state) {
  Schema schema;
  DatalogProgram program = ParseProgram(schema, kTcLinear);
  Instance edb;
  AddPathGraph(schema, schema.IdOf("E"),
               static_cast<std::size_t>(state.range(0)), edb);
  for (auto _ : state) {
    benchmark::DoNotOptimize(EvaluateProgramNaive(schema, program, edb));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_NaiveTc)->RangeMultiplier(2)->Range(16, 128)->Complexity();

void BM_WellFoundedWinMove(benchmark::State& state) {
  Schema schema;
  DatalogProgram program = ParseProgram(schema, kWinMove);
  Rng rng(9);
  Instance edb;
  AddRandomGraph(schema, schema.IdOf("MOVE"),
                 static_cast<std::size_t>(2 * state.range(0)),
                 static_cast<std::size_t>(state.range(0)), rng, edb);
  for (auto _ : state) {
    benchmark::DoNotOptimize(EvaluateWellFounded(schema, program, edb));
  }
}
BENCHMARK(BM_WellFoundedWinMove)->Arg(16)->Arg(64);

}  // namespace

int main(int argc, char** argv) {
  lamp::par::ConfigureFromCommandLine(&argc, argv);
  lamp::obs::ConfigureRepeatsFromCommandLine(&argc, argv);
  lamp::obs::RunRepeated([] { PrintTable(); });
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
