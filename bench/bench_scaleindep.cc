// Experiment S1 (Section 6, Fan-Geerts-Libkin): scale independence — the
// data a bounded plan touches is fixed by the query and access schema,
// not by |I|.
//
// The table grows the database by 100x while the bounded plan's fetched
// tuples stay constant; full evaluation touches the whole relation.

#include <cstdio>

#include <benchmark/benchmark.h>

#include "cq/eval.h"
#include "cq/parser.h"
#include "obs/bench_report.h"
#include "par/thread_pool.h"
#include "relational/instance.h"
#include "scaleindep/access.h"

namespace {

using namespace lamp;

struct World {
  Schema schema;
  RelationId friend_rel, city_rel;
  ConjunctiveQuery query;
  AccessSchema access;

  World() {
    friend_rel = schema.AddRelation("Friend", 2);
    city_rel = schema.AddRelation("City", 2);
    query = ParseQuery(
        schema, "H(f,g,c) <- Friend(5, f), Friend(f, g), City(g, c)");
    access.Add({friend_rel, {0}, 4});
    access.Add({city_rel, {0}, 1});
  }

  Instance Population(std::size_t n) const {
    Instance db;
    for (std::size_t i = 0; i < n; ++i) {
      const auto id = static_cast<std::int64_t>(i);
      for (std::int64_t d = 1; d <= 4; ++d) {
        db.Insert(Fact(friend_rel,
                       {id, static_cast<std::int64_t>((i + d) % n)}));
      }
      db.Insert(Fact(city_rel, {id, 900 + id % 5}));
    }
    return db;
  }
};

void PrintTable() {
  World w;
  const BoundedPlan plan = PlanBoundedEvaluation(w.query, w.access);
  std::printf(
      "# S1: scale independence (bounded evaluation under access "
      "constraints)\n"
      "# plan bounded=%s worst-case fetches=%.0f\n"
      "# columns: |I|  bounded-fetches  |output|  full-eval-facts-visible\n",
      plan.bounded ? "yes" : "no", plan.worst_case_fetches);
  obs::BenchReporter reporter("scaleindep");
  for (std::size_t n : {100u, 1000u, 10000u, 100000u}) {
    obs::WallTimer timer;
    const Instance db = w.Population(n);
    const BoundedEvalResult r = BoundedEvaluate(w.query, plan, db);
    std::printf("%8zu %14zu %9zu %24zu\n", db.Size(), r.tuples_fetched,
                r.output.Size(), db.Size());
    reporter.NewRecord()
        .Param("population", n)
        .Param("instance_size", db.Size())
        .Param("plan_bounded", plan.bounded)
        .Param("worst_case_fetches", plan.worst_case_fetches)
        .Metric("scaleindep.tuples_fetched", r.tuples_fetched)
        .Metric("output_size", r.output.Size())
        .WallMs(timer.ElapsedMs());
  }
  std::printf(
      "# shape check: the bounded-fetches column is flat while |I| grows "
      "1000x — the query is scale-independent under this access schema.\n"
      "\n");
}

void BM_BoundedEvaluation(benchmark::State& state) {
  World w;
  const BoundedPlan plan = PlanBoundedEvaluation(w.query, w.access);
  const Instance db =
      w.Population(static_cast<std::size_t>(state.range(0)));
  // Note: index build inside BoundedEvaluate is O(|I|) — the engine's
  // one-off cost. The model's claim is about data *touched* per query.
  for (auto _ : state) {
    benchmark::DoNotOptimize(BoundedEvaluate(w.query, plan, db));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_BoundedEvaluation)
    ->RangeMultiplier(10)
    ->Range(100, 10000)
    ->Complexity();

void BM_FullEvaluation(benchmark::State& state) {
  World w;
  const Instance db =
      w.Population(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Evaluate(w.query, db));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_FullEvaluation)
    ->RangeMultiplier(10)
    ->Range(100, 10000)
    ->Complexity();

}  // namespace

int main(int argc, char** argv) {
  lamp::par::ConfigureFromCommandLine(&argc, argv);
  lamp::obs::ConfigureRepeatsFromCommandLine(&argc, argv);
  lamp::obs::RunRepeated([] { PrintTable(); });
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
