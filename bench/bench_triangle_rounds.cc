// Experiment E2 (Example 3.1(2) + Section 3.2): rounds-vs-skew trade-off
// for the triangle query.
//
// The paper's claims:
//   * skew-free, one round (HyperCube): max load ~ m/p^{2/3};
//   * skewed, one round: provably at least ~ m/p^{1/2} (we show the
//     degradation of HyperCube directly);
//   * skewed, two rounds: back to ~ m/p^{2/3} (the BKS result "the load
//     for skewed data can be brought down ... by using multiple rounds").

#include <cmath>
#include <cstdio>
#include <string>

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "cq/parser.h"
#include "mpc/hypercube_run.h"
#include "mpc/skew.h"
#include "obs/audit/audit.h"
#include "obs/audit/bounds.h"
#include "obs/audit/catalog.h"
#include "obs/bench_report.h"
#include "par/thread_pool.h"
#include "relational/generators.h"
#include "transport/transport.h"

namespace {

using namespace lamp;

struct Workload {
  Schema schema;
  ConjunctiveQuery triangle;
  Instance skew_free;
  Instance skewed;
  std::size_t m;

  explicit Workload(std::size_t m_in) : m(m_in) {
    triangle = ParseQuery(schema, "H(x,y,z) <- R(x,y), S(y,z), T(z,x)");
    Rng rng(5);
    AddRandomGraph(schema, schema.IdOf("R"), m, 8 * m, rng, skew_free);
    AddRandomGraph(schema, schema.IdOf("S"), m, 8 * m, rng, skew_free);
    AddRandomGraph(schema, schema.IdOf("T"), m, 8 * m, rng, skew_free);

    for (std::size_t i = 0; i < m / 2; ++i) {
      skewed.Insert(
          Fact(schema.IdOf("R"), {static_cast<std::int64_t>(i), 0}));
    }
    for (std::size_t i = 0; i < 200; ++i) {
      skewed.Insert(
          Fact(schema.IdOf("S"), {0, static_cast<std::int64_t>(i)}));
    }
    AddUniformRelation(schema, schema.IdOf("R"), m / 2, 8 * m, rng, skewed);
    AddUniformRelation(schema, schema.IdOf("S"), m - 200, 8 * m, rng, skewed);
    AddUniformRelation(schema, schema.IdOf("T"), m, 8 * m, rng, skewed);
  }
};

void PrintTable() {
  const std::size_t m = 20000;
  Workload w(m);
  const std::string transport_name(
      transport::TransportKindName(transport::ActiveKind()));
  std::printf(
      "# E2: triangle rounds-vs-skew (Example 3.1(2), Section 3.2), "
      "m=%zu, transport=%s\n"
      "# columns: p  1rnd(skew-free)  m/p^(2/3)  1rnd(skewed)  "
      "2rnd(skewed)\n",
      m, transport_name.c_str());
  obs::BenchReporter reporter("triangle_rounds");
  const obs::audit::Catalog free_catalog =
      obs::audit::BuildCatalog(w.schema, w.skew_free);
  const obs::audit::Catalog skew_catalog =
      obs::audit::BuildCatalog(w.schema, w.skewed);
  for (std::size_t p : {8, 27, 64, 216}) {
    obs::WallTimer timer;
    const auto one_free = RunHyperCubeUniform(w.triangle, w.skew_free, p, 9);
    const auto one_skew = RunHyperCubeUniform(w.triangle, w.skewed, p, 9);
    const auto two_skew = SkewResilientTriangle(w.triangle, w.skewed, p, 9);
    const Shares uniform = UniformShares(w.triangle, p);
    std::size_t actual_p = 1;
    for (std::size_t s : uniform) actual_p *= s;
    using obs::audit::Strategy;
    obs::audit::AuditRecord a_free = obs::audit::MakeAuditRecord(
        "triangle_rounds", "one_round/skew_free", Strategy::kHyperCube,
        actual_p,
        obs::audit::HyperCubeBound(w.triangle, w.schema, free_catalog,
                                   uniform),
        one_free.stats);
    a_free.params.Set("m", w.m);
    a_free.params.Set("transport", transport_name);
    obs::audit::GlobalAuditSink().Add(std::move(a_free));
    // One round on skewed data: Section 3.2's point is that the heavy
    // y-value floods one slice of the cube, so the measured max drifts
    // away from the expected load as p grows (headroom shrinking towards
    // 1 in the report). Marked expected_violation so scaling p further
    // documents the degradation instead of failing the gate.
    obs::audit::AuditRecord a_skew = obs::audit::MakeAuditRecord(
        "triangle_rounds", "one_round/skewed", Strategy::kHyperCube,
        actual_p,
        obs::audit::HyperCubeBound(w.triangle, w.schema, skew_catalog,
                                   uniform),
        one_skew.stats);
    a_skew.params.Set("m", w.m);
    a_skew.params.Set("transport", transport_name);
    a_skew.expected_violation = true;
    obs::audit::GlobalAuditSink().Add(std::move(a_skew));
    // Two rounds recover the skew-free exponent on the same skewed input.
    obs::audit::AuditRecord a_two = obs::audit::MakeAuditRecord(
        "triangle_rounds", "two_round/skewed", Strategy::kSkewResilient, p,
        obs::audit::SkewResilientBound(w.triangle, w.schema, skew_catalog,
                                       p),
        two_skew.stats);
    a_two.params.Set("m", w.m);
    a_two.params.Set("transport", transport_name);
    obs::audit::GlobalAuditSink().Add(std::move(a_two));
    std::printf("%6zu %14zu %10.0f %12zu %12zu\n", p,
                one_free.stats.MaxLoad(),
                3.0 * static_cast<double>(m) /
                    std::pow(static_cast<double>(p), 2.0 / 3.0),
                one_skew.stats.MaxLoad(), two_skew.stats.MaxLoad());
    reporter.NewRecord()
        .Param("p", p)
        .Param("m", m)
        .Param("transport", transport_name)
        .Metric("one_round.skew_free.mpc.max_load", one_free.stats.MaxLoad())
        .Metric("one_round.skewed.mpc.max_load", one_skew.stats.MaxLoad())
        .Metric("two_round.skewed.mpc.max_load", two_skew.stats.MaxLoad())
        .Metric("two_round.skewed.mpc.rounds", two_skew.stats.NumRounds())
        .WallMs(timer.ElapsedMs());
  }
  std::printf(
      "# shape check: column 2 tracks column 3; column 4 >> column 5; "
      "column 5 approaches the skew-free level as p grows.\n\n");
}

void BM_OneRoundHyperCubeSkewed(benchmark::State& state) {
  Workload w(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunHyperCubeUniform(w.triangle, w.skewed, 64));
  }
}
BENCHMARK(BM_OneRoundHyperCubeSkewed)->Arg(2000)->Arg(8000);

void BM_TwoRoundSkewResilient(benchmark::State& state) {
  Workload w(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(SkewResilientTriangle(w.triangle, w.skewed, 64));
  }
}
BENCHMARK(BM_TwoRoundSkewResilient)->Arg(2000)->Arg(8000);

}  // namespace

int main(int argc, char** argv) {
  lamp::par::ConfigureFromCommandLine(&argc, argv);
  lamp::transport::ConfigureFromCommandLine(&argc, argv);
  lamp::obs::ConfigureRepeatsFromCommandLine(&argc, argv);
  lamp::obs::RunRepeated([] { PrintTable(); });
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return lamp::obs::audit::FinalizeGlobalAudit();
}
